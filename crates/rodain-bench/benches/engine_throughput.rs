//! Real-engine commit throughput: volatile vs mirrored (in-process link).
//!
//! This is the laptop-scale analogue of the paper's headline: how much a
//! commit costs when it must wait for a mirror acknowledgement instead of
//! nothing (volatile) — the number to compare against a synchronous disk
//! flush (see the COMMITPATH experiment for that contrast).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rodain_db::{MirrorLossPolicy, Rodain, TxnOptions};
use rodain_net::InProcTransport;
use rodain_node::{MirrorConfig, MirrorNode};
use rodain_store::{ObjectId, Store, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn volatile_engine() -> Rodain {
    let db = Rodain::builder().workers(2).build().unwrap();
    for i in 0..10_000u64 {
        db.load_initial(ObjectId(i), Value::Int(0));
    }
    db
}

fn mirrored_engine() -> (Rodain, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let (primary_side, mirror_side) = InProcTransport::pair();
    let store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(store, Arc::new(mirror_side), None, MirrorConfig::default());
    let shutdown = mirror.shutdown_handle();
    let handle = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run();
    });
    let db = Rodain::builder()
        .workers(2)
        .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .build()
        .unwrap();
    for i in 0..10_000u64 {
        db.load_initial(ObjectId(i), Value::Int(0));
    }
    (db, shutdown, handle)
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine-commit");
    group.throughput(Throughput::Elements(1));
    group.sample_size(30);

    {
        let db = volatile_engine();
        let mut i = 0u64;
        group.bench_function("update_volatile", |b| {
            b.iter(|| {
                i += 1;
                db.execute(TxnOptions::soft_ms(1_000), move |ctx| {
                    let oid = ObjectId(i % 10_000);
                    let v = ctx.read(oid)?.unwrap().as_int().unwrap();
                    ctx.write(oid, Value::Int(v + 1))?;
                    Ok(None)
                })
                .unwrap()
            })
        });
    }

    {
        let (db, shutdown, handle) = mirrored_engine();
        let mut i = 0u64;
        group.bench_function("update_mirrored", |b| {
            b.iter(|| {
                i += 1;
                db.execute(TxnOptions::soft_ms(1_000), move |ctx| {
                    let oid = ObjectId(i % 10_000);
                    let v = ctx.read(oid)?.unwrap().as_int().unwrap();
                    ctx.write(oid, Value::Int(v + 1))?;
                    Ok(None)
                })
                .unwrap()
            })
        });
        drop(db);
        shutdown.store(true, Ordering::Release);
        let _ = handle.join();
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
