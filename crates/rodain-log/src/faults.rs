//! Disk fault injection for chaos testing.
//!
//! [`FaultyStorage`] wraps a [`LogStorage`] behind the [`StorageBackend`]
//! trait and injects the classic disk failure modes on command: transient
//! EIO on append, a full disk, fsync failures, and torn writes (a crash in
//! the middle of an append that leaves a truncated final frame on the
//! platter — exactly the case [`crate::storage::RecordIter`]'s torn-tail
//! tolerance exists for).

use crate::record::LogRecord;
use crate::storage::{LogStorage, RecordIter, StorageBackend, StorageStats};
use rodain_occ::Csn;
use std::fs::OpenOptions;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes chopped off the current segment by a simulated torn write — enough
/// to damage the final frame's CRC without touching earlier frames.
const TORN_WRITE_BYTES: u64 = 3;

#[derive(Debug, Default)]
struct FaultState {
    fail_appends: AtomicU64,
    fail_flushes: AtomicU64,
    full_disk: AtomicBool,
    torn_append: AtomicBool,
    partial_append: AtomicBool,
    poisoned: AtomicBool,
    injected: AtomicU64,
}

/// Shared control handle for a [`FaultyStorage`] (clone it into test code
/// to arm faults while the log writer is running).
#[derive(Clone, Debug, Default)]
pub struct DiskFaultControl {
    state: Arc<FaultState>,
}

impl DiskFaultControl {
    /// Fail the next `n` record appends with EIO (then heal).
    pub fn fail_next_appends(&self, n: u64) {
        self.state.fail_appends.store(n, Ordering::Release);
    }

    /// Fail the next `n` flushes (fsync failures; then heal). Records stay
    /// buffered, so a *later* successful flush still makes them durable —
    /// callers must treat the failed commit as not durable in the meantime.
    pub fn fail_next_flushes(&self, n: u64) {
        self.state.fail_flushes.store(n, Ordering::Release);
    }

    /// Simulate a full disk: every append fails with
    /// [`io::ErrorKind::StorageFull`] until cleared.
    pub fn set_full_disk(&self, on: bool) {
        self.state.full_disk.store(on, Ordering::Release);
    }

    /// Tear the next append: the record reaches the platter truncated and
    /// the storage is poisoned (the "node" crashed mid-write; only
    /// [`LogStorage::scan_dir`] recovery may touch the directory after).
    pub fn tear_next_append(&self) {
        self.state.torn_append.store(true, Ordering::Release);
    }

    /// Partially apply the next append batch: roughly the first half of
    /// its records reach the platter, then the append fails with a
    /// transient EIO. Unlike [`DiskFaultControl::tear_next_append`] the
    /// storage stays usable — a caller that retries re-appends the whole
    /// batch, so duplicate records land in the log and recovery must
    /// tolerate them (installs are idempotent at equal timestamps).
    pub fn partial_next_append(&self) {
        self.state.partial_append.store(true, Ordering::Release);
    }

    /// Faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Acquire)
    }

    /// Whether a torn write has permanently poisoned the storage.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.state.poisoned.load(Ordering::Acquire)
    }
}

/// A [`StorageBackend`] decorator that injects disk failures under test
/// control.
pub struct FaultyStorage {
    inner: LogStorage,
    control: DiskFaultControl,
}

impl FaultyStorage {
    /// Wrap `inner`; returns the storage and its control handle.
    #[must_use]
    pub fn new(inner: LogStorage) -> (Self, DiskFaultControl) {
        let control = DiskFaultControl::default();
        (
            FaultyStorage {
                inner,
                control: control.clone(),
            },
            control,
        )
    }

    fn poisoned_err() -> io::Error {
        io::Error::other("storage poisoned by simulated torn write")
    }

    fn note_injected(&self) {
        self.control.state.injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement-if-positive on a one-shot fault counter; true = fire.
    fn take_shot(counter: &AtomicU64) -> bool {
        counter
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
            .is_ok()
    }

    /// Simulate a crash mid-append: the record (and everything before it)
    /// is flushed, then the tail of the current segment is chopped so the
    /// final frame fails its CRC. The storage is poisoned afterwards —
    /// a crashed node never writes again.
    fn tear(&mut self, record: &LogRecord) -> io::Result<()> {
        self.inner.append(record)?;
        self.inner.flush()?;
        let path = self
            .inner
            .segment_paths()
            .pop()
            .expect("storage always has a current segment");
        let len = std::fs::metadata(&path)?.len();
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(len.saturating_sub(TORN_WRITE_BYTES))?;
        file.sync_data()?;
        self.control.state.poisoned.store(true, Ordering::Release);
        self.note_injected();
        Err(io::Error::new(
            io::ErrorKind::Interrupted,
            "simulated torn write (crash mid-append)",
        ))
    }
}

impl StorageBackend for FaultyStorage {
    fn append_batch(&mut self, records: &[LogRecord]) -> io::Result<()> {
        let state = &self.control.state;
        if state.poisoned.load(Ordering::Acquire) {
            return Err(Self::poisoned_err());
        }
        if state.partial_append.swap(false, Ordering::AcqRel) {
            let keep = records.len().div_ceil(2);
            for record in &records[..keep] {
                self.inner.append(record)?;
            }
            self.inner.flush()?;
            self.note_injected();
            return Err(io::Error::other("simulated partial append (EIO mid-batch)"));
        }
        for record in records {
            if state.poisoned.load(Ordering::Acquire) {
                return Err(Self::poisoned_err());
            }
            if state.full_disk.load(Ordering::Acquire) {
                self.note_injected();
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "simulated full disk",
                ));
            }
            if Self::take_shot(&state.fail_appends) {
                self.note_injected();
                return Err(io::Error::other("simulated EIO on append"));
            }
            if state.torn_append.swap(false, Ordering::AcqRel) {
                return self.tear(record);
            }
            self.inner.append(record)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        let state = &self.control.state;
        if state.poisoned.load(Ordering::Acquire) {
            return Err(Self::poisoned_err());
        }
        if Self::take_shot(&state.fail_flushes) {
            self.note_injected();
            return Err(io::Error::other("simulated fsync failure"));
        }
        self.inner.flush()
    }

    fn truncate_before(&mut self, upto: Csn) -> io::Result<usize> {
        if self.control.state.poisoned.load(Ordering::Acquire) {
            return Err(Self::poisoned_err());
        }
        self.inner.truncate_before(upto)
    }

    fn truncate_before_retaining(&mut self, upto: Csn, retain: usize) -> io::Result<usize> {
        if self.control.state.poisoned.load(Ordering::Acquire) {
            return Err(Self::poisoned_err());
        }
        self.inner.truncate_before_retaining(upto, retain)
    }

    fn iter(&mut self) -> io::Result<RecordIter> {
        if self.control.state.poisoned.load(Ordering::Acquire) {
            // A poisoned writer cannot flush; read whatever made it to disk.
            return Ok(RecordIter::over(self.inner.segment_paths()));
        }
        self.inner.iter()
    }

    fn stats(&self) -> StorageStats {
        self.inner.stats()
    }
}

impl std::fmt::Debug for FaultyStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyStorage")
            .field("inner", &self.inner)
            .field("injected", &self.control.injected())
            .field("poisoned", &self.control.is_poisoned())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Lsn, RecordKind};
    use crate::storage::LogStorageConfig;
    use rodain_store::{ObjectId, Ts, TxnId, Value};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rodain-faults-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &PathBuf) -> LogStorage {
        LogStorage::open(LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(dir)
        })
        .unwrap()
    }

    fn write_rec(lsn: u64, oid: u64) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(lsn),
            kind: RecordKind::Write {
                oid: ObjectId(oid),
                image: Value::Int(oid as i64),
            },
        }
    }

    fn commit_rec(lsn: u64, csn: u64) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(lsn),
            kind: RecordKind::Commit {
                csn: Csn(csn),
                ser_ts: Ts(csn),
                n_writes: 0,
            },
        }
    }

    #[test]
    fn passthrough_when_unarmed() {
        let dir = tmpdir("clean");
        let (mut faulty, ctl) = FaultyStorage::new(open(&dir));
        faulty
            .append_batch(&[write_rec(1, 1), commit_rec(2, 1)])
            .unwrap();
        StorageBackend::flush(&mut faulty).unwrap();
        let got: Vec<_> = StorageBackend::iter(&mut faulty)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got.len(), 2);
        assert_eq!(ctl.injected(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_eio_then_heal() {
        let dir = tmpdir("eio");
        let (mut faulty, ctl) = FaultyStorage::new(open(&dir));
        ctl.fail_next_appends(2);
        assert!(faulty.append_batch(&[write_rec(1, 1)]).is_err());
        assert!(faulty.append_batch(&[write_rec(2, 2)]).is_err());
        faulty.append_batch(&[write_rec(3, 3)]).unwrap();
        assert_eq!(ctl.injected(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_disk_until_cleared() {
        let dir = tmpdir("full");
        let (mut faulty, ctl) = FaultyStorage::new(open(&dir));
        ctl.set_full_disk(true);
        let err = faulty.append_batch(&[write_rec(1, 1)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        ctl.set_full_disk(false);
        faulty.append_batch(&[write_rec(2, 2)]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_failure_is_transient() {
        let dir = tmpdir("fsync");
        let (mut faulty, ctl) = FaultyStorage::new(open(&dir));
        faulty.append_batch(&[commit_rec(1, 1)]).unwrap();
        ctl.fail_next_flushes(1);
        assert!(StorageBackend::flush(&mut faulty).is_err());
        // The record was only buffered; a later flush recovers durability.
        StorageBackend::flush(&mut faulty).unwrap();
        let got: Vec<_> = StorageBackend::iter(&mut faulty)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_append_lands_half_the_batch_then_heals() {
        let dir = tmpdir("partial");
        let (mut faulty, ctl) = FaultyStorage::new(open(&dir));
        ctl.partial_next_append();
        let batch = [
            write_rec(1, 1),
            commit_rec(2, 1),
            write_rec(3, 3),
            commit_rec(4, 2),
        ];
        let err = faulty.append_batch(&batch).unwrap_err();
        assert!(err.to_string().contains("partial append"));
        assert!(!ctl.is_poisoned(), "partial append is transient");
        assert_eq!(ctl.injected(), 1);
        // The retry re-appends the whole batch: duplicates land in the log.
        faulty.append_batch(&batch).unwrap();
        StorageBackend::flush(&mut faulty).unwrap();
        let got: Vec<_> = StorageBackend::iter(&mut faulty)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got.len(), 6, "first half + full retry");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_poisons_and_recovery_tolerates_the_tail() {
        let dir = tmpdir("torn");
        let (mut faulty, ctl) = FaultyStorage::new(open(&dir));
        faulty
            .append_batch(&[write_rec(1, 1), commit_rec(2, 1)])
            .unwrap();
        StorageBackend::flush(&mut faulty).unwrap();
        ctl.tear_next_append();
        let err = faulty.append_batch(&[commit_rec(3, 2)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert!(ctl.is_poisoned());
        // The crashed node never writes again.
        assert!(faulty.append_batch(&[commit_rec(4, 3)]).is_err());
        assert!(StorageBackend::flush(&mut faulty).is_err());
        drop(faulty);
        // Recovery scans the directory: the intact prefix survives, the
        // torn final frame is tolerated silently.
        let mut iter = LogStorage::scan_dir(&dir).unwrap();
        let recovered: Vec<_> = (&mut iter).map(|r| r.unwrap()).collect();
        assert_eq!(recovered.len(), 2);
        assert!(iter.torn_tail());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
