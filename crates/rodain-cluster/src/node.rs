//! One process of a multi-node cluster: locally-owned shard engines
//! behind a client-plane [`rodain_server::Server`] and a peer-plane
//! [`PeerServer`] speaking the [`crate::proto`] protocol.

use crate::proto::{
    decode_request, encode_reply, ClusterReply, ClusterRequest, TailCommit,
    CLUSTER_PROTOCOL_VERSION,
};
use parking_lot::Mutex;
use rodain_db::{Rodain, RodainBuilder, TxnOptions};
use rodain_log::{
    decode_snapshot, write_snapshot_file, LogStorage, LogStorageConfig, ThrottledStorage,
};
use rodain_net::{Bytes, PeerClient, PeerServer};
use rodain_obs::Counter;
use rodain_occ::Csn;
use rodain_server::{ClusterShards, Server, ServerHandle};
use rodain_shard::{
    apply_on_shard, best_effort_delete, decode_intent, MetaKind, ShardMap, ShardRouter,
    ShardedRodain,
};
use rodain_store::{ObjectId, Store, Ts, Value};
use rodain_workload::NumberTranslationDb;
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a peer call made *by* a node (decision queries during
/// resolve) waits before giving up and leaving the intent pending.
const PEER_CALL_TIMEOUT: Duration = Duration::from_secs(5);

/// Low 32 bits of a cluster group id: the coordinator-shard-local
/// sequence number ([`ShardedRodain::alloc_gid`]); the high bits carry
/// the coordinator shard so ids from different coordinators never
/// collide.
pub const GID_SEQ_MASK: u64 = 0xFFFF_FFFF;

/// Configuration of one cluster node process.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Total shards in the cluster (identical on every node).
    pub shards: usize,
    /// The shards this node seats engines for.
    pub own: Vec<usize>,
    /// Root directory for per-shard redo logs and snapshots
    /// (`<data_dir>/shard-<i>`).
    pub data_dir: PathBuf,
    /// Executor threads per shard engine.
    pub workers_per_shard: usize,
    /// Objects in the number-translation schema served on the client
    /// plane.
    pub schema_objects: u64,
    /// Charge a fixed service delay per log flush (benchmarks use this
    /// to make each shard's log stream the measured bottleneck).
    pub flush_delay: Option<Duration>,
    /// Group-commit batch limit per shard (1 = the paper prototype's
    /// one-commit-per-flush path).
    pub group_commit_batch: usize,
    /// Lift the admission limit so pre-submitted benchmark backlogs are
    /// not rejected by the overload manager.
    pub unlimited_admission: bool,
}

impl NodeConfig {
    /// A node owning `own` out of `shards` shards, logging under
    /// `data_dir`, with defaults suitable for tests.
    #[must_use]
    pub fn new(shards: usize, own: Vec<usize>, data_dir: impl Into<PathBuf>) -> NodeConfig {
        NodeConfig {
            shards,
            own,
            data_dir: data_dir.into(),
            workers_per_shard: 2,
            schema_objects: 1_024,
            flush_delay: None,
            group_commit_batch: 64,
            unlimited_admission: false,
        }
    }
}

fn unlimited() -> rodain_sched::OverloadConfig {
    rodain_sched::OverloadConfig {
        base_limit: 1_000_000,
        min_limit: 1_000_000,
        ..rodain_sched::OverloadConfig::default()
    }
}

/// Apply this node's durability/admission configuration to one shard
/// engine builder (used at startup and again when a migrated-in shard is
/// activated).
fn configure_shard(cfg: &NodeConfig, shard: usize, mut b: RodainBuilder) -> RodainBuilder {
    let dir = ShardedRodain::shard_dir(&cfg.data_dir, shard);
    let _ = std::fs::create_dir_all(&dir);
    if let Some(delay) = cfg.flush_delay {
        let storage = ThrottledStorage::new(
            LogStorage::open(LogStorageConfig::new(dir)).expect("open shard log"),
            delay,
        );
        b = b.contingency_storage(storage);
    } else {
        b = b.contingency_log(dir);
    }
    if cfg.unlimited_admission {
        b = b.overload(unlimited());
    }
    b.group_commit_batch(cfg.group_commit_batch)
}

/// A shard copy being staged on the target node during migration:
/// snapshot installed, catch-up tail applied incrementally.
struct Staged {
    store: Arc<Store>,
    upto: u64,
}

struct NodeState {
    cfg: NodeConfig,
    cluster: Arc<ClusterShards>,
    staged: Mutex<HashMap<usize, Staged>>,
    peers: Mutex<HashMap<String, Arc<PeerClient>>>,
    next_call_id: AtomicU64,
    migrations: Counter,
    catchup: Counter,
}

/// One running cluster node: client plane + peer plane over the locally
/// owned shards.
pub struct ClusterNode {
    state: Arc<NodeState>,
    server: ServerHandle,
    peer: PeerServer,
}

impl ClusterNode {
    /// Start a node from `cfg`, serving clients on `client_listener` and
    /// peers on `peer_listener`. The node boots with a provisional
    /// single-node map (epoch 1) naming itself owner of everything; the
    /// deployment's real map is pushed with
    /// [`ClusterRequest::InstallMap`] once every node's addresses are
    /// known.
    pub fn start(
        cfg: NodeConfig,
        client_listener: TcpListener,
        peer_listener: TcpListener,
    ) -> io::Result<ClusterNode> {
        let client_addr = client_listener.local_addr()?;
        let peer_addr = peer_listener.local_addr()?;
        let cfg_for_hook = cfg.clone();
        let local = Arc::new(
            ShardedRodain::builder()
                .shards(cfg.shards)
                .workers_per_shard(cfg.workers_per_shard)
                .shard_hook(move |i, b| configure_shard(&cfg_for_hook, i, b))
                .build()?,
        );
        for shard in 0..cfg.shards {
            if !cfg.own.contains(&shard) {
                drop(local.take_shard(shard));
            }
        }
        let map = ShardMap::single(
            cfg.shards,
            &client_addr.to_string(),
            &peer_addr.to_string(),
        );
        let cluster = ClusterShards::new(local, map);
        let migrations = cluster.recorder().counter("cluster_migrations_total");
        let catchup = cluster
            .recorder()
            .counter("cluster_migration_catchup_commits");
        let state = Arc::new(NodeState {
            cfg,
            cluster: Arc::clone(&cluster),
            staged: Mutex::new(HashMap::new()),
            peers: Mutex::new(HashMap::new()),
            next_call_id: AtomicU64::new(1),
            migrations,
            catchup,
        });
        // Re-seed the gid allocator from durable 2PC state recovered off
        // the seated shards' logs. Without this a restarted
        // coordinator-shard owner could reissue a sequence number still
        // referenced by a pre-crash intent or decision, and the new
        // transaction's records would collide with the old one's — e.g.
        // a fresh Decide would make an old prepared-but-undecided intent
        // resolve as committed.
        {
            let local = state.cluster.local();
            for shard in 0..local.shard_count() {
                let Some(engine) = local.engine(shard) else {
                    continue;
                };
                for (oid, _) in &engine.snapshot().objects {
                    if let Some(meta) = ShardRouter::meta_parts(*oid) {
                        if matches!(meta.kind, MetaKind::Intent | MetaKind::Decision) {
                            local.note_gid_seen(meta.gid & GID_SEQ_MASK);
                        }
                    }
                }
            }
        }
        let schema = NumberTranslationDb::new(state.cfg.schema_objects);
        let server = Server::cluster(Arc::clone(&cluster), schema).start(client_listener)?;
        let handler_state = Arc::clone(&state);
        let peer = PeerServer::start(
            peer_listener,
            Arc::new(move |frame: Bytes| {
                let (id, request) = decode_request(frame).ok()?;
                let reply = handle_peer(&handler_state, request);
                Some(encode_reply(id, &reply))
            }),
        )?;
        Ok(ClusterNode {
            state,
            server,
            peer,
        })
    }

    /// The client-plane address.
    #[must_use]
    pub fn client_addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// The peer-plane address.
    #[must_use]
    pub fn peer_addr(&self) -> std::net::SocketAddr {
        self.peer.addr()
    }

    /// The node's placement state (map, owned engines, metrics).
    #[must_use]
    pub fn cluster(&self) -> &Arc<ClusterShards> {
        &self.state.cluster
    }

    /// Client-plane request counters.
    #[must_use]
    pub fn server_stats(&self) -> rodain_server::ServerStats {
        self.server.stats()
    }

    /// Stop both planes (owned engines shut down as their `Arc`s drop).
    pub fn shutdown(self) {
        self.server.shutdown();
        self.peer.shutdown();
    }
}

impl NodeState {
    fn peer(&self, addr: &str) -> Arc<PeerClient> {
        let mut peers = self.peers.lock();
        Arc::clone(
            peers
                .entry(addr.to_string())
                .or_insert_with(|| Arc::new(PeerClient::new(addr))),
        )
    }

    /// Peer call with correlation-id checking; `None` on any transport
    /// or protocol failure (callers treat the answer as unknown).
    ///
    /// Ids are unique per call so a delayed reply to an earlier,
    /// abandoned request can never be accepted as the answer to this
    /// one — with a constant id a stale `Decision` for gid A could pass
    /// for gid B's during resolve. On any mismatch or undecodable frame
    /// the cached connection is dropped: whatever else it might deliver
    /// belongs to a request nobody is waiting on.
    fn call(&self, addr: &str, request: &ClusterRequest) -> Option<ClusterReply> {
        let id = self.next_call_id.fetch_add(1, Ordering::Relaxed);
        let frame = crate::proto::encode_request(id, request);
        let peer = self.peer(addr);
        let raw = peer.call(frame, PEER_CALL_TIMEOUT).ok()?;
        match crate::proto::decode_reply(raw) {
            Ok((got_id, reply)) if got_id == id => Some(reply),
            _ => {
                peer.disconnect();
                None
            }
        }
    }
}

fn err(message: impl Into<String>) -> ClusterReply {
    ClusterReply::Err {
        message: message.into(),
    }
}

fn owned_engine(state: &NodeState, shard: u64) -> Result<Arc<Rodain>, ClusterReply> {
    let shard = shard as usize;
    state
        .cluster
        .local()
        .engine(shard)
        .ok_or_else(|| err(format!("shard {shard} is not seated on this node")))
}

fn run_ops(
    engine: &Rodain,
    ops: Vec<rodain_shard::ShardOp>,
) -> Result<rodain_db::TxnReceipt, rodain_db::TxnError> {
    engine.execute(TxnOptions::non_real_time(), move |ctx| {
        for op in &ops {
            match op {
                rodain_shard::ShardOp::Add { oid, delta } => {
                    let current = ctx.read(*oid)?.and_then(|v| v.as_int()).unwrap_or(0);
                    ctx.write(*oid, Value::Int(current + delta))?;
                }
                rodain_shard::ShardOp::Put { oid, value } => {
                    ctx.write(*oid, value.clone())?;
                }
            }
        }
        Ok(None)
    })
}

/// Read the committed tail of `shard`'s redo log: every transaction with
/// CSN > `after`, regrouped in true validation order (the same reorder
/// pass the mirror uses). A torn final segment (the engine is still
/// appending) silently ends the scan — the next round picks it up.
fn read_tail(state: &NodeState, shard: usize, after: u64) -> io::Result<Vec<TailCommit>> {
    let dir = ShardedRodain::shard_dir(&state.cfg.data_dir, shard);
    let mut reorder = rodain_log::ReorderBuffer::starting_at(Csn(after + 1));
    let mut commits = Vec::new();
    for item in LogStorage::scan_dir(&dir)? {
        let Ok(record) = item else {
            break;
        };
        if reorder.ingest(record).is_err() {
            break;
        }
        for committed in reorder.drain_ready() {
            commits.push(TailCommit {
                csn: committed.csn.0,
                ser_ts: committed.ser_ts.0,
                writes: committed.writes,
            });
        }
    }
    Ok(commits)
}

/// Resolve every intent held on this node's shards: roll forward when
/// the coordinator (local or remote, via [`ClusterRequest::QueryDecision`])
/// has a decision record, presume abort when it answers "no decision",
/// and leave the intent pending when the coordinator is unreachable.
fn resolve_local(state: &NodeState) -> (u64, u64) {
    let local = state.cluster.local();
    let router = local.router();
    let map = state.cluster.map();
    let (mut rolled_forward, mut aborted) = (0u64, 0u64);
    for shard in 0..local.shard_count() {
        let Some(engine) = local.engine(shard) else {
            continue;
        };
        let snapshot = engine.snapshot();
        for (oid, object) in &snapshot.objects {
            let Some(meta) = ShardRouter::meta_parts(*oid) else {
                continue;
            };
            if meta.kind != MetaKind::Intent {
                continue;
            }
            local.note_gid_seen(meta.gid & GID_SEQ_MASK);
            match &object.value {
                Value::Int(_) => {
                    // Applied marker: the data already changed.
                    best_effort_delete(&engine, *oid);
                }
                value => {
                    let Some((gid, coordinator, ops)) = decode_intent(value) else {
                        best_effort_delete(&engine, *oid);
                        aborted += 1;
                        continue;
                    };
                    let decision_oid = router.decision_oid(coordinator, gid);
                    let decided = if let Some(coord_engine) = local.engine(coordinator) {
                        Some(coord_engine.get(decision_oid).is_some())
                    } else {
                        map.owner(coordinator).and_then(|owner| {
                            match state.call(
                                &owner.peer_addr,
                                &ClusterRequest::QueryDecision {
                                    shard: coordinator as u64,
                                    gid,
                                },
                            ) {
                                Some(ClusterReply::Decision { decided }) => Some(decided),
                                _ => None,
                            }
                        })
                    };
                    match decided {
                        Some(true) => {
                            if apply_on_shard(
                                &engine,
                                TxnOptions::non_real_time(),
                                *oid,
                                ops,
                                gid as i64,
                            )
                            .is_ok()
                            {
                                best_effort_delete(&engine, *oid);
                                rolled_forward += 1;
                            }
                        }
                        Some(false) => {
                            best_effort_delete(&engine, *oid);
                            aborted += 1;
                        }
                        // Coordinator unreachable: neither outcome is
                        // safe to presume — keep the intent for a later
                        // pass.
                        None => {}
                    }
                }
            }
        }
    }
    (rolled_forward, aborted)
}

/// Delete every decision record on this node's shards. Only safe after
/// a cluster-wide resolve pass succeeded on every node (`DESIGN.md`
/// §16).
fn gc_decisions(state: &NodeState) -> u64 {
    let local = state.cluster.local();
    let mut count = 0u64;
    for shard in 0..local.shard_count() {
        let Some(engine) = local.engine(shard) else {
            continue;
        };
        let snapshot = engine.snapshot();
        for (oid, _) in &snapshot.objects {
            let Some(meta) = ShardRouter::meta_parts(*oid) else {
                continue;
            };
            if meta.kind == MetaKind::Decision {
                local.note_gid_seen(meta.gid & GID_SEQ_MASK);
                best_effort_delete(&engine, *oid);
                count += 1;
            }
        }
    }
    count
}

fn handle_peer(state: &Arc<NodeState>, request: ClusterRequest) -> ClusterReply {
    match request {
        ClusterRequest::FetchMap => ClusterReply::Map {
            map: state.cluster.map(),
        },
        ClusterRequest::InstallMap { map } => {
            state.cluster.install_map(map);
            ClusterReply::Ack
        }
        ClusterRequest::AllocGid { shard } => match owned_engine(state, shard) {
            Ok(_) => {
                let seq = state.cluster.local().alloc_gid() & GID_SEQ_MASK;
                ClusterReply::Gid {
                    gid: (shard << 32) | seq,
                }
            }
            Err(e) => e,
        },
        ClusterRequest::Prepare {
            gid,
            coordinator_shard,
            shard,
            ops,
        } => match owned_engine(state, shard) {
            Ok(engine) => {
                state.cluster.local().note_gid_seen(gid & GID_SEQ_MASK);
                let intent = state
                    .cluster
                    .local()
                    .router()
                    .intent_oid(shard as usize, gid);
                let payload = rodain_shard::encode_intent(gid, coordinator_shard as usize, &ops);
                match engine.execute(TxnOptions::non_real_time(), move |ctx| {
                    ctx.write(intent, payload.clone())?;
                    Ok(None)
                }) {
                    Ok(_) => ClusterReply::Prepared,
                    Err(e) => err(e.to_string()),
                }
            }
            Err(e) => e,
        },
        ClusterRequest::Decide { shard, gid } => match owned_engine(state, shard) {
            Ok(engine) => {
                let decision = state
                    .cluster
                    .local()
                    .router()
                    .decision_oid(shard as usize, gid);
                match engine.execute(TxnOptions::non_real_time(), move |ctx| {
                    ctx.write(decision, Value::Int(gid as i64))?;
                    Ok(None)
                }) {
                    Ok(receipt) => ClusterReply::Decided {
                        csn: receipt.csn.0,
                    },
                    Err(e) => err(e.to_string()),
                }
            }
            Err(e) => e,
        },
        ClusterRequest::Apply { shard, gid, stamp } => match owned_engine(state, shard) {
            Ok(engine) => {
                let intent = state
                    .cluster
                    .local()
                    .router()
                    .intent_oid(shard as usize, gid);
                match engine.get(intent) {
                    Some(value @ Value::Record(_)) => match decode_intent(&value) {
                        Some((_, _, ops)) => {
                            match apply_on_shard(
                                &engine,
                                TxnOptions::non_real_time(),
                                intent,
                                ops,
                                stamp,
                            ) {
                                Ok(_) => ClusterReply::Ack,
                                Err(e) => err(e.to_string()),
                            }
                        }
                        None => err("undecodable intent"),
                    },
                    // Already applied (marker) or already cleaned up.
                    _ => ClusterReply::Ack,
                }
            }
            Err(e) => e,
        },
        ClusterRequest::Cleanup {
            shard,
            gid,
            decision,
        } => match owned_engine(state, shard) {
            Ok(engine) => {
                let router = state.cluster.local().router();
                let oid = if decision {
                    router.decision_oid(shard as usize, gid)
                } else {
                    router.intent_oid(shard as usize, gid)
                };
                best_effort_delete(&engine, oid);
                ClusterReply::Ack
            }
            Err(e) => e,
        },
        ClusterRequest::QueryDecision { shard, gid } => match owned_engine(state, shard) {
            Ok(engine) => ClusterReply::Decision {
                decided: engine
                    .get(
                        state
                            .cluster
                            .local()
                            .router()
                            .decision_oid(shard as usize, gid),
                    )
                    .is_some(),
            },
            Err(e) => e,
        },
        ClusterRequest::TriggerResolve => {
            let (rolled_forward, aborted) = resolve_local(state);
            ClusterReply::Resolved {
                rolled_forward,
                aborted,
            }
        }
        ClusterRequest::GcDecisions => ClusterReply::Cleaned {
            count: gc_decisions(state),
        },
        ClusterRequest::Commit { shard, ops } => match owned_engine(state, shard) {
            Ok(engine) => match run_ops(&engine, ops) {
                Ok(receipt) => ClusterReply::Committed {
                    csn: receipt.csn.0,
                },
                Err(e) => err(e.to_string()),
            },
            Err(e) => e,
        },
        ClusterRequest::MigrateSnapshot { shard } => match owned_engine(state, shard) {
            Ok(engine) => {
                let (snapshot, upto) = engine.snapshot_upto();
                ClusterReply::Snapshot {
                    upto: upto.0,
                    snapshot: rodain_log::encode_snapshot(&snapshot, upto).to_vec(),
                }
            }
            Err(e) => e,
        },
        ClusterRequest::MigrateTail { shard, after } => {
            match read_tail(state, shard as usize, after) {
                Ok(commits) => ClusterReply::Tail { commits },
                Err(e) => err(e.to_string()),
            }
        }
        ClusterRequest::MigrateSeal { shard, after } => {
            let Some(taken) = state.cluster.local().take_shard(shard as usize) else {
                return err(format!("shard {shard} is not seated on this node"));
            };
            // Wait for transient engine handles (in-flight submissions)
            // to drop so our drop is the one that shuts the engine down
            // and flushes its log.
            let deadline = Instant::now() + Duration::from_secs(5);
            while Arc::strong_count(&taken) > 1 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if Arc::strong_count(&taken) > 1 {
                // The engine cannot shut down while other handles hold
                // it, so in-flight commits could still flush after any
                // tail we read now — cutting over would silently drop
                // them. Re-seat the shard and fail the seal; the
                // coordinator aborts the migration instead.
                state.cluster.local().install_shard(shard as usize, taken);
                return err(format!(
                    "shard {shard} seal aborted: in-flight handles outlived the drain window"
                ));
            }
            drop(taken);
            match read_tail(state, shard as usize, after) {
                Ok(commits) => ClusterReply::Tail { commits },
                Err(e) => err(e.to_string()),
            }
        }
        ClusterRequest::InstallStaged {
            shard,
            upto,
            snapshot,
        } => match decode_snapshot(&snapshot) {
            Ok((snap, snap_upto)) => {
                if snap_upto.0 != upto {
                    return err("staged snapshot boundary mismatch");
                }
                let store = Arc::new(Store::new());
                for (oid, object) in snap.objects {
                    store.install(oid, object.value, object.wts);
                }
                state
                    .staged
                    .lock()
                    .insert(shard as usize, Staged { store, upto });
                ClusterReply::Ack
            }
            Err(e) => err(e.to_string()),
        },
        ClusterRequest::ApplyTail { shard, commits } => {
            let mut staged = state.staged.lock();
            let Some(entry) = staged.get_mut(&(shard as usize)) else {
                return err(format!("shard {shard} has no staged copy"));
            };
            for commit in commits {
                if commit.csn <= entry.upto {
                    continue; // replayed duplicate
                }
                for (oid, value) in commit.writes {
                    entry.store.install(oid, value, Ts(commit.ser_ts));
                }
                entry.upto = commit.csn;
                state.catchup.inc();
            }
            ClusterReply::Ack
        }
        ClusterRequest::Activate { shard, map } => {
            let Some(entry) = state.staged.lock().remove(&(shard as usize)) else {
                return err(format!("shard {shard} has no staged copy"));
            };
            let dir = ShardedRodain::shard_dir(&state.cfg.data_dir, shard as usize);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                return err(e.to_string());
            }
            // Durable base for the new owner: the staged copy becomes a
            // snapshot file (the checkpoint format from DESIGN.md §15);
            // commits after cutover land in the fresh log beside it.
            if let Err(e) = write_snapshot_file(&dir, &entry.store.snapshot(), Csn(entry.upto)) {
                return err(e.to_string());
            }
            let builder = configure_shard(
                &state.cfg,
                shard as usize,
                Rodain::builder()
                    .workers(state.cfg.workers_per_shard)
                    .store(Arc::clone(&entry.store)),
            );
            match builder.build() {
                Ok(engine) => {
                    state
                        .cluster
                        .local()
                        .install_shard(shard as usize, Arc::new(engine));
                    state.cluster.install_map(map);
                    state.migrations.inc();
                    ClusterReply::Ack
                }
                Err(e) => err(e.to_string()),
            }
        }
    }
}

/// The protocol version the node answers with (re-exported so binaries
/// can print it).
#[must_use]
pub fn protocol_version() -> u8 {
    CLUSTER_PROTOCOL_VERSION
}
