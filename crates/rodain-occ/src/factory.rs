//! Protocol factory.

use crate::traits::{ConcurrencyController, Protocol};
use crate::{OccBc, OccDa, OccDati, OccTi, TwoPlHp};
use std::sync::Arc;

/// Instantiate a controller for `protocol`.
///
/// ```
/// use rodain_occ::{make_controller, Protocol};
/// let cc = make_controller(Protocol::OccDati);
/// assert_eq!(cc.protocol(), Protocol::OccDati);
/// ```
#[must_use]
pub fn make_controller(protocol: Protocol) -> Arc<dyn ConcurrencyController> {
    match protocol {
        Protocol::OccBc => Arc::new(OccBc::new()),
        Protocol::OccDa => Arc::new(OccDa::new()),
        Protocol::OccTi => Arc::new(OccTi::new()),
        Protocol::OccDati => Arc::new(OccDati::new()),
        Protocol::TwoPlHp => Arc::new(TwoPlHp::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_protocol() {
        for p in Protocol::ALL {
            let cc = make_controller(p);
            assert_eq!(cc.protocol(), p);
            assert_eq!(cc.active_count(), 0);
        }
    }
}
