//! Fault plans: reproducible schedules of fault events keyed to commit
//! offsets.
//!
//! A plan is data, not behaviour: rendering one ([`FaultPlan::render`])
//! yields a stable, byte-for-byte reproducible description, which is what
//! makes a failing chaos run reportable as "seed N at commit K".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One fault to inject into the running pair.
///
/// Events name *intents*; the harness maps them onto the concrete
/// injectors ([`rodain_net::LinkControl`], [`rodain_log::DiskFaultControl`]
/// and node lifecycle control).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultEvent {
    /// Permanently sever the primary→mirror link (cable cut). The mirror
    /// is lost; the primary degrades to its loss policy.
    SeverLink,
    /// Blackhole the link until the mirror's watchdog declares the primary
    /// dead and promotes. The old primary is on the losing side of the
    /// partition and is treated as failed.
    PartitionUntilFailover,
    /// Crash the primary outright; the mirror observes the disconnect and
    /// promotes.
    CrashPrimary,
    /// Crash the mirror; the primary degrades to its loss policy.
    CrashMirror,
    /// The failed node has recovered and rejoins as a fresh mirror via
    /// snapshot transfer (the paper's rejoin discipline).
    RejoinMirror,
    /// Add latency to every shipped frame.
    Delay {
        /// Base latency, microseconds, added to every frame.
        base_us: u64,
        /// Upper bound of the extra per-frame jitter, microseconds; the
        /// actual amount is a deterministic function of the frame number.
        jitter_us: u64,
    },
    /// Ship every n-th frame twice (the reorder buffer must ignore the
    /// replay).
    DuplicateOneIn {
        /// Duplication period; every n-th frame is doubled.
        n: u64,
    },
    /// Flip one byte in the next outbound frame. Scripted plans only:
    /// [`FaultPlan::generate`] never emits it, because whether it hits a
    /// commit record or an interleaved heartbeat races with wall-clock
    /// timing and would break run-level reproducibility.
    CorruptNextFrame,
    /// Clear latency/duplication/corruption settings on the link.
    HealLink,
    /// Fail the next fsync of the serving node's contingency log
    /// (meaningful after a promotion; that commit must NOT be
    /// acknowledged).
    DiskFailFlush,
    /// Fail the next append of the serving node's contingency log with a
    /// transient I/O error.
    DiskFailAppend,
    /// Partially apply the next append batch to the serving node's
    /// contingency log: roughly half the records land, then the append
    /// fails with a transient EIO. The engine's retry re-appends the whole
    /// batch, so the log grows duplicate records that recovery must apply
    /// idempotently.
    PartialAppend,
    /// Tear the next append of the serving node's contingency log: the
    /// final frame reaches the platter truncated and the storage is
    /// poisoned — the node has crashed mid-write and only recovery may
    /// read the directory afterwards. Scripted plans only:
    /// [`FaultPlan::generate`] never emits it, because a poisoned log ends
    /// the serving node's run and the harness topology has no "both nodes
    /// dead" state to continue from.
    TornWrite,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::SeverLink => write!(f, "sever-link"),
            FaultEvent::PartitionUntilFailover => write!(f, "partition-until-failover"),
            FaultEvent::CrashPrimary => write!(f, "crash-primary"),
            FaultEvent::CrashMirror => write!(f, "crash-mirror"),
            FaultEvent::RejoinMirror => write!(f, "rejoin-mirror"),
            FaultEvent::Delay { base_us, jitter_us } => {
                write!(f, "delay(base={base_us}us, jitter={jitter_us}us)")
            }
            FaultEvent::DuplicateOneIn { n } => write!(f, "duplicate-one-in({n})"),
            FaultEvent::CorruptNextFrame => write!(f, "corrupt-next-frame"),
            FaultEvent::HealLink => write!(f, "heal-link"),
            FaultEvent::DiskFailFlush => write!(f, "disk-fail-flush"),
            FaultEvent::DiskFailAppend => write!(f, "disk-fail-append"),
            FaultEvent::PartialAppend => write!(f, "partial-append"),
            FaultEvent::TornWrite => write!(f, "torn-write"),
        }
    }
}

/// A fault scheduled immediately before the `at_commit`-th commit attempt
/// (1-based) of the harness workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlannedFault {
    /// Workload commit attempt this fault precedes.
    pub at_commit: u64,
    /// The fault to inject.
    pub event: FaultEvent,
}

/// Topology tracked while *generating* a plan, so random schedules only
/// ever ask for transitions the pair can actually take (no rejoining a
/// mirror that is alive, no disk faults while the disk path is idle).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Topology {
    /// Primary and mirror both live.
    Pair,
    /// Mirror dead; the original primary serves degraded.
    MirrorDown,
    /// Primary dead; the promoted mirror serves in contingency mode.
    Promoted,
}

/// A reproducible fault schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for scripted plans).
    pub seed: u64,
    /// The schedule, ordered by [`PlannedFault::at_commit`].
    pub events: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An explicit, hand-written schedule (sorted by commit offset; the
    /// relative order of events sharing an offset is preserved).
    #[must_use]
    pub fn script(mut events: Vec<PlannedFault>) -> FaultPlan {
        events.sort_by_key(|e| e.at_commit);
        FaultPlan { seed: 0, events }
    }

    /// Generate a schedule from `seed` for a workload of `total_commits`
    /// attempts. The same `(seed, total_commits)` always yields the same
    /// plan, and the events respect the pair's topology: crashes alternate
    /// with rejoins, and disk faults only target a node actually running
    /// on its contingency log.
    #[must_use]
    pub fn generate(seed: u64, total_commits: u64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut topology = Topology::Pair;
        let mut at = 0u64;
        loop {
            at += rng.gen_range(3..=12u64);
            if at >= total_commits {
                break;
            }
            let event = match topology {
                Topology::Pair => match rng.gen_range(0..7u32) {
                    0 => FaultEvent::Delay {
                        base_us: rng.gen_range(50..=500),
                        jitter_us: rng.gen_range(0..=200),
                    },
                    1 => FaultEvent::DuplicateOneIn {
                        n: rng.gen_range(2..=6),
                    },
                    2 => FaultEvent::HealLink,
                    3 => {
                        topology = Topology::MirrorDown;
                        FaultEvent::CrashMirror
                    }
                    4 => {
                        topology = Topology::MirrorDown;
                        FaultEvent::SeverLink
                    }
                    5 => {
                        topology = Topology::Promoted;
                        FaultEvent::PartitionUntilFailover
                    }
                    _ => {
                        topology = Topology::Promoted;
                        FaultEvent::CrashPrimary
                    }
                },
                Topology::MirrorDown => {
                    topology = Topology::Pair;
                    FaultEvent::RejoinMirror
                }
                Topology::Promoted => match rng.gen_range(0..4u32) {
                    0 => FaultEvent::DiskFailFlush,
                    1 => FaultEvent::DiskFailAppend,
                    2 => FaultEvent::PartialAppend,
                    _ => {
                        topology = Topology::Pair;
                        FaultEvent::RejoinMirror
                    }
                },
            };
            events.push(PlannedFault {
                at_commit: at,
                event,
            });
        }
        FaultPlan { seed, events }
    }

    /// Stable textual form of the schedule (used by the reproducibility
    /// check: two renders of the same seed must be byte-identical).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("plan seed={} events={}\n", self.seed, self.events.len());
        for fault in &self.events {
            out.push_str(&format!(
                "  commit {:>4}: {}\n",
                fault.at_commit, fault.event
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(42, 200);
        let b = FaultPlan::generate(42, 200);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(!a.events.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        // Not guaranteed for every pair of seeds, but these must differ or
        // the RNG is not being consulted at all.
        let a = FaultPlan::generate(1, 500);
        let b = FaultPlan::generate(2, 500);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn events_stay_inside_the_workload_and_ordered() {
        for seed in 0..20u64 {
            let plan = FaultPlan::generate(seed, 100);
            let mut last = 0;
            for fault in &plan.events {
                assert!(fault.at_commit < 100, "seed {seed}: event past workload");
                assert!(fault.at_commit >= last, "seed {seed}: unordered plan");
                last = fault.at_commit;
            }
        }
    }

    #[test]
    fn generated_plans_respect_topology() {
        // Replay each plan's implied topology and reject impossible asks.
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(seed, 300);
            let mut mirror_alive = true;
            let mut promoted = false;
            for fault in &plan.events {
                match fault.event {
                    FaultEvent::CrashMirror | FaultEvent::SeverLink => {
                        assert!(mirror_alive, "seed {seed}: killed a dead mirror");
                        mirror_alive = false;
                    }
                    FaultEvent::PartitionUntilFailover | FaultEvent::CrashPrimary => {
                        assert!(mirror_alive, "seed {seed}: promoted a dead mirror");
                        mirror_alive = false;
                        promoted = true;
                    }
                    FaultEvent::RejoinMirror => {
                        assert!(!mirror_alive, "seed {seed}: rejoined a live mirror");
                        mirror_alive = true;
                        promoted = false;
                    }
                    FaultEvent::DiskFailFlush
                    | FaultEvent::DiskFailAppend
                    | FaultEvent::PartialAppend => {
                        assert!(promoted, "seed {seed}: disk fault with no sync disk");
                    }
                    FaultEvent::CorruptNextFrame => {
                        panic!("seed {seed}: generator must never emit corruption");
                    }
                    FaultEvent::TornWrite => {
                        panic!("seed {seed}: generator must never emit torn writes");
                    }
                    FaultEvent::Delay { .. }
                    | FaultEvent::DuplicateOneIn { .. }
                    | FaultEvent::HealLink => {
                        assert!(mirror_alive, "seed {seed}: link knob with no link");
                    }
                }
            }
        }
    }

    #[test]
    fn script_sorts_by_offset() {
        let plan = FaultPlan::script(vec![
            PlannedFault {
                at_commit: 9,
                event: FaultEvent::RejoinMirror,
            },
            PlannedFault {
                at_commit: 3,
                event: FaultEvent::CrashMirror,
            },
        ]);
        assert_eq!(plan.events[0].at_commit, 3);
        assert_eq!(plan.events[1].at_commit, 9);
        assert_eq!(plan.seed, 0);
    }

    #[test]
    fn render_is_stable_text() {
        let plan = FaultPlan::script(vec![PlannedFault {
            at_commit: 7,
            event: FaultEvent::Delay {
                base_us: 100,
                jitter_us: 40,
            },
        }]);
        assert_eq!(
            plan.render(),
            "plan seed=0 events=1\n  commit    7: delay(base=100us, jitter=40us)\n"
        );
    }
}
