//! Inspect, verify and recover RODAIN disk-log directories.
//!
//! ```text
//! rodain-logdump dump <log-dir> [--limit N]
//! rodain-logdump verify <log-dir>
//! rodain-logdump recover <log-dir> [--checkpoint-dir DIR] [--sample N]
//! ```

use rodain_node::{recover_store_from_disk, recover_with_checkpoint};
use rodain_tools::{logdump, Args};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rodain-logdump dump <log-dir> [--limit N]\n  \
         rodain-logdump verify <log-dir>\n  \
         rodain-logdump analyze <log-dir> [--top N]\n  \
         rodain-logdump recover <log-dir> [--checkpoint-dir DIR] [--sample N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let (Some(command), Some(dir)) = (args.positional.first(), args.positional.get(1)) else {
        return usage();
    };
    let dir = PathBuf::from(dir);
    match command.as_str() {
        "dump" => {
            let limit = args.get_or("limit", 0usize);
            let mut stdout = std::io::stdout().lock();
            match logdump::dump(&dir, limit, &mut stdout) {
                Ok(n) => {
                    eprintln!("({n} records)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("dump failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "verify" => match logdump::verify(&dir) {
            Ok(report) => {
                println!("records:      {}", report.records);
                println!(
                    "  writes {} / commits {} / aborts {} / checkpoints {}",
                    report.writes, report.commits, report.aborts, report.checkpoints
                );
                if let (Some(min), Some(max)) = (report.min_csn, report.max_csn) {
                    println!("commit csn:   {min} ..= {max}");
                }
                println!("torn tail:    {}", report.torn_tail);
                match &report.corruption {
                    None => {
                        println!("status:       OK");
                        ExitCode::SUCCESS
                    }
                    Some(what) => {
                        println!("status:       CORRUPT — {what}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("verify failed: {e}");
                ExitCode::FAILURE
            }
        },
        "analyze" => match logdump::analyze(&dir, args.get_or("top", 10usize)) {
            Ok(report) => {
                println!("committed transactions: {}", report.transactions);
                println!("after-image bytes:      {}", report.image_bytes);
                println!("writes per transaction:");
                for (bucket, count) in report.writes_histogram.iter().enumerate() {
                    if *count > 0 {
                        let label = if bucket == report.writes_histogram.len() - 1 {
                            format!("{bucket}+")
                        } else {
                            bucket.to_string()
                        };
                        println!("  {label:>3} writes: {count}");
                    }
                }
                println!("hottest objects:");
                for (oid, writes) in &report.hottest_objects {
                    println!("  obj#{oid}: {writes} update(s)");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("analyze failed: {e}");
                ExitCode::FAILURE
            }
        },
        "recover" => {
            let result = match args.options.get("checkpoint-dir") {
                Some(ckpt) => recover_with_checkpoint(&dir, PathBuf::from(ckpt)),
                None => recover_store_from_disk(&dir),
            };
            match result {
                Ok(cold) => {
                    println!(
                        "recovered {} objects from {} committed transactions \
                         ({} records scanned, {} in-flight discarded, torn tail: {})",
                        cold.store.len(),
                        cold.stats.committed,
                        cold.stats.records,
                        cold.stats.discarded,
                        cold.torn_tail
                    );
                    println!(
                        "max csn: {} · max ser_ts: {}",
                        cold.stats.max_csn, cold.stats.max_ser_ts
                    );
                    let sample = args.get_or("sample", 0usize);
                    if sample > 0 {
                        let mut shown = 0usize;
                        cold.store.for_each(|oid, obj| {
                            if shown < sample {
                                println!("  {oid:?} = {:?} @ {}", obj.value, obj.wts);
                                shown += 1;
                            }
                        });
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("recover failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
