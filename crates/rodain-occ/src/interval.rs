//! Timestamp intervals.

use rodain_store::Ts;
use std::fmt;

/// A transaction's permissible serialization-timestamp interval `[lb, ub]`
/// (both inclusive).
///
/// Every active transaction starts with the full interval `[0, ∞]`.
/// Conflicts shrink it: serializing *after* a timestamp `t` raises the lower
/// bound to `t+1`; serializing *before* `t` lowers the upper bound to `t-1`.
/// A transaction whose interval becomes empty cannot be placed anywhere in
/// the serialization order and must restart — this is the *only* restart
/// cause in OCC-TI/OCC-DATI, which is how they cut unnecessary restarts
/// compared to broadcast commit.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct TsInterval {
    /// Inclusive lower bound.
    pub lb: u64,
    /// Inclusive upper bound.
    pub ub: u64,
}

impl TsInterval {
    /// The full interval `[0, ∞]`.
    pub const FULL: TsInterval = TsInterval {
        lb: 0,
        ub: u64::MAX,
    };

    /// Construct an interval. `lb > ub` denotes the empty interval.
    #[must_use]
    pub fn new(lb: u64, ub: u64) -> Self {
        TsInterval { lb, ub }
    }

    /// Whether no timestamp remains.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lb > self.ub
    }

    /// Constrain the transaction to serialize strictly after `ts`.
    /// Returns `true` if the interval is still non-empty.
    pub fn after(&mut self, ts: Ts) -> bool {
        self.lb = self.lb.max(ts.0.saturating_add(1));
        !self.is_empty()
    }

    /// Constrain the transaction to serialize strictly before `ts`.
    /// Returns `true` if the interval is still non-empty.
    pub fn before(&mut self, ts: Ts) -> bool {
        self.ub = self.ub.min(ts.0.saturating_sub(1));
        !self.is_empty()
    }

    /// Intersect with another interval. Returns `true` if non-empty.
    pub fn intersect(&mut self, other: TsInterval) -> bool {
        self.lb = self.lb.max(other.lb);
        self.ub = self.ub.min(other.ub);
        !self.is_empty()
    }

    /// Does `ts` lie inside the interval?
    #[must_use]
    pub fn contains(&self, ts: u64) -> bool {
        self.lb <= ts && ts <= self.ub
    }

    /// Width of the interval (number of permissible timestamps), saturating.
    #[must_use]
    pub fn width(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.ub - self.lb).saturating_add(1)
        }
    }
}

impl Default for TsInterval {
    fn default() -> Self {
        TsInterval::FULL
    }
}

impl fmt::Debug for TsInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else if self.ub == u64::MAX {
            write!(f, "[{}, ∞]", self.lb)
        } else {
            write!(f, "[{}, {}]", self.lb, self.ub)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_interval_contains_everything() {
        let iv = TsInterval::FULL;
        assert!(iv.contains(0));
        assert!(iv.contains(u64::MAX));
        assert!(!iv.is_empty());
    }

    #[test]
    fn after_raises_lb() {
        let mut iv = TsInterval::FULL;
        assert!(iv.after(Ts(10)));
        assert_eq!(iv.lb, 11);
        // After never lowers the bound.
        assert!(iv.after(Ts(5)));
        assert_eq!(iv.lb, 11);
    }

    #[test]
    fn before_lowers_ub() {
        let mut iv = TsInterval::FULL;
        assert!(iv.before(Ts(10)));
        assert_eq!(iv.ub, 9);
        assert!(iv.before(Ts(20)));
        assert_eq!(iv.ub, 9);
    }

    #[test]
    fn conflicting_constraints_empty_the_interval() {
        let mut iv = TsInterval::FULL;
        assert!(iv.after(Ts(10)));
        assert!(!iv.before(Ts(5)));
        assert!(iv.is_empty());
        assert_eq!(iv.width(), 0);
    }

    #[test]
    fn adjacent_constraints_leave_single_point() {
        let mut iv = TsInterval::FULL;
        assert!(iv.after(Ts(4))); // lb = 5
        assert!(iv.before(Ts(6))); // ub = 5
        assert_eq!(iv.width(), 1);
        assert!(iv.contains(5));
    }

    #[test]
    fn before_zero_is_empty() {
        let mut iv = TsInterval::FULL;
        assert!(iv.before(Ts(0)));
        // ub saturates at 0 - 1 -> 0; lb=0 so [0,0] still contains ts 0.
        assert!(iv.contains(0));
        // But a txn can never serialize before the initial load (ts 0);
        // callers use after(Ts::ZERO) on every committed read to exclude it.
        assert!(!iv.after(Ts(0)));
        assert!(iv.is_empty());
    }

    #[test]
    fn intersect() {
        let mut a = TsInterval::new(5, 20);
        assert!(a.intersect(TsInterval::new(10, 30)));
        assert_eq!(a, TsInterval::new(10, 20));
        assert!(!a.intersect(TsInterval::new(25, 30)));
        assert!(a.is_empty());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", TsInterval::FULL), "[0, ∞]");
        assert_eq!(format!("{:?}", TsInterval::new(3, 7)), "[3, 7]");
        assert_eq!(format!("{:?}", TsInterval::new(7, 3)), "[empty]");
    }
}
