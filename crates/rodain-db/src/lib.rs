//! # rodain-db — the RODAIN real-time main-memory database engine
//!
//! The deployable engine tying every substrate together: the main-memory
//! [`rodain_store::Store`], the OCC-DATI family of validators
//! ([`rodain_occ`]), modified-EDF scheduling with overload management
//! ([`rodain_sched`]), redo logging ([`rodain_log`]) and primary/mirror
//! replication ([`rodain_node`], [`rodain_net`]).
//!
//! ## Quickstart
//!
//! ```
//! use rodain_db::{Rodain, TxnOptions};
//! use rodain_store::{ObjectId, Value};
//!
//! let db = Rodain::builder().workers(2).build().unwrap();
//! db.load_initial(ObjectId(1), Value::Int(41));
//!
//! let receipt = db
//!     .execute(TxnOptions::firm_ms(50), |ctx| {
//!         let v = ctx.read(ObjectId(1))?.unwrap().as_int().unwrap();
//!         ctx.write(ObjectId(1), Value::Int(v + 1))?;
//!         Ok(None)
//!     })
//!     .unwrap();
//! assert!(receipt.csn.0 >= 1);
//! assert_eq!(db.get(ObjectId(1)), Some(Value::Int(42)));
//! ```
//!
//! ## Deployment modes
//!
//! * **Volatile** (default): pure main-memory, no durability — the paper's
//!   "no logs" reference configuration.
//! * **Contingency** ([`RodainBuilder::contingency_log`]): a node running
//!   alone; every commit group is flushed (group commit) to the local disk
//!   before the transaction completes.
//! * **Primary + Mirror** ([`RodainBuilder::mirror`] /
//!   [`Rodain::attach_mirror`]): commit groups ship to a hot stand-by
//!   [`rodain_node::MirrorNode`]; the *mirror's acknowledgement of the
//!   commit record* — one message round-trip — gates the commit, and the
//!   disk write happens asynchronously on the mirror. On mirror failure
//!   the engine degrades to Contingency (or volatile) mode; a recovered
//!   node rejoins as mirror via snapshot transfer + log catch-up.
//!
//! ## Tiered durability
//!
//! Within any mode, each transaction picks how much of the durability
//! pipeline its commit waits for: [`TxnOptions::with_durability`] selects
//! a [`DurabilityTier`] (`Volatile` / `MirrorAcked` / `DiskFsynced`), and
//! [`Rodain::submit`] returns a [`CommitFuture`] that resolves when that
//! tier's gate is satisfied — the worker is released at validation, so a
//! connection keeps submitting while earlier commits drain through the
//! shipper's coalesced frames. [`TxnReceipt::acked_tier`] reports the tier
//! actually achieved (DESIGN.md §14). [`Rodain::execute`] stays the
//! blocking `submit(..).wait()` wrapper.
//!
//! ## Checkpointing
//!
//! [`RodainBuilder::checkpoints`] starts a background checkpointer that
//! periodically takes a **fuzzy** snapshot of the live store — writers
//! are paused only for the instant the boundary CSN is fixed — installs
//! it atomically, and truncates redo-log segments wholly behind it, so
//! both restart time and on-disk log size stay bounded under a
//! [`CheckpointPolicy`]. Truncation is fenced on the mirror's
//! acknowledgement watermark: a segment is deleted only once its commits
//! exist in two independent places (the snapshot and the mirror). See
//! DESIGN.md §15 for the consistency argument and OPERATIONS.md for
//! tuning guidance; [`Rodain::force_checkpoint`] (and the server's
//! `Checkpoint` wire op) trigger one on demand.
//!
//! ## Observability
//!
//! Every engine publishes commit-path telemetry (latency histograms,
//! outcome counters, the `replication_mode` gauge, a failover event
//! trace) on a [`rodain_obs::Recorder`]. [`Rodain::metrics`] returns the
//! snapshot; [`RodainBuilder::recorder`] lets several components share one
//! registry. The metric catalog lives in the repository's `METRICS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctx;
mod engine;
mod error;
mod options;
mod replicate;
mod stats;

pub use ctx::TxnCtx;
pub use engine::{CommitFuture, CommitHold, CompletionHook, Rodain, RodainBuilder};
pub use error::{TxnAbort, TxnError};
pub use options::{CheckpointPolicy, DurabilityTier, MirrorLossPolicy, TxnOptions};
pub use replicate::{ReplicationMode, ShipBatchConfig};
pub use rodain_obs::{MetricsSnapshot, Recorder};
pub use stats::{EngineStats, TxnReceipt};
