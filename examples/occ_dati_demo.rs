//! A guided tour of OCC-DATI's *dynamic adjustment of serialization order*
//! — the mechanism RODAIN uses to cut unnecessary restarts.
//!
//! Run with: `cargo run --example occ_dati_demo`
//!
//! The classic scenario: a reader observes an object, a writer overwrites
//! it and commits first. Broadcast-commit OCC kills the reader; OCC-DATI
//! re-serializes it *before* the writer (a "backward commit") and both
//! transactions survive.

use rodain::occ::{make_controller, CcPriority, Protocol, ValidationOutcome};
use rodain::store::{ObjectId, Store, TxnId, Value, Workspace};

fn scenario(protocol: Protocol) {
    println!("── {} ──", protocol);
    let store = Store::new();
    store.load_initial(ObjectId(0), Value::Text("old route".into()));
    store.load_initial(ObjectId(1), Value::Int(0));
    let cc = make_controller(protocol);

    // T1 begins and reads object 0 (the soon-to-be-stale read).
    let t1 = TxnId(1);
    cc.begin(t1, CcPriority(1));
    let mut ws1 = Workspace::new(t1);
    let seen = ws1.read(&store, ObjectId(0)).unwrap();
    cc.on_read(t1, ObjectId(0), rodain::Ts::ZERO);
    println!("T1 reads  obj#0 → {seen:?}");

    // T2 overwrites object 0 and validates first.
    let t2 = TxnId(2);
    cc.begin(t2, CcPriority(1));
    let mut ws2 = Workspace::new(t2);
    ws2.write(ObjectId(0), Value::Text("new route".into()));
    match cc.validate(&ws2, &store) {
        ValidationOutcome::Commit {
            ser_ts,
            csn,
            victims,
        } => {
            println!("T2 writes obj#0, commits at ser_ts={ser_ts} (csn {csn})");
            if victims.is_empty() {
                println!("   no victims — T1's timestamp interval was merely capped");
            } else {
                println!("   victims: {victims:?} — T1 was restarted on the spot");
            }
        }
        other => println!("T2: {other:?}"),
    }

    // T1 now writes a DIFFERENT object and validates. Under OCC-DATI it
    // may serialize before T2 (its read of the old version is then
    // consistent); under OCC-BC it is already doomed.
    ws1.write(ObjectId(1), Value::Int(42));
    match cc.validate(&ws1, &store) {
        ValidationOutcome::Commit { ser_ts, csn, .. } => {
            println!(
                "T1 writes obj#1, commits at ser_ts={ser_ts} (csn {csn}) — \
                 placed BEFORE T2 in the serialization order"
            );
        }
        ValidationOutcome::Restart(reason) => {
            println!("T1 must restart: {reason} — its work is wasted");
        }
    }
    let stats = cc.stats();
    println!(
        "stats: commits={} self_restarts={} victim_restarts={} backward_commits={}\n",
        stats.commits, stats.self_restarts, stats.victim_restarts, stats.backward_commits
    );
}

fn main() {
    println!(
        "The stale-reader scenario under each concurrency-control protocol.\n\
         T1 reads obj#0; T2 overwrites obj#0 and commits; T1 then writes obj#1.\n\
         A serial order exists (T1 before T2) — a protocol only finds it if it\n\
         can place T1's commit *behind* an already committed timestamp.\n"
    );
    for protocol in [
        Protocol::OccBc,
        Protocol::OccDa,
        Protocol::OccTi,
        Protocol::OccDati,
    ] {
        scenario(protocol);
    }
    println!(
        "OCC-BC and OCC-DA lose T1 (restart); OCC-TI and OCC-DATI commit both\n\
         transactions via a backward timestamp — \"dynamic adjustment of the\n\
         serialization order using timestamp intervals\"."
    );
}
