//! Front-end chaos: a slow client — one that pipelines requests but never
//! reads its responses — must not stall the event loop or other
//! connections' commits. The server's answer is per-connection
//! backpressure: once the stalled connection's reply queue fills, its read
//! interest is withdrawn (TCP flow control stalls the sender) while every
//! other connection keeps committing.

use rodain_db::Rodain;
use rodain_server::protocol::write_frame;
use rodain_server::{Client, FrontEndConfig, Outcome, Request, RequestOp, Server};
use rodain_workload::NumberTranslationDb;
use std::io::{ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn stalled_reader_does_not_stall_other_connections() {
    let db = Arc::new(Rodain::builder().workers(2).build().unwrap());
    let schema = NumberTranslationDb::new(1_000);
    schema.populate(&db.store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let config = FrontEndConfig {
        workers: 2,
        max_inflight_per_conn: 4,
        reply_queue_cap: 4,
        ..FrontEndConfig::default()
    };
    let server = Server::new(db, schema).start_with(listener, config).unwrap();
    let addr = server.addr();

    // The stalled reader: blast pipelined requests and never read a byte.
    // Non-blocking writes, so once the server parks the connection's read
    // interest and the kernel buffers fill, the blast ends in WouldBlock
    // instead of deadlocking the test itself.
    let stall = TcpStream::connect(addr).unwrap();
    stall.set_nonblocking(true).unwrap();
    let mut frame = Vec::new();
    write_frame(
        &mut frame,
        &Request::new(1, 10_000, RequestOp::Translate { number: 1 }).encode(),
    )
    .unwrap();
    let mut wrote = 0u64;
    let blast_deadline = Instant::now() + Duration::from_secs(30);
    'blast: while Instant::now() < blast_deadline {
        let mut off = 0;
        while off < frame.len() {
            match (&stall).write(&frame[off..]) {
                Ok(0) => break 'blast,
                Ok(n) => off += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break 'blast,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break 'blast,
            }
        }
        wrote += 1;
    }
    assert!(wrote > 0, "stalled client could not send anything");

    // While that connection sits paused with its responses undelivered, a
    // healthy connection's requests keep committing promptly.
    let mut client = Client::connect(addr).unwrap();
    let healthy_start = Instant::now();
    for n in 0..100u64 {
        match client.translate(n, 5_000).unwrap() {
            Outcome::Ok(_) => {}
            other => panic!("healthy request {n} gave {other:?}"),
        }
    }
    assert!(
        healthy_start.elapsed() < Duration::from_secs(10),
        "healthy connection starved behind the stalled reader: {:?}",
        healthy_start.elapsed()
    );

    let stats = server.stats();
    assert!(
        stats.backpressure_pauses >= 1,
        "the stalled reader never tripped backpressure: {wrote} requests sent"
    );

    // The loop is still live after the stalled connection goes away.
    drop(stall);
    match client.translate(0, 5_000).unwrap() {
        Outcome::Ok(_) => {}
        other => panic!("post-drop request gave {other:?}"),
    }
    server.shutdown();
}
