//! The cluster peer protocol: request/response messages exchanged between
//! nodes (and coordinators) over [`rodain_net::PeerClient`] frames.
//!
//! Every frame is `version u8 · id u64le · tag u8 · body`. The id
//! correlates a reply with its request (the peer layer serializes calls
//! per connection, so correlation is a consistency check, not a
//! multiplexer). Compound payloads — operation lists, shard maps,
//! migrated after-images — ride inside [`Value`] via the log codec that
//! every layer of the system already speaks; snapshots are the opaque
//! bytes of [`rodain_log::encode_snapshot`]. Decoders reject foreign
//! versions first, then unknown tags, then any trailing bytes, so a
//! truncated or corrupted frame can never misparse into a different
//! message.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rodain_log::{decode_value, encode_value};
use rodain_shard::{decode_op, encode_op, ShardMap, ShardOp};
use rodain_store::{ObjectId, Value};

/// Version byte leading every cluster frame.
pub const CLUSTER_PROTOCOL_VERSION: u8 = 1;

/// One committed transaction shipped during migration catch-up: the
/// source shard's redo log regrouped per transaction in true validation
/// (CSN) order, exactly what the mirror catch-up path replays.
#[derive(Clone, Debug, PartialEq)]
pub struct TailCommit {
    /// Commit sequence number on the source shard.
    pub csn: u64,
    /// Serialization timestamp the after-images install at.
    pub ser_ts: u64,
    /// After-images in write order.
    pub writes: Vec<(ObjectId, Value)>,
}

/// A request to a cluster node's peer plane.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterRequest {
    /// The node's current shard map → [`ClusterReply::Map`].
    FetchMap,
    /// Install a newer shard map (idempotent; older epochs are ignored)
    /// → [`ClusterReply::Ack`].
    InstallMap {
        /// The map to install.
        map: ShardMap,
    },
    /// Allocate a cross-shard group id scoped to coordinator shard
    /// `shard` (the id embeds the shard in its high bits, so ids from
    /// different coordinator shards never collide) →
    /// [`ClusterReply::Gid`].
    AllocGid {
        /// The coordinator shard the id is scoped to.
        shard: u64,
    },
    /// 2PC phase 1: durably record the intent for `shard`'s slice of
    /// transaction `gid` → [`ClusterReply::Prepared`].
    Prepare {
        /// Group id of the cross-shard transaction.
        gid: u64,
        /// The shard carrying the decision record.
        coordinator_shard: u64,
        /// The participant shard this intent belongs to.
        shard: u64,
        /// Operations to apply on `shard` if the transaction commits.
        ops: Vec<ShardOp>,
    },
    /// 2PC phase 2a: durably record the decision on the coordinator
    /// shard — the commit point → [`ClusterReply::Decided`].
    Decide {
        /// The coordinator shard.
        shard: u64,
        /// Group id.
        gid: u64,
    },
    /// 2PC phase 2b: apply `shard`'s intent, stamping `stamp` into its
    /// redo stream (idempotent: a missing intent or an applied marker is
    /// a no-op) → [`ClusterReply::Ack`].
    Apply {
        /// The participant shard.
        shard: u64,
        /// Group id.
        gid: u64,
        /// Marker stamped into the intent (the decision CSN).
        stamp: i64,
    },
    /// Delete `shard`'s intent (or, with `decision`, the decision
    /// record) for `gid` → [`ClusterReply::Ack`].
    Cleanup {
        /// The shard holding the record.
        shard: u64,
        /// Group id.
        gid: u64,
        /// Delete the decision record instead of the intent.
        decision: bool,
    },
    /// Does a decision record exist for `gid` on coordinator shard
    /// `shard`? → [`ClusterReply::Decision`].
    QueryDecision {
        /// The coordinator shard.
        shard: u64,
        /// Group id.
        gid: u64,
    },
    /// Resolve every locally-held intent (presumed abort, consulting
    /// remote coordinators over this same protocol) →
    /// [`ClusterReply::Resolved`].
    TriggerResolve,
    /// Garbage-collect local decision records. Only safe after every
    /// node's [`ClusterRequest::TriggerResolve`] succeeded — see
    /// `DESIGN.md` §16 → [`ClusterReply::Cleaned`].
    GcDecisions,
    /// Execute a single-shard group of operations as one ordinary local
    /// transaction (the fast path needs no 2PC) →
    /// [`ClusterReply::Committed`].
    Commit {
        /// The shard every operation routes to.
        shard: u64,
        /// The operations.
        ops: Vec<ShardOp>,
    },
    /// Migration step 1: a consistent snapshot of `shard` with its
    /// boundary CSN, taken under the commit gate while traffic continues
    /// around it → [`ClusterReply::Snapshot`].
    MigrateSnapshot {
        /// The shard to snapshot.
        shard: u64,
    },
    /// Migration catch-up: committed transactions with CSN > `after`
    /// from `shard`'s redo log → [`ClusterReply::Tail`].
    MigrateTail {
        /// The shard.
        shard: u64,
        /// Last CSN the caller already has.
        after: u64,
    },
    /// Migration cutover, source side: detach `shard`'s engine (no
    /// further commits), flush its log, and return the final tail after
    /// `after` → [`ClusterReply::Tail`].
    MigrateSeal {
        /// The shard.
        shard: u64,
        /// Last CSN the caller already has.
        after: u64,
    },
    /// Migration step 2, target side: stage `snapshot` (the bytes of
    /// [`ClusterReply::Snapshot`]) for `shard` → [`ClusterReply::Ack`].
    InstallStaged {
        /// The shard being staged.
        shard: u64,
        /// The snapshot's boundary CSN.
        upto: u64,
        /// Encoded snapshot ([`rodain_log::encode_snapshot`]).
        snapshot: Vec<u8>,
    },
    /// Apply a catch-up tail to `shard`'s staged copy (idempotent by
    /// CSN) → [`ClusterReply::Ack`].
    ApplyTail {
        /// The staged shard.
        shard: u64,
        /// Committed transactions in CSN order.
        commits: Vec<TailCommit>,
    },
    /// Migration cutover, target side: durably checkpoint the staged
    /// copy, seat a live engine over it, and install `map` (the
    /// epoch-bumped assignment naming this node the owner) →
    /// [`ClusterReply::Ack`].
    Activate {
        /// The shard to seat.
        shard: u64,
        /// The post-cutover shard map.
        map: ShardMap,
    },
}

/// A cluster node's reply.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterReply {
    /// The node's current shard map.
    Map {
        /// The map.
        map: ShardMap,
    },
    /// An allocated cross-shard group id.
    Gid {
        /// The id (coordinator shard in the high bits).
        gid: u64,
    },
    /// The intent is durable.
    Prepared,
    /// The decision is durable; the transaction committed at `csn`.
    Decided {
        /// The coordinator shard's commit sequence number.
        csn: u64,
    },
    /// The request was performed.
    Ack,
    /// Whether a decision record exists.
    Decision {
        /// `true` if the transaction decided commit.
        decided: bool,
    },
    /// What a [`ClusterRequest::TriggerResolve`] pass did.
    Resolved {
        /// Intents rolled forward (decision found).
        rolled_forward: u64,
        /// Intents presumed aborted (no decision anywhere).
        aborted: u64,
    },
    /// Records deleted by [`ClusterRequest::GcDecisions`].
    Cleaned {
        /// How many.
        count: u64,
    },
    /// A single-shard group committed.
    Committed {
        /// The owning shard's commit sequence number.
        csn: u64,
    },
    /// A consistent shard snapshot.
    Snapshot {
        /// Boundary CSN: every commit ≤ `upto` is inside.
        upto: u64,
        /// Encoded snapshot bytes.
        snapshot: Vec<u8>,
    },
    /// A migration catch-up tail (empty when the caller is current).
    Tail {
        /// Committed transactions in CSN order.
        commits: Vec<TailCommit>,
    },
    /// The request failed; the condition travels as text.
    Err {
        /// What went wrong.
        message: String,
    },
}

/// Decoding failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterProtoError {
    /// The frame's version byte is not [`CLUSTER_PROTOCOL_VERSION`].
    Version {
        /// The byte received.
        got: u8,
    },
    /// Unknown message tag.
    UnknownTag(u8),
    /// The body is shorter than its fields or carries trailing bytes.
    Malformed(&'static str),
}

impl std::fmt::Display for ClusterProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterProtoError::Version { got } => {
                write!(f, "unsupported cluster protocol version {got}")
            }
            ClusterProtoError::UnknownTag(tag) => write!(f, "unknown cluster message tag {tag}"),
            ClusterProtoError::Malformed(what) => write!(f, "malformed cluster frame: {what}"),
        }
    }
}

impl std::error::Error for ClusterProtoError {}

fn put_ops(buf: &mut BytesMut, ops: &[ShardOp]) {
    encode_value(buf, &Value::Record(ops.iter().map(encode_op).collect()));
}

fn get_ops(buf: &mut Bytes) -> Result<Vec<ShardOp>, ClusterProtoError> {
    let value = decode_value(buf).map_err(|_| ClusterProtoError::Malformed("op list value"))?;
    let Value::Record(items) = value else {
        return Err(ClusterProtoError::Malformed("op list shape"));
    };
    items
        .iter()
        .map(|v| decode_op(v).ok_or(ClusterProtoError::Malformed("op shape")))
        .collect()
}

fn put_map(buf: &mut BytesMut, map: &ShardMap) {
    encode_value(buf, &map.to_value());
}

fn get_map(buf: &mut Bytes) -> Result<ShardMap, ClusterProtoError> {
    let value = decode_value(buf).map_err(|_| ClusterProtoError::Malformed("map value"))?;
    ShardMap::from_value(&value).ok_or(ClusterProtoError::Malformed("map shape"))
}

fn put_blob(buf: &mut BytesMut, blob: &[u8]) {
    buf.put_u32_le(blob.len() as u32);
    buf.put_slice(blob);
}

fn get_blob(buf: &mut Bytes) -> Result<Vec<u8>, ClusterProtoError> {
    if buf.remaining() < 4 {
        return Err(ClusterProtoError::Malformed("blob length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(ClusterProtoError::Malformed("blob body"));
    }
    Ok(buf.copy_to_bytes(len).to_vec())
}

fn put_string(buf: &mut BytesMut, s: &str) {
    put_blob(buf, s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, ClusterProtoError> {
    String::from_utf8(get_blob(buf)?).map_err(|_| ClusterProtoError::Malformed("string utf-8"))
}

fn put_tail(buf: &mut BytesMut, commits: &[TailCommit]) {
    buf.put_u32_le(commits.len() as u32);
    for commit in commits {
        buf.put_u64_le(commit.csn);
        buf.put_u64_le(commit.ser_ts);
        encode_value(
            buf,
            &Value::Record(
                commit
                    .writes
                    .iter()
                    .map(|(oid, value)| {
                        Value::Record(vec![Value::Int(oid.0 as i64), value.clone()])
                    })
                    .collect(),
            ),
        );
    }
}

fn get_tail(buf: &mut Bytes) -> Result<Vec<TailCommit>, ClusterProtoError> {
    if buf.remaining() < 4 {
        return Err(ClusterProtoError::Malformed("tail length"));
    }
    let count = buf.get_u32_le() as usize;
    let mut commits = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        if buf.remaining() < 16 {
            return Err(ClusterProtoError::Malformed("tail commit header"));
        }
        let csn = buf.get_u64_le();
        let ser_ts = buf.get_u64_le();
        let value =
            decode_value(buf).map_err(|_| ClusterProtoError::Malformed("tail writes value"))?;
        let Value::Record(items) = value else {
            return Err(ClusterProtoError::Malformed("tail writes shape"));
        };
        let mut writes = Vec::with_capacity(items.len());
        for item in items {
            let Value::Record(fields) = item else {
                return Err(ClusterProtoError::Malformed("tail write shape"));
            };
            let [Value::Int(oid), image] = fields.as_slice() else {
                return Err(ClusterProtoError::Malformed("tail write fields"));
            };
            writes.push((ObjectId(*oid as u64), image.clone()));
        }
        commits.push(TailCommit {
            csn,
            ser_ts,
            writes,
        });
    }
    Ok(commits)
}

fn frame_header(id: u64, tag: u8) -> BytesMut {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(CLUSTER_PROTOCOL_VERSION);
    buf.put_u64_le(id);
    buf.put_u8(tag);
    buf
}

fn open_frame(mut frame: Bytes) -> Result<(u64, u8, Bytes), ClusterProtoError> {
    if frame.remaining() < 1 {
        return Err(ClusterProtoError::Malformed("empty frame"));
    }
    let version = frame.get_u8();
    if version != CLUSTER_PROTOCOL_VERSION {
        return Err(ClusterProtoError::Version { got: version });
    }
    if frame.remaining() < 9 {
        return Err(ClusterProtoError::Malformed("frame header"));
    }
    let id = frame.get_u64_le();
    let tag = frame.get_u8();
    Ok((id, tag, frame))
}

fn need_u64(buf: &mut Bytes, what: &'static str) -> Result<u64, ClusterProtoError> {
    if buf.remaining() < 8 {
        return Err(ClusterProtoError::Malformed(what));
    }
    Ok(buf.get_u64_le())
}

fn finish<T>(value: T, buf: &Bytes) -> Result<T, ClusterProtoError> {
    if buf.has_remaining() {
        return Err(ClusterProtoError::Malformed("trailing bytes"));
    }
    Ok(value)
}

/// Encode a request with its correlation id.
#[must_use]
pub fn encode_request(id: u64, request: &ClusterRequest) -> Bytes {
    let mut buf = match request {
        ClusterRequest::FetchMap => frame_header(id, 1),
        ClusterRequest::InstallMap { map } => {
            let mut buf = frame_header(id, 2);
            put_map(&mut buf, map);
            buf
        }
        ClusterRequest::AllocGid { shard } => {
            let mut buf = frame_header(id, 3);
            buf.put_u64_le(*shard);
            buf
        }
        ClusterRequest::Prepare {
            gid,
            coordinator_shard,
            shard,
            ops,
        } => {
            let mut buf = frame_header(id, 4);
            buf.put_u64_le(*gid);
            buf.put_u64_le(*coordinator_shard);
            buf.put_u64_le(*shard);
            put_ops(&mut buf, ops);
            buf
        }
        ClusterRequest::Decide { shard, gid } => {
            let mut buf = frame_header(id, 5);
            buf.put_u64_le(*shard);
            buf.put_u64_le(*gid);
            buf
        }
        ClusterRequest::Apply { shard, gid, stamp } => {
            let mut buf = frame_header(id, 6);
            buf.put_u64_le(*shard);
            buf.put_u64_le(*gid);
            buf.put_i64_le(*stamp);
            buf
        }
        ClusterRequest::Cleanup {
            shard,
            gid,
            decision,
        } => {
            let mut buf = frame_header(id, 7);
            buf.put_u64_le(*shard);
            buf.put_u64_le(*gid);
            buf.put_u8(u8::from(*decision));
            buf
        }
        ClusterRequest::QueryDecision { shard, gid } => {
            let mut buf = frame_header(id, 8);
            buf.put_u64_le(*shard);
            buf.put_u64_le(*gid);
            buf
        }
        ClusterRequest::TriggerResolve => frame_header(id, 9),
        ClusterRequest::GcDecisions => frame_header(id, 10),
        ClusterRequest::Commit { shard, ops } => {
            let mut buf = frame_header(id, 11);
            buf.put_u64_le(*shard);
            put_ops(&mut buf, ops);
            buf
        }
        ClusterRequest::MigrateSnapshot { shard } => {
            let mut buf = frame_header(id, 12);
            buf.put_u64_le(*shard);
            buf
        }
        ClusterRequest::MigrateTail { shard, after } => {
            let mut buf = frame_header(id, 13);
            buf.put_u64_le(*shard);
            buf.put_u64_le(*after);
            buf
        }
        ClusterRequest::MigrateSeal { shard, after } => {
            let mut buf = frame_header(id, 14);
            buf.put_u64_le(*shard);
            buf.put_u64_le(*after);
            buf
        }
        ClusterRequest::InstallStaged {
            shard,
            upto,
            snapshot,
        } => {
            let mut buf = frame_header(id, 15);
            buf.put_u64_le(*shard);
            buf.put_u64_le(*upto);
            put_blob(&mut buf, snapshot);
            buf
        }
        ClusterRequest::ApplyTail { shard, commits } => {
            let mut buf = frame_header(id, 16);
            buf.put_u64_le(*shard);
            put_tail(&mut buf, commits);
            buf
        }
        ClusterRequest::Activate { shard, map } => {
            let mut buf = frame_header(id, 17);
            buf.put_u64_le(*shard);
            put_map(&mut buf, map);
            buf
        }
    };
    buf.freeze()
}

/// Decode a request frame into `(id, request)`.
pub fn decode_request(frame: Bytes) -> Result<(u64, ClusterRequest), ClusterProtoError> {
    let (id, tag, mut buf) = open_frame(frame)?;
    let request = match tag {
        1 => ClusterRequest::FetchMap,
        2 => ClusterRequest::InstallMap {
            map: get_map(&mut buf)?,
        },
        3 => ClusterRequest::AllocGid {
            shard: need_u64(&mut buf, "alloc gid shard")?,
        },
        4 => ClusterRequest::Prepare {
            gid: need_u64(&mut buf, "prepare gid")?,
            coordinator_shard: need_u64(&mut buf, "prepare coordinator")?,
            shard: need_u64(&mut buf, "prepare shard")?,
            ops: get_ops(&mut buf)?,
        },
        5 => ClusterRequest::Decide {
            shard: need_u64(&mut buf, "decide shard")?,
            gid: need_u64(&mut buf, "decide gid")?,
        },
        6 => ClusterRequest::Apply {
            shard: need_u64(&mut buf, "apply shard")?,
            gid: need_u64(&mut buf, "apply gid")?,
            stamp: {
                if buf.remaining() < 8 {
                    return Err(ClusterProtoError::Malformed("apply stamp"));
                }
                buf.get_i64_le()
            },
        },
        7 => ClusterRequest::Cleanup {
            shard: need_u64(&mut buf, "cleanup shard")?,
            gid: need_u64(&mut buf, "cleanup gid")?,
            decision: {
                if buf.remaining() < 1 {
                    return Err(ClusterProtoError::Malformed("cleanup flag"));
                }
                buf.get_u8() != 0
            },
        },
        8 => ClusterRequest::QueryDecision {
            shard: need_u64(&mut buf, "query shard")?,
            gid: need_u64(&mut buf, "query gid")?,
        },
        9 => ClusterRequest::TriggerResolve,
        10 => ClusterRequest::GcDecisions,
        11 => ClusterRequest::Commit {
            shard: need_u64(&mut buf, "commit shard")?,
            ops: get_ops(&mut buf)?,
        },
        12 => ClusterRequest::MigrateSnapshot {
            shard: need_u64(&mut buf, "snapshot shard")?,
        },
        13 => ClusterRequest::MigrateTail {
            shard: need_u64(&mut buf, "tail shard")?,
            after: need_u64(&mut buf, "tail after")?,
        },
        14 => ClusterRequest::MigrateSeal {
            shard: need_u64(&mut buf, "seal shard")?,
            after: need_u64(&mut buf, "seal after")?,
        },
        15 => ClusterRequest::InstallStaged {
            shard: need_u64(&mut buf, "staged shard")?,
            upto: need_u64(&mut buf, "staged upto")?,
            snapshot: get_blob(&mut buf)?,
        },
        16 => ClusterRequest::ApplyTail {
            shard: need_u64(&mut buf, "apply-tail shard")?,
            commits: get_tail(&mut buf)?,
        },
        17 => ClusterRequest::Activate {
            shard: need_u64(&mut buf, "activate shard")?,
            map: get_map(&mut buf)?,
        },
        other => return Err(ClusterProtoError::UnknownTag(other)),
    };
    finish((id, request), &buf)
}

/// Encode a reply with the request's correlation id.
#[must_use]
pub fn encode_reply(id: u64, reply: &ClusterReply) -> Bytes {
    let buf = match reply {
        ClusterReply::Map { map } => {
            let mut buf = frame_header(id, 1);
            put_map(&mut buf, map);
            buf
        }
        ClusterReply::Gid { gid } => {
            let mut buf = frame_header(id, 2);
            buf.put_u64_le(*gid);
            buf
        }
        ClusterReply::Prepared => frame_header(id, 3),
        ClusterReply::Decided { csn } => {
            let mut buf = frame_header(id, 4);
            buf.put_u64_le(*csn);
            buf
        }
        ClusterReply::Ack => frame_header(id, 5),
        ClusterReply::Decision { decided } => {
            let mut buf = frame_header(id, 6);
            buf.put_u8(u8::from(*decided));
            buf
        }
        ClusterReply::Resolved {
            rolled_forward,
            aborted,
        } => {
            let mut buf = frame_header(id, 7);
            buf.put_u64_le(*rolled_forward);
            buf.put_u64_le(*aborted);
            buf
        }
        ClusterReply::Cleaned { count } => {
            let mut buf = frame_header(id, 8);
            buf.put_u64_le(*count);
            buf
        }
        ClusterReply::Committed { csn } => {
            let mut buf = frame_header(id, 9);
            buf.put_u64_le(*csn);
            buf
        }
        ClusterReply::Snapshot { upto, snapshot } => {
            let mut buf = frame_header(id, 10);
            buf.put_u64_le(*upto);
            put_blob(&mut buf, snapshot);
            buf
        }
        ClusterReply::Tail { commits } => {
            let mut buf = frame_header(id, 11);
            put_tail(&mut buf, commits);
            buf
        }
        ClusterReply::Err { message } => {
            let mut buf = frame_header(id, 12);
            put_string(&mut buf, message);
            buf
        }
    };
    buf.freeze()
}

/// Decode a reply frame into `(id, reply)`.
pub fn decode_reply(frame: Bytes) -> Result<(u64, ClusterReply), ClusterProtoError> {
    let (id, tag, mut buf) = open_frame(frame)?;
    let reply = match tag {
        1 => ClusterReply::Map {
            map: get_map(&mut buf)?,
        },
        2 => ClusterReply::Gid {
            gid: need_u64(&mut buf, "gid")?,
        },
        3 => ClusterReply::Prepared,
        4 => ClusterReply::Decided {
            csn: need_u64(&mut buf, "decided csn")?,
        },
        5 => ClusterReply::Ack,
        6 => ClusterReply::Decision {
            decided: {
                if buf.remaining() < 1 {
                    return Err(ClusterProtoError::Malformed("decision flag"));
                }
                buf.get_u8() != 0
            },
        },
        7 => ClusterReply::Resolved {
            rolled_forward: need_u64(&mut buf, "resolved forward")?,
            aborted: need_u64(&mut buf, "resolved aborted")?,
        },
        8 => ClusterReply::Cleaned {
            count: need_u64(&mut buf, "cleaned count")?,
        },
        9 => ClusterReply::Committed {
            csn: need_u64(&mut buf, "committed csn")?,
        },
        10 => ClusterReply::Snapshot {
            upto: need_u64(&mut buf, "snapshot upto")?,
            snapshot: get_blob(&mut buf)?,
        },
        11 => ClusterReply::Tail {
            commits: get_tail(&mut buf)?,
        },
        12 => ClusterReply::Err {
            message: get_string(&mut buf)?,
        },
        other => return Err(ClusterProtoError::UnknownTag(other)),
    };
    finish((id, reply), &buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let map = ShardMap::single(3, "127.0.0.1:1", "127.0.0.1:2");
        let samples = vec![
            ClusterRequest::FetchMap,
            ClusterRequest::InstallMap { map: map.clone() },
            ClusterRequest::AllocGid { shard: 2 },
            ClusterRequest::Prepare {
                gid: (2 << 32) | 7,
                coordinator_shard: 2,
                shard: 1,
                ops: vec![
                    ShardOp::Add {
                        oid: ObjectId(9),
                        delta: -3,
                    },
                    ShardOp::Put {
                        oid: ObjectId(10),
                        value: Value::Text("x".into()),
                    },
                ],
            },
            ClusterRequest::Apply {
                shard: 1,
                gid: 3,
                stamp: -1,
            },
            ClusterRequest::InstallStaged {
                shard: 0,
                upto: 42,
                snapshot: vec![1, 2, 3],
            },
            ClusterRequest::ApplyTail {
                shard: 0,
                commits: vec![TailCommit {
                    csn: 43,
                    ser_ts: 4300,
                    writes: vec![(ObjectId(5), Value::Int(7))],
                }],
            },
            ClusterRequest::Activate { shard: 0, map },
        ];
        for (i, request) in samples.into_iter().enumerate() {
            let id = i as u64 + 100;
            let decoded = decode_request(encode_request(id, &request)).unwrap();
            assert_eq!(decoded, (id, request));
        }
    }

    #[test]
    fn replies_roundtrip() {
        let samples = vec![
            ClusterReply::Map {
                map: ShardMap::single(2, "a:1", "a:2"),
            },
            ClusterReply::Gid { gid: u64::MAX },
            ClusterReply::Prepared,
            ClusterReply::Decided { csn: 17 },
            ClusterReply::Tail {
                commits: vec![TailCommit {
                    csn: 1,
                    ser_ts: 100,
                    writes: vec![],
                }],
            },
            ClusterReply::Err {
                message: "nope".into(),
            },
        ];
        for (i, reply) in samples.into_iter().enumerate() {
            let id = i as u64;
            let decoded = decode_reply(encode_reply(id, &reply)).unwrap();
            assert_eq!(decoded, (id, reply));
        }
    }

    #[test]
    fn foreign_version_and_trailing_bytes_rejected() {
        let frame = encode_request(1, &ClusterRequest::FetchMap);
        let mut wrong = frame.to_vec();
        wrong[0] = 9;
        assert_eq!(
            decode_request(Bytes::from(wrong)),
            Err(ClusterProtoError::Version { got: 9 })
        );
        let mut trailing = frame.to_vec();
        trailing.push(0);
        assert_eq!(
            decode_request(Bytes::from(trailing)),
            Err(ClusterProtoError::Malformed("trailing bytes"))
        );
    }
}
