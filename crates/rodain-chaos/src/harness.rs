//! The chaos harness: a real primary/mirror engine pair driven through a
//! [`FaultPlan`] by a single-threaded increment workload, with durability
//! invariants checked at quiescence.
//!
//! Determinism: the driver is single-threaded, every injector is either
//! exact (sever, crash, one-shot disk faults) or a pure function of the
//! frame sequence (jitter), and verdict/trace lines never contain
//! wall-clock data — so the same plan over the same config produces a
//! byte-identical [`ChaosVerdict::render`].

use crate::invariants::Ledger;
use crate::plan::{FaultEvent, FaultPlan};
use rodain_db::{MirrorLossPolicy, ReplicationMode, Rodain, TxnOptions};
use rodain_log::{DiskFaultControl, FaultyStorage, LogStorage, LogStorageConfig};
use rodain_net::{InProcTransport, LinkControl, LossyLink};
use rodain_node::{MirrorConfig, MirrorExit, MirrorNode, NodeRole, RoleEvent, RoleMachine};
use rodain_store::{ObjectId, Store, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Degraded mode the primary falls back to when its mirror dies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FallbackPolicy {
    /// Keep serving without durability (the paper's measured fast path).
    Volatile,
    /// Switch to synchronous group-commit disk logging.
    Contingency,
}

/// Harness knobs.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Objects in the increment workload (round-robin targets).
    pub objects: u64,
    /// Commit attempts to drive.
    pub commits: u64,
    /// Engine worker threads (the driver itself is single-threaded).
    pub workers: usize,
    /// Engine commit-gate timeout; kept short so blackholed or corrupted
    /// commit records fail over quickly.
    pub commit_gate_timeout: Duration,
    /// Degraded-mode policy wired into every mirror attachment.
    pub fallback: FallbackPolicy,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            objects: 8,
            commits: 48,
            workers: 2,
            commit_gate_timeout: Duration::from_millis(300),
            fallback: FallbackPolicy::Contingency,
        }
    }
}

/// Outcome of one harness run.
#[derive(Clone, Debug)]
pub struct ChaosVerdict {
    /// Deterministic per-commit / per-event log of the run.
    pub trace: Vec<String>,
    /// Invariant violations (empty on a passing run).
    pub violations: Vec<String>,
    /// Commits the engine acknowledged.
    pub acked: u64,
    /// Commits the driver attempted.
    pub attempts: u64,
    /// Replication mode observed at quiescence.
    pub final_mode: ReplicationMode,
}

impl ChaosVerdict {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Stable textual form (no wall-clock data): byte-identical across
    /// runs of the same plan and config.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.trace {
            out.push_str(line);
            out.push('\n');
        }
        if self.violations.is_empty() {
            out.push_str("violations: none\n");
        } else {
            for violation in &self.violations {
                out.push_str("VIOLATION: ");
                out.push_str(violation);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "acked {}/{} attempts, final mode {:?}\n",
            self.acked, self.attempts, self.final_mode
        ));
        out
    }
}

/// Which parts of the pair are alive, from the harness's (ground-truth)
/// point of view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Topology {
    Pair,
    MirrorDown,
    Promoted,
}

struct MirrorHandle {
    store: Arc<Store>,
    shutdown: Arc<AtomicBool>,
    control: LinkControl,
    thread: std::thread::JoinHandle<(MirrorExit, rodain_node::MirrorReport)>,
}

/// Runs workloads against an engine pair under a fault plan.
pub struct ChaosHarness {
    config: ChaosConfig,
}

impl ChaosHarness {
    /// A harness with the given knobs.
    #[must_use]
    pub fn new(config: ChaosConfig) -> ChaosHarness {
        ChaosHarness { config }
    }

    /// Execute `plan`: build a primary+mirror pair, drive the increment
    /// workload, injecting each planned fault immediately before its
    /// commit offset, then quiesce and check every invariant.
    #[must_use]
    pub fn run(&self, plan: &FaultPlan) -> ChaosVerdict {
        Runner::new(self.config.clone()).run(plan)
    }
}

struct Runner {
    config: ChaosConfig,
    scratch: PathBuf,
    db: Option<Rodain>,
    mirror: Option<MirrorHandle>,
    disk_ctl: Option<DiskFaultControl>,
    serving: RoleMachine,
    standby: RoleMachine,
    topology: Topology,
    /// False once a fault that can silently lose frames was injected on
    /// the current link; suppresses the replica-equality check.
    link_clean: bool,
    /// True once an injected fault leaves the final mode timing-dependent
    /// (scripted corruption); suppresses the mode check.
    mode_flexible: bool,
    ledger: Ledger,
    trace: Vec<String>,
    violations: Vec<String>,
    dir_seq: u64,
}

impl Runner {
    fn new(config: ChaosConfig) -> Runner {
        let scratch = std::env::temp_dir().join(format!(
            "rodain-chaos-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).expect("create chaos scratch dir");
        let ledger = Ledger::new(config.objects);
        Runner {
            config,
            scratch,
            db: None,
            mirror: None,
            disk_ctl: None,
            serving: RoleMachine::new(NodeRole::Primary),
            standby: RoleMachine::new(NodeRole::Mirror),
            topology: Topology::Pair,
            link_clean: true,
            mode_flexible: false,
            ledger,
            trace: Vec::new(),
            violations: Vec::new(),
            dir_seq: 0,
        }
    }

    fn run(mut self, plan: &FaultPlan) -> ChaosVerdict {
        self.trace.push(format!(
            "run: {} commits over {} objects, {} planned faults (seed {})",
            self.config.commits,
            self.config.objects,
            plan.events.len(),
            plan.seed
        ));
        self.start_pair();
        let mut next = 0usize;
        for k in 1..=self.config.commits {
            while next < plan.events.len() && plan.events[next].at_commit <= k {
                let event = plan.events[next].event;
                self.trace.push(format!("commit {k}: inject {event}"));
                self.apply_event(event);
                self.check_roles(&format!("after {event}"));
                next += 1;
            }
            self.attempt_commit(k);
        }
        while next < plan.events.len() {
            self.trace.push(format!(
                "skipped {} (scheduled past the workload end)",
                plan.events[next].event
            ));
            next += 1;
        }
        self.quiesce();
        self.finish()
    }

    // ----- pair lifecycle -------------------------------------------------

    fn start_pair(&mut self) {
        let db = Rodain::builder()
            .workers(self.config.workers)
            .commit_gate_timeout(self.config.commit_gate_timeout)
            .build()
            .expect("build primary engine");
        for i in 0..self.config.objects {
            db.load_initial(ObjectId(i), Value::Int(0));
        }
        self.db = Some(db);
        self.attach_fresh_mirror();
    }

    fn mirror_node_config() -> MirrorConfig {
        MirrorConfig {
            poll_interval: Duration::from_millis(1),
            heartbeat_interval: Duration::from_millis(10),
            peer_timeout: Duration::from_millis(100),
            suspect_rounds: 3,
            snapshot_dir: None,
            takeover_workers: 2,
        }
    }

    fn fresh_policy(&mut self) -> MirrorLossPolicy {
        match self.config.fallback {
            FallbackPolicy::Volatile => MirrorLossPolicy::ContinueVolatile,
            FallbackPolicy::Contingency => {
                self.dir_seq += 1;
                MirrorLossPolicy::Contingency {
                    dir: self.scratch.join(format!("fallback-{}", self.dir_seq)),
                    segment_bytes: None,
                }
            }
        }
    }

    /// Spawn a fresh mirror over a new lossy in-process link and attach it
    /// to the current serving engine (snapshot transfer + live stream).
    fn attach_fresh_mirror(&mut self) {
        let (primary_side, mirror_side) = InProcTransport::pair();
        let (lossy, control) = LossyLink::new(primary_side);
        let store = Arc::new(Store::new());
        let mut mirror = MirrorNode::new(
            store.clone(),
            Arc::new(mirror_side),
            None,
            Self::mirror_node_config(),
        );
        let shutdown = mirror.shutdown_handle();
        let thread = std::thread::spawn(move || {
            mirror.join().expect("mirror join handshake");
            mirror.run()
        });
        let policy = self.fresh_policy();
        self.db
            .as_ref()
            .expect("serving engine")
            .attach_mirror(Arc::new(lossy), policy)
            .expect("attach mirror");
        self.mirror = Some(MirrorHandle {
            store,
            shutdown,
            control,
            thread,
        });
        self.disk_ctl = None; // attach replaced any contingency replicator
        self.topology = Topology::Pair;
        self.link_clean = true;
    }

    /// Promote `store` (the dead primary's mirror copy) into a serving
    /// engine running Contingency mode over a fault-injectable disk log.
    fn promote(&mut self, store: Arc<Store>) {
        self.dir_seq += 1;
        let dir = self.scratch.join(format!("promoted-{}", self.dir_seq));
        let storage =
            LogStorage::open(LogStorageConfig::new(&dir)).expect("open promoted contingency log");
        let (faulty, disk_ctl) = FaultyStorage::new(storage);
        let db = Rodain::builder()
            .workers(self.config.workers)
            .store(store)
            .contingency_storage(faulty)
            .commit_gate_timeout(self.config.commit_gate_timeout)
            .build()
            .expect("promote mirror store");
        self.disk_ctl = Some(disk_ctl);
        self.db = Some(db);
        self.topology = Topology::Promoted;
    }

    // ----- role bookkeeping ----------------------------------------------

    fn apply_role(&mut self, on_serving: bool, event: RoleEvent) {
        let machine = if on_serving {
            &mut self.serving
        } else {
            &mut self.standby
        };
        if let Err(e) = machine.apply(event) {
            self.violations.push(format!("role machine rejected: {e}"));
        }
    }

    fn role_mirror_died(&mut self) {
        self.apply_role(true, RoleEvent::PeerFailed);
        self.apply_role(false, RoleEvent::LocalFailure);
    }

    fn role_primary_died(&mut self) {
        self.apply_role(false, RoleEvent::PeerFailed); // standby promotes
        self.apply_role(true, RoleEvent::LocalFailure);
        std::mem::swap(&mut self.serving, &mut self.standby);
    }

    fn role_rejoined(&mut self) {
        self.apply_role(false, RoleEvent::RecoveryComplete);
        self.apply_role(true, RoleEvent::PeerJoined);
    }

    /// Split-brain freedom: exactly the serving node serves.
    fn check_roles(&mut self, when: &str) {
        if !self.serving.serves_transactions() || self.standby.serves_transactions() {
            self.violations.push(format!(
                "{when}: roles broke single-writer (serving={}, standby={})",
                self.serving.role(),
                self.standby.role()
            ));
        }
    }

    // ----- fault application ---------------------------------------------

    fn apply_event(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Delay { base_us, jitter_us } => {
                if let Some(m) = &self.mirror {
                    m.control.set_delay(
                        Duration::from_micros(base_us),
                        Duration::from_micros(jitter_us),
                    );
                }
            }
            FaultEvent::DuplicateOneIn { n } => {
                if let Some(m) = &self.mirror {
                    m.control.set_duplicate_one_in(n);
                }
            }
            FaultEvent::CorruptNextFrame => {
                if let Some(m) = &self.mirror {
                    m.control.corrupt_next();
                    // Whether the corrupted frame is a commit record or an
                    // interleaved heartbeat races with wall-clock timing;
                    // the link and final mode are no longer predictable.
                    self.link_clean = false;
                    self.mode_flexible = true;
                }
            }
            FaultEvent::HealLink => {
                if let Some(m) = &self.mirror {
                    m.control.heal();
                }
            }
            FaultEvent::SeverLink => {
                let Some(m) = self.mirror.take() else {
                    self.trace.push("  (no mirror to sever)".into());
                    return;
                };
                m.control.sever();
                let (exit, _report) = m.thread.join().expect("mirror thread");
                if exit != MirrorExit::PrimaryFailed {
                    self.violations
                        .push(format!("severed mirror exited as {exit:?}"));
                }
                self.role_mirror_died();
                self.topology = Topology::MirrorDown;
            }
            FaultEvent::CrashMirror => {
                let Some(m) = self.mirror.take() else {
                    self.trace.push("  (no mirror to crash)".into());
                    return;
                };
                m.shutdown.store(true, Ordering::Release);
                let _ = m.thread.join().expect("mirror thread");
                // The dead peer must also stop answering the link.
                m.control.sever();
                self.role_mirror_died();
                self.topology = Topology::MirrorDown;
            }
            FaultEvent::CrashPrimary => {
                let Some(m) = self.mirror.take() else {
                    self.trace.push("  (no mirror to promote)".into());
                    return;
                };
                // Dropping the engine closes the mirror link; the mirror
                // observes the disconnect and exits ready for promotion.
                drop(self.db.take());
                let (exit, _report) = m.thread.join().expect("mirror thread");
                if exit != MirrorExit::PrimaryFailed {
                    self.violations
                        .push(format!("mirror exited as {exit:?} after primary crash"));
                }
                self.role_primary_died();
                self.promote(m.store);
            }
            FaultEvent::PartitionUntilFailover => {
                let Some(m) = self.mirror.take() else {
                    self.trace.push("  (no mirror to partition from)".into());
                    return;
                };
                // Starve the mirror's watchdog: frames vanish silently
                // while the old primary still believes it is connected.
                m.control.set_blackhole(true);
                let (exit, _report) = m.thread.join().expect("mirror thread");
                if exit != MirrorExit::PrimaryFailed {
                    self.violations
                        .push(format!("partitioned mirror exited as {exit:?}"));
                }
                // The old primary lost the partition: it is failed.
                drop(self.db.take());
                self.role_primary_died();
                self.promote(m.store);
            }
            FaultEvent::RejoinMirror => {
                if self.mirror.is_some() {
                    self.trace.push("  (mirror already attached)".into());
                    return;
                }
                self.attach_fresh_mirror();
                self.role_rejoined();
            }
            FaultEvent::DiskFailFlush => match &self.disk_ctl {
                Some(ctl) => ctl.fail_next_flushes(1),
                None => self.trace.push("  (no fault-injectable disk)".into()),
            },
            FaultEvent::DiskFailAppend => match &self.disk_ctl {
                Some(ctl) => ctl.fail_next_appends(1),
                None => self.trace.push("  (no fault-injectable disk)".into()),
            },
            FaultEvent::PartialAppend => match &self.disk_ctl {
                Some(ctl) => ctl.partial_next_append(),
                None => self.trace.push("  (no fault-injectable disk)".into()),
            },
            FaultEvent::TornWrite => match &self.disk_ctl {
                Some(ctl) => {
                    ctl.tear_next_append();
                    // A torn write poisons the serving node's contingency
                    // log: the node has crashed mid-write, every later
                    // synchronous commit fails, and the engine's reported
                    // mode is no longer a pure function of the plan.
                    self.mode_flexible = true;
                }
                None => self.trace.push("  (no fault-injectable disk)".into()),
            },
        }
    }

    // ----- workload -------------------------------------------------------

    fn attempt_commit(&mut self, k: u64) {
        let oid = ObjectId((k - 1) % self.config.objects);
        self.ledger.record_attempt(oid.0);
        let db = self.db.as_ref().expect("serving engine");
        let result = db.execute(TxnOptions::soft_ms(30_000), move |ctx| {
            let v = ctx.read(oid)?.expect("workload object exists");
            let v = v.as_int().expect("workload object is an integer");
            ctx.write(oid, Value::Int(v + 1))?;
            Ok(None)
        });
        match result {
            Ok(_) => {
                self.ledger.record_ack(oid.0);
                self.trace
                    .push(format!("commit {k}: acked (object {})", oid.0));
            }
            Err(e) => {
                self.trace
                    .push(format!("commit {k}: failed on object {} ({e})", oid.0));
            }
        }
    }

    // ----- quiescence checks ----------------------------------------------

    fn expected_mode(&self) -> ReplicationMode {
        match self.topology {
            Topology::Pair => ReplicationMode::Mirrored,
            Topology::Promoted => ReplicationMode::Contingency,
            Topology::MirrorDown => match self.config.fallback {
                FallbackPolicy::Contingency => ReplicationMode::Contingency,
                FallbackPolicy::Volatile => ReplicationMode::Volatile,
            },
        }
    }

    fn quiesce(&mut self) {
        let db = self.db.as_ref().expect("serving engine");

        // 5: the mode degraded exactly as the plan dictated. The last
        // transition can lag the event by one ack-reader poll, so allow a
        // bounded settle.
        if !self.mode_flexible {
            let expected = self.expected_mode();
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                let mode = db.replication_mode();
                if mode == expected {
                    // The observability layer must agree with the engine:
                    // the `replication_mode` gauge is what an operator
                    // dashboard would alert on during this very failover.
                    let gauge = db.metrics().gauge("replication_mode");
                    if gauge != Some(expected.as_gauge()) {
                        self.violations.push(format!(
                            "replication_mode gauge at quiescence: expected {}, observed {gauge:?}",
                            expected.as_gauge()
                        ));
                    }
                    break;
                }
                if Instant::now() >= deadline {
                    self.violations.push(format!(
                        "mode at quiescence: expected {expected:?}, observed {mode:?}"
                    ));
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }

        // 3: with a live mirror over a clean link, the copy converges to
        // an identical database (values AND version metadata).
        if self.topology == Topology::Pair && self.link_clean {
            let deadline = Instant::now() + Duration::from_secs(5);
            let converged = loop {
                if self
                    .mirror
                    .as_ref()
                    .is_some_and(|m| m.store.snapshot() == db.snapshot())
                {
                    break true;
                }
                if Instant::now() >= deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            if converged {
                self.trace.push("quiesce: mirror converged".into());
            } else {
                self.violations
                    .push("mirror diverged from primary at quiescence".into());
            }
        }

        // 1 + 2: no acked commit lost, no phantom updates.
        let serving_store = db.store();
        let mut ledger_violations = self.ledger.check_store(&serving_store, "serving store");
        self.violations.append(&mut ledger_violations);

        // 4: single-writer still holds at the end.
        self.check_roles("at quiescence");

        self.trace.push(format!(
            "quiesce: acked {}/{}",
            self.ledger.acked_total(),
            self.ledger.attempts_total()
        ));
    }

    fn finish(mut self) -> ChaosVerdict {
        let final_mode = self
            .db
            .as_ref()
            .map_or(ReplicationMode::Volatile, Rodain::replication_mode);
        if let Some(m) = self.mirror.take() {
            m.shutdown.store(true, Ordering::Release);
            let _ = m.thread.join();
        }
        drop(self.db.take());
        let _ = std::fs::remove_dir_all(&self.scratch);
        ChaosVerdict {
            trace: self.trace,
            violations: self.violations,
            acked: self.ledger.acked_total(),
            attempts: self.ledger.attempts_total(),
            final_mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlannedFault;

    fn small_config() -> ChaosConfig {
        ChaosConfig {
            objects: 4,
            commits: 12,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn faultless_run_converges_and_acks_everything() {
        let plan = FaultPlan::script(Vec::new());
        let verdict = ChaosHarness::new(small_config()).run(&plan);
        assert!(verdict.passed(), "{}", verdict.render());
        assert_eq!(verdict.acked, 12);
        assert_eq!(verdict.attempts, 12);
        assert_eq!(verdict.final_mode, ReplicationMode::Mirrored);
        assert!(verdict.render().contains("mirror converged"));
    }

    #[test]
    fn mirror_crash_degrades_but_keeps_acking() {
        let plan = FaultPlan::script(vec![PlannedFault {
            at_commit: 5,
            event: FaultEvent::CrashMirror,
        }]);
        let verdict = ChaosHarness::new(small_config()).run(&plan);
        assert!(verdict.passed(), "{}", verdict.render());
        assert_eq!(verdict.acked, 12, "degraded path must keep committing");
        assert_eq!(verdict.final_mode, ReplicationMode::Contingency);
    }

    #[test]
    fn mirror_silence_mid_batch_resolves_every_coalesced_ticket() {
        // The commit pipeline coalesces commit groups into multi-group
        // `Records` frames and the mirror acks only the highest CSN per
        // frame. If the mirror goes silent mid-burst, tickets pending
        // inside a coalesced frame — and groups still parked in the
        // shipper's holdback — must all resolve through the
        // gate-timeout → mark-down path. None may hang past the
        // commit-gate bound.
        const GATE: Duration = Duration::from_millis(150);
        const CLIENTS: u64 = 4;
        const BURST: u64 = 8;

        let (primary_side, mirror_side) = InProcTransport::pair();
        let (lossy, control) = LossyLink::new(primary_side);
        let store = Arc::new(Store::new());
        let mut mirror = MirrorNode::new(
            store,
            Arc::new(mirror_side),
            None,
            Runner::mirror_node_config(),
        );
        let shutdown = mirror.shutdown_handle();
        let mirror_thread = std::thread::spawn(move || {
            mirror.join().expect("mirror handshake");
            mirror.run()
        });

        let db = Arc::new(
            Rodain::builder()
                .workers(CLIENTS as usize)
                .commit_gate_timeout(GATE)
                .build()
                .expect("primary engine"),
        );
        for i in 0..CLIENTS {
            db.load_initial(ObjectId(i), Value::Int(0));
        }
        db.attach_mirror(Arc::new(lossy), MirrorLossPolicy::ContinueVolatile)
            .expect("attach mirror");
        assert_eq!(db.replication_mode(), ReplicationMode::Mirrored);

        // Warm the pipeline over the healthy link: acked end to end.
        for i in 0..CLIENTS {
            db.execute(TxnOptions::soft_ms(5_000), move |ctx| {
                ctx.write(ObjectId(i), Value::Int(1))?;
                Ok(None)
            })
            .expect("warmup commit");
        }

        // The mirror falls silent: frames vanish without a send error, so
        // shipped frames never ack and later groups coalesce behind them.
        control.set_blackhole(true);

        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let mut slowest = Duration::ZERO;
                    for k in 0..BURST {
                        let oid = ObjectId(c);
                        let started = Instant::now();
                        // The outcome is policy (ContinueVolatile → Ok);
                        // the invariant under test is the timing bound.
                        let _ = db.execute(TxnOptions::soft_ms(30_000), move |ctx| {
                            let v = ctx.read(oid)?.map_or(0, |v| v.as_int().unwrap_or(0));
                            ctx.write(oid, Value::Int(v + k as i64 + 1))?;
                            Ok(None)
                        });
                        slowest = slowest.max(started.elapsed());
                    }
                    slowest
                })
            })
            .collect();
        let mut slowest = Duration::ZERO;
        for handle in clients {
            slowest = slowest.max(handle.join().expect("client thread"));
        }

        // Every ticket resolved. The engine re-arms the gate once after
        // marking the mirror down, so the hard ceiling is two gate
        // periods; the rest is scheduling margin for loaded CI machines.
        assert!(
            slowest < GATE * 2 + Duration::from_millis(500),
            "a coalesced-frame ticket hung for {slowest:?} (gate {GATE:?})"
        );
        // The silence was noticed and the engine degraded per its policy.
        assert_eq!(db.replication_mode(), ReplicationMode::Volatile);

        control.set_blackhole(false);
        shutdown.store(true, Ordering::Release);
        drop(db);
        let _ = mirror_thread.join();
    }

    #[test]
    fn volatile_fallback_reports_volatile_mode() {
        let plan = FaultPlan::script(vec![PlannedFault {
            at_commit: 4,
            event: FaultEvent::SeverLink,
        }]);
        let config = ChaosConfig {
            fallback: FallbackPolicy::Volatile,
            ..small_config()
        };
        let verdict = ChaosHarness::new(config).run(&plan);
        assert!(verdict.passed(), "{}", verdict.render());
        assert_eq!(verdict.final_mode, ReplicationMode::Volatile);
    }
}
