//! Scrape a live RODAIN pair's metrics over the wire.
//!
//! Starts a primary with an in-process hot stand-by mirror, fronts it with
//! the User Request Interpreter, drives a burst of number-translation
//! traffic, then scrapes the engine's observability snapshot through the
//! protocol's `Metrics` op — exactly what a Prometheus exporter or an
//! operator console would do.
//!
//! `cargo run --example metrics_scrape`
//!
//! The metric catalog (every name, unit, and source) is in `METRICS.md`.

use rodain::db::{MirrorLossPolicy, Rodain};
use rodain::net::InProcTransport;
use rodain::node::{MirrorConfig, MirrorNode};
use rodain::server::{Client, MetricsFormat, Outcome, Server};
use rodain::store::Store;
use rodain::workload::NumberTranslationDb;
use rodain::Value;
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn main() {
    // Hot stand-by: commit groups ship here; its ack gates every commit.
    let (primary_side, mirror_side) = InProcTransport::pair();
    let mut mirror = MirrorNode::new(
        Arc::new(Store::new()),
        Arc::new(mirror_side),
        None,
        MirrorConfig::default(),
    );
    let shutdown = mirror.shutdown_handle();
    let mirror_thread = std::thread::spawn(move || {
        mirror.join().expect("mirror join");
        mirror.run()
    });

    // Primary engine + TCP front-end.
    let db = Arc::new(
        Rodain::builder()
            .workers(4)
            .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
            .build()
            .expect("engine"),
    );
    let schema = NumberTranslationDb::new(10_000);
    schema.populate(&db.store());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = Server::new(db, schema).start(listener).expect("server");
    println!("serving on {}", server.addr());

    // A burst of service traffic: translations (reads) and re-provisions
    // (updates) with firm deadlines.
    let mut client = Client::connect(server.addr()).expect("connect");
    for number in 0..500u64 {
        client.translate(number, 50).expect("translate");
        if number % 5 == 0 {
            client
                .provision(number, format!("+358-40-{number:07}"), 150)
                .expect("provision");
        }
    }

    // Scrape. Text for humans…
    if let Outcome::Ok(Value::Text(text)) = client.metrics(MetricsFormat::Text).expect("metrics") {
        println!("\n=== text snapshot (operator view) ===");
        for line in text.lines().filter(|l| {
            l.starts_with("hist engine_")
                || l.starts_with("hist mirror_")
                || l.starts_with("counter txn_committed")
                || l.starts_with("gauge replication_mode")
        }) {
            println!("{line}");
        }
    }

    // …Prometheus exposition for scrapers.
    if let Outcome::Ok(Value::Text(prom)) =
        client.metrics(MetricsFormat::Prometheus).expect("metrics")
    {
        println!("\n=== prometheus exposition (first lines) ===");
        for line in prom.lines().take(12) {
            println!("{line}");
        }
    }

    server.shutdown();
    shutdown.store(true, Ordering::Release);
    let _ = mirror_thread.join();
}
