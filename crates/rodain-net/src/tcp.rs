//! TCP transport with length-prefixed framing.

use crate::{NetError, Transport};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, TryRecvError};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on a frame accepted from the wire.
const MAX_WIRE_FRAME: u32 = 64 * 1024 * 1024;

/// Capacity of the inbound frame queue before the reader applies
/// backpressure by stalling the socket.
const INBOUND_QUEUE: usize = 16 * 1024;

/// A [`Transport`] over a TCP connection.
///
/// Wire format: `u32` little-endian length followed by the frame bytes.
/// A background reader thread deframes the socket into a bounded queue;
/// sends go directly to the socket under a mutex (writes are small and the
/// log stream is produced by a single log-writer thread in practice).
pub struct TcpTransport {
    writer: Mutex<TcpStream>,
    inbound: Receiver<Bytes>,
    connected: Arc<AtomicBool>,
    peer: SocketAddr,
}

impl TcpTransport {
    /// Connect to a listening peer.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Accept one inbound connection on `listener`.
    pub fn accept(listener: &TcpListener) -> Result<Self, NetError> {
        let (stream, _) = listener.accept()?;
        Self::from_stream(stream)
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let reader_stream = stream.try_clone()?;
        let (tx, rx) = bounded(INBOUND_QUEUE);
        let connected = Arc::new(AtomicBool::new(true));
        let connected_reader = Arc::clone(&connected);
        std::thread::Builder::new()
            .name(format!("rodain-net-reader-{peer}"))
            .spawn(move || {
                let mut stream = reader_stream;
                let mut len_buf = [0u8; 4];
                loop {
                    if stream.read_exact(&mut len_buf).is_err() {
                        break;
                    }
                    let len = u32::from_le_bytes(len_buf);
                    if len > MAX_WIRE_FRAME {
                        break;
                    }
                    let mut frame = vec![0u8; len as usize];
                    if stream.read_exact(&mut frame).is_err() {
                        break;
                    }
                    if tx.send(Bytes::from(frame)).is_err() {
                        break;
                    }
                }
                connected_reader.store(false, Ordering::Release);
            })
            .expect("spawn tcp reader");
        Ok(TcpTransport {
            writer: Mutex::new(stream),
            inbound: rx,
            connected,
            peer,
        })
    }

    /// The peer's socket address.
    #[must_use]
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }
}

impl Transport for TcpTransport {
    fn send(&self, frame: Bytes) -> Result<(), NetError> {
        if !self.connected.load(Ordering::Acquire) {
            return Err(NetError::Disconnected);
        }
        let mut writer = self.writer.lock();
        let len = (frame.len() as u32).to_le_bytes();
        let result = writer
            .write_all(&len)
            .and_then(|()| writer.write_all(&frame));
        match result {
            Ok(()) => Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::BrokenPipe
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                self.connected.store(false, Ordering::Release);
                Err(NetError::Disconnected)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NetError> {
        if timeout.is_zero() {
            return self.try_recv();
        }
        match self.inbound.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => {
                if self.connected.load(Ordering::Acquire) {
                    Ok(None)
                } else {
                    Err(NetError::Disconnected)
                }
            }
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NetError> {
        match self.inbound.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => {
                if self.connected.load(Ordering::Acquire) {
                    Ok(None)
                } else {
                    Err(NetError::Disconnected)
                }
            }
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn is_connected(&self) -> bool {
        self.connected.load(Ordering::Acquire)
    }

    fn close(&self) {
        self.connected.store(false, Ordering::Release);
        let writer = self.writer.lock();
        let _ = writer.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let server = TcpTransport::accept(&listener).unwrap();
        (server, client.join().unwrap())
    }

    #[test]
    fn roundtrip_over_loopback() {
        let (server, client) = pair();
        client.send(Bytes::from_static(b"hello")).unwrap();
        let got = server
            .recv_timeout(Duration::from_secs(2))
            .unwrap()
            .unwrap();
        assert_eq!(got, Bytes::from_static(b"hello"));
        server.send(Bytes::from_static(b"world")).unwrap();
        let got = client
            .recv_timeout(Duration::from_secs(2))
            .unwrap()
            .unwrap();
        assert_eq!(got, Bytes::from_static(b"world"));
    }

    #[test]
    fn large_frames_survive() {
        let (server, client) = pair();
        let big = Bytes::from(vec![0xA5u8; 1_000_000]);
        client.send(big.clone()).unwrap();
        let got = server
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(got, big);
    }

    #[test]
    fn many_small_frames_in_order() {
        let (server, client) = pair();
        for i in 0..500u32 {
            client.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        for i in 0..500u32 {
            let got = server
                .recv_timeout(Duration::from_secs(2))
                .unwrap()
                .unwrap();
            assert_eq!(u32::from_le_bytes(got[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn close_surfaces_as_disconnect() {
        let (server, client) = pair();
        client.close();
        // The server eventually observes the disconnect.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match server.recv_timeout(Duration::from_millis(20)) {
                Err(NetError::Disconnected) => break,
                Ok(None) | Ok(Some(_)) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "disconnect not observed"
                    );
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert!(matches!(
            client.send(Bytes::new()),
            Err(NetError::Disconnected) | Err(NetError::Io(_))
        ));
    }

    #[test]
    fn peer_disconnect_mid_frame_surfaces_as_disconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Promise a 100-byte frame, deliver 10 bytes, then vanish.
            stream.write_all(&100u32.to_le_bytes()).unwrap();
            stream.write_all(&[0u8; 10]).unwrap();
            drop(stream);
        });
        let server = TcpTransport::accept(&listener).unwrap();
        raw.join().unwrap();
        // The truncated frame must never be delivered; the reader notices
        // the half-frame EOF and the link reports Disconnected.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match server.recv_timeout(Duration::from_millis(20)) {
                Err(NetError::Disconnected) => break,
                Ok(Some(frame)) => panic!("truncated frame delivered: {} bytes", frame.len()),
                Ok(None) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "mid-frame disconnect not observed"
                    );
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert!(!server.is_connected());
    }

    #[test]
    fn oversized_frame_header_kills_the_link() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            // A length prefix beyond MAX_WIRE_FRAME must be rejected rather
            // than trigger a giant allocation.
            stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
            // Keep the socket open; the reader must bail on its own.
            std::thread::sleep(Duration::from_millis(200));
            drop(stream);
        });
        let server = TcpTransport::accept(&listener).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match server.recv_timeout(Duration::from_millis(20)) {
                Err(NetError::Disconnected) => break,
                Ok(Some(_)) => panic!("oversized frame delivered"),
                Ok(None) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "oversized frame not rejected"
                    );
                }
                Err(e) => panic!("{e}"),
            }
        }
        raw.join().unwrap();
    }

    #[test]
    fn recv_timeout_expires_with_link_healthy() {
        let (server, client) = pair();
        let start = std::time::Instant::now();
        assert_eq!(server.recv_timeout(Duration::from_millis(30)).unwrap(), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
        // An expired timeout is not an error: the link stays usable.
        assert!(server.is_connected());
        assert!(client.is_connected());
        assert_eq!(server.try_recv().unwrap(), None);
        client.send(Bytes::from_static(b"late")).unwrap();
        let got = server
            .recv_timeout(Duration::from_secs(2))
            .unwrap()
            .unwrap();
        assert_eq!(got, Bytes::from_static(b"late"));
    }

    #[test]
    fn reconnect_after_close_uses_a_fresh_transport() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let connect1 = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let server1 = TcpTransport::accept(&listener).unwrap();
        let client1 = connect1.join().unwrap();
        client1.close();
        assert!(!client1.is_connected());
        assert!(matches!(
            client1.send(Bytes::from_static(b"dead")),
            Err(NetError::Disconnected)
        ));
        // Crash-stop: the old endpoints never come back; a recovered node
        // opens a brand-new connection against the same listener.
        let connect2 = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let server2 = TcpTransport::accept(&listener).unwrap();
        let client2 = connect2.join().unwrap();
        client2.send(Bytes::from_static(b"hello again")).unwrap();
        let got = server2
            .recv_timeout(Duration::from_secs(2))
            .unwrap()
            .unwrap();
        assert_eq!(got, Bytes::from_static(b"hello again"));
        // The first server endpoint eventually observes its disconnect.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match server1.recv_timeout(Duration::from_millis(20)) {
                Err(NetError::Disconnected) => break,
                Ok(Some(_)) => panic!("frame on a closed link"),
                Ok(None) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "old link still looks healthy"
                    );
                }
                Err(e) => panic!("{e}"),
            }
        }
    }
}
