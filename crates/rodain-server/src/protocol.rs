//! The client↔node wire protocol, version 2.
//!
//! Frames are `u32` little-endian length + body. Request body:
//!
//! ```text
//! version u8 (=2) · id u64 · deadline_ms u32 · tier u8 · op tag u8 · op fields
//! ```
//!
//! The tier byte carries the requested [`DurabilityTier`] in bits 0–1
//! ([`DurabilityTier::code`]) and the *deferred* flag in bit 7: a deferred
//! request is answered immediately with [`Outcome::CommitPending`] once the
//! transaction validates, followed by a second, id-matched frame
//! ([`Outcome::CommitDurable`] or a failure outcome) when the chosen tier's
//! gate resolves — so one connection can keep submitting while earlier
//! commits drain.
//!
//! Response body: `version u8 (=2) · id u64 · outcome tag u8 · fields`.
//!
//! The version byte is checked *first*: decoding a frame whose leading byte
//! is not [`PROTOCOL_VERSION`] fails with [`ProtocolError::Version`] before
//! any other field is touched, so mixed-version deployments fail loudly
//! instead of misparsing. The complete wire-tag catalog lives in
//! `DESIGN.md` §14.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rodain_db::DurabilityTier;
use rodain_log::{decode_value, encode_value};
use rodain_store::{ObjectId, Value};
use std::fmt;

/// Upper bound on a protocol frame.
pub const MAX_REQUEST_BYTES: usize = 4 * 1024 * 1024;

/// Wire protocol version; the first byte of every frame body.
pub const PROTOCOL_VERSION: u8 = 2;

/// Bit 7 of the request tier byte: answer `CommitPending` at validation,
/// then a second durable frame when the tier gate resolves.
const TIER_DEFERRED_BIT: u8 = 0x80;

/// Operations a client may request.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestOp {
    /// Number translation: look up the routing address of service number
    /// `number` (the paper's read-only service provision transaction).
    Translate {
        /// Service number.
        number: u64,
    },
    /// Re-point service number `number` at `address` (the update service
    /// provision transaction).
    Provision {
        /// Service number.
        number: u64,
        /// New routing address.
        address: String,
    },
    /// Generic transactional read of one object.
    Get {
        /// Object to read.
        oid: ObjectId,
    },
    /// Generic transactional write of one object.
    Put {
        /// Object to write.
        oid: ObjectId,
        /// New value.
        value: Value,
    },
    /// Engine statistics (served outside the transaction path).
    Stats,
    /// Full metrics snapshot (served outside the transaction path): all
    /// histograms, counters, gauges and the failover event trace, rendered
    /// per [`MetricsFormat`].
    Metrics {
        /// The exposition format to render.
        format: MetricsFormat,
    },
    /// Operator-forced checkpoint (served outside the transaction path):
    /// take a fuzzy snapshot now and truncate the log behind it, using
    /// the node's configured `CheckpointPolicy`. Answers `Ok` with the
    /// snapshot file path, or `Failed` when the node has no checkpoint
    /// directory configured (see OPERATIONS.md).
    Checkpoint,
    /// The node's current [`rodain_shard::ShardMap`] (served outside the
    /// transaction path): answers `Ok` with the map's `Value` encoding
    /// ([`rodain_shard::ShardMap::to_value`]) on a cluster node, `Failed`
    /// on a single-node or single-process-sharded deployment. Clients
    /// cache the map, route by it, and refetch on
    /// [`Outcome::WrongShard`] (see DESIGN.md §16).
    ClusterMap,
}

/// Rendering formats for [`RequestOp::Metrics`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Human-readable plain text, one line per metric.
    Text,
    /// RFC 8259 JSON.
    Json,
    /// Prometheus text exposition (0.0.4).
    Prometheus,
}

impl MetricsFormat {
    fn tag(self) -> u8 {
        match self {
            MetricsFormat::Text => 0,
            MetricsFormat::Json => 1,
            MetricsFormat::Prometheus => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<MetricsFormat> {
        match tag {
            0 => Some(MetricsFormat::Text),
            1 => Some(MetricsFormat::Json),
            2 => Some(MetricsFormat::Prometheus),
            _ => None,
        }
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id (echoed in every response frame).
    pub id: u64,
    /// Relative firm deadline in milliseconds; 0 = non-real-time.
    pub deadline_ms: u32,
    /// Durability tier the commit should wait for.
    pub tier: DurabilityTier,
    /// Answer `CommitPending` at validation and the durable outcome later,
    /// instead of holding the response until the tier gate resolves.
    pub deferred: bool,
    /// The operation.
    pub op: RequestOp,
}

impl Request {
    /// A blocking request at the default tier — the v1 behaviour.
    #[must_use]
    pub fn new(id: u64, deadline_ms: u32, op: RequestOp) -> Request {
        Request {
            id,
            deadline_ms,
            tier: DurabilityTier::default(),
            deferred: false,
            op,
        }
    }
}

/// Outcome of a request.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Committed; the payload depends on the operation (`Text` routing
    /// address for `Translate`, the read value or `Null` for `Get`, …).
    Ok(Value),
    /// The service number / object does not exist.
    NotFound,
    /// The transaction missed its firm deadline.
    MissDeadline,
    /// Rejected by the overload manager (admission denied or evicted).
    Overloaded,
    /// Any other failure, with a human-readable reason.
    Failed(String),
    /// First frame of a deferred request: the transaction validated and
    /// its commit is draining towards the requested tier. A second frame
    /// with the same id follows.
    CommitPending,
    /// Final frame of a deferred request: the commit reached `tier`.
    CommitDurable {
        /// The durability tier actually achieved
        /// ([`rodain_db::TxnReceipt::acked_tier`]).
        tier: DurabilityTier,
        /// Commit sequence number.
        csn: u64,
        /// The operation's payload (as in [`Outcome::Ok`]).
        value: Value,
    },
    /// This node does not own the shard the request's anchor object
    /// routes to (cluster deployments only). The client's shard map is
    /// stale — or it guessed — and must be refreshed via
    /// [`RequestOp::ClusterMap`] before retrying. Carries the epoch of
    /// the answering node's map so the client can tell a genuinely newer
    /// map from a redirect it has already acted on.
    WrongShard {
        /// The answering node's current shard-map epoch.
        epoch: u64,
    },
}

/// A response frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Correlation id of the request this answers.
    pub id: u64,
    /// The outcome.
    pub outcome: Outcome,
}

/// Protocol decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame's leading version byte is not [`PROTOCOL_VERSION`].
    Version {
        /// The version byte actually received.
        got: u8,
    },
    /// Structurally invalid frame.
    Malformed(&'static str),
    /// Unknown tag byte.
    UnknownTag(u8),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Version { got } => {
                write!(f, "protocol version {got} (expected {PROTOCOL_VERSION})")
            }
            ProtocolError::Malformed(w) => write!(f, "malformed frame: {w}"),
            ProtocolError::UnknownTag(t) => write!(f, "unknown tag {t}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Consume and check the leading version byte — the first decode step for
/// both frame kinds.
fn check_version(buf: &mut Bytes) -> Result<(), ProtocolError> {
    if buf.remaining() < 1 {
        return Err(ProtocolError::Malformed("empty frame"));
    }
    match buf.get_u8() {
        PROTOCOL_VERSION => Ok(()),
        got => Err(ProtocolError::Version { got }),
    }
}

fn get_string(buf: &mut Bytes, what: &'static str) -> Result<String, ProtocolError> {
    if buf.remaining() < 4 {
        return Err(ProtocolError::Malformed(what));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(ProtocolError::Malformed(what));
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec()).map_err(|_| ProtocolError::Malformed(what))
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

impl Request {
    /// Encode into a frame body (without the length prefix).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(PROTOCOL_VERSION);
        buf.put_u64_le(self.id);
        buf.put_u32_le(self.deadline_ms);
        let mut tier_byte = self.tier.code();
        if self.deferred {
            tier_byte |= TIER_DEFERRED_BIT;
        }
        buf.put_u8(tier_byte);
        match &self.op {
            RequestOp::Translate { number } => {
                buf.put_u8(1);
                buf.put_u64_le(*number);
            }
            RequestOp::Provision { number, address } => {
                buf.put_u8(2);
                buf.put_u64_le(*number);
                put_string(&mut buf, address);
            }
            RequestOp::Get { oid } => {
                buf.put_u8(3);
                buf.put_u64_le(oid.0);
            }
            RequestOp::Put { oid, value } => {
                buf.put_u8(4);
                buf.put_u64_le(oid.0);
                encode_value(&mut buf, value);
            }
            RequestOp::Stats => buf.put_u8(5),
            RequestOp::Metrics { format } => {
                buf.put_u8(6);
                buf.put_u8(format.tag());
            }
            RequestOp::Checkpoint => buf.put_u8(7),
            RequestOp::ClusterMap => buf.put_u8(8),
        }
        buf.freeze()
    }

    /// Decode a frame body.
    pub fn decode(mut buf: Bytes) -> Result<Request, ProtocolError> {
        check_version(&mut buf)?;
        if buf.remaining() < 14 {
            return Err(ProtocolError::Malformed("request header"));
        }
        let id = buf.get_u64_le();
        let deadline_ms = buf.get_u32_le();
        let tier_byte = buf.get_u8();
        let tier = DurabilityTier::from_code(tier_byte & !TIER_DEFERRED_BIT)
            .ok_or(ProtocolError::Malformed("durability tier"))?;
        let deferred = tier_byte & TIER_DEFERRED_BIT != 0;
        let op = match buf.get_u8() {
            1 => {
                if buf.remaining() < 8 {
                    return Err(ProtocolError::Malformed("translate body"));
                }
                RequestOp::Translate {
                    number: buf.get_u64_le(),
                }
            }
            2 => {
                if buf.remaining() < 8 {
                    return Err(ProtocolError::Malformed("provision body"));
                }
                let number = buf.get_u64_le();
                let address = get_string(&mut buf, "provision address")?;
                RequestOp::Provision { number, address }
            }
            3 => {
                if buf.remaining() < 8 {
                    return Err(ProtocolError::Malformed("get body"));
                }
                RequestOp::Get {
                    oid: ObjectId(buf.get_u64_le()),
                }
            }
            4 => {
                if buf.remaining() < 8 {
                    return Err(ProtocolError::Malformed("put body"));
                }
                let oid = ObjectId(buf.get_u64_le());
                let value =
                    decode_value(&mut buf).map_err(|_| ProtocolError::Malformed("put value"))?;
                RequestOp::Put { oid, value }
            }
            5 => RequestOp::Stats,
            6 => {
                if buf.remaining() < 1 {
                    return Err(ProtocolError::Malformed("metrics body"));
                }
                let tag = buf.get_u8();
                let format = MetricsFormat::from_tag(tag)
                    .ok_or(ProtocolError::Malformed("metrics format"))?;
                RequestOp::Metrics { format }
            }
            7 => RequestOp::Checkpoint,
            8 => RequestOp::ClusterMap,
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        if buf.has_remaining() {
            return Err(ProtocolError::Malformed("trailing request bytes"));
        }
        Ok(Request {
            id,
            deadline_ms,
            tier,
            deferred,
            op,
        })
    }
}

impl Response {
    /// Encode into a frame body.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(24);
        buf.put_u8(PROTOCOL_VERSION);
        buf.put_u64_le(self.id);
        match &self.outcome {
            Outcome::Ok(value) => {
                buf.put_u8(1);
                encode_value(&mut buf, value);
            }
            Outcome::NotFound => buf.put_u8(2),
            Outcome::MissDeadline => buf.put_u8(3),
            Outcome::Overloaded => buf.put_u8(4),
            Outcome::Failed(reason) => {
                buf.put_u8(5);
                put_string(&mut buf, reason);
            }
            Outcome::CommitPending => buf.put_u8(6),
            Outcome::CommitDurable { tier, csn, value } => {
                buf.put_u8(7);
                buf.put_u8(tier.code());
                buf.put_u64_le(*csn);
                encode_value(&mut buf, value);
            }
            Outcome::WrongShard { epoch } => {
                buf.put_u8(8);
                buf.put_u64_le(*epoch);
            }
        }
        buf.freeze()
    }

    /// Decode a frame body.
    pub fn decode(mut buf: Bytes) -> Result<Response, ProtocolError> {
        check_version(&mut buf)?;
        if buf.remaining() < 9 {
            return Err(ProtocolError::Malformed("response header"));
        }
        let id = buf.get_u64_le();
        let outcome = match buf.get_u8() {
            1 => Outcome::Ok(
                decode_value(&mut buf).map_err(|_| ProtocolError::Malformed("ok value"))?,
            ),
            2 => Outcome::NotFound,
            3 => Outcome::MissDeadline,
            4 => Outcome::Overloaded,
            5 => Outcome::Failed(get_string(&mut buf, "failure reason")?),
            6 => Outcome::CommitPending,
            7 => {
                if buf.remaining() < 9 {
                    return Err(ProtocolError::Malformed("commit durable body"));
                }
                let tier = DurabilityTier::from_code(buf.get_u8())
                    .ok_or(ProtocolError::Malformed("durable tier"))?;
                let csn = buf.get_u64_le();
                let value = decode_value(&mut buf)
                    .map_err(|_| ProtocolError::Malformed("durable value"))?;
                Outcome::CommitDurable { tier, csn, value }
            }
            8 => {
                if buf.remaining() < 8 {
                    return Err(ProtocolError::Malformed("wrong shard body"));
                }
                Outcome::WrongShard {
                    epoch: buf.get_u64_le(),
                }
            }
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        if buf.has_remaining() {
            return Err(ProtocolError::Malformed("trailing response bytes"));
        }
        Ok(Response { id, outcome })
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(out: &mut impl std::io::Write, body: &[u8]) -> std::io::Result<()> {
    out.write_all(&(body.len() as u32).to_le_bytes())?;
    out.write_all(body)
}

/// Read one length-prefixed frame.
pub fn read_frame(input: &mut impl std::io::Read) -> std::io::Result<Bytes> {
    let mut len = [0u8; 4];
    input.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_REQUEST_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut body = vec![0u8; len];
    input.read_exact(&mut body)?;
    Ok(Bytes::from(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::new(1, 50, RequestOp::Translate { number: 42 }),
            Request {
                id: 2,
                deadline_ms: 150,
                tier: DurabilityTier::DiskFsynced,
                deferred: true,
                op: RequestOp::Provision {
                    number: 42,
                    address: "+358-40-555".into(),
                },
            },
            Request {
                id: 3,
                deadline_ms: 0,
                tier: DurabilityTier::Volatile,
                deferred: false,
                op: RequestOp::Get { oid: ObjectId(9) },
            },
            Request {
                id: 4,
                deadline_ms: 75,
                tier: DurabilityTier::MirrorAcked,
                deferred: true,
                op: RequestOp::Put {
                    oid: ObjectId(9),
                    value: Value::Record(vec![Value::Int(1), Value::Text("x".into())]),
                },
            },
            Request::new(5, 0, RequestOp::Stats),
            Request::new(
                6,
                0,
                RequestOp::Metrics {
                    format: MetricsFormat::Prometheus,
                },
            ),
            Request::new(7, 0, RequestOp::Checkpoint),
            Request::new(8, 0, RequestOp::ClusterMap),
        ]
    }

    #[test]
    fn bad_metrics_format_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(PROTOCOL_VERSION);
        buf.put_u64_le(1);
        buf.put_u32_le(0);
        buf.put_u8(0);
        buf.put_u8(6);
        buf.put_u8(9);
        assert!(matches!(
            Request::decode(buf.freeze()),
            Err(ProtocolError::Malformed("metrics format"))
        ));
    }

    #[test]
    fn request_roundtrip() {
        for r in sample_requests() {
            assert_eq!(Request::decode(r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_roundtrip() {
        let responses = vec![
            Response {
                id: 1,
                outcome: Outcome::Ok(Value::Text("+358-9-123".into())),
            },
            Response {
                id: 2,
                outcome: Outcome::NotFound,
            },
            Response {
                id: 3,
                outcome: Outcome::MissDeadline,
            },
            Response {
                id: 4,
                outcome: Outcome::Overloaded,
            },
            Response {
                id: 5,
                outcome: Outcome::Failed("boom".into()),
            },
            Response {
                id: 6,
                outcome: Outcome::CommitPending,
            },
            Response {
                id: 7,
                outcome: Outcome::CommitDurable {
                    tier: DurabilityTier::MirrorAcked,
                    csn: 4_242,
                    value: Value::Null,
                },
            },
            Response {
                id: 8,
                outcome: Outcome::WrongShard { epoch: 3 },
            },
        ];
        for r in responses {
            assert_eq!(Response::decode(r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn wrong_version_rejected_before_anything_else() {
        // A well-formed v1-style frame (no version byte): the leading id
        // byte is read as the version and refused.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u32_le(50);
        buf.put_u8(1);
        buf.put_u64_le(42);
        assert_eq!(
            Request::decode(buf.freeze()),
            Err(ProtocolError::Version { got: 1 })
        );
        // Same for responses.
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        buf.put_u64_le(1);
        buf.put_u8(2);
        assert_eq!(
            Response::decode(buf.freeze()),
            Err(ProtocolError::Version { got: 9 })
        );
        // The version check happens before any length checks: a 1-byte
        // frame with a bad version reports Version, not Malformed.
        assert_eq!(
            Request::decode(Bytes::from_static(&[7u8])),
            Err(ProtocolError::Version { got: 7 })
        );
    }

    #[test]
    fn bad_tier_byte_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(PROTOCOL_VERSION);
        buf.put_u64_le(1);
        buf.put_u32_le(0);
        buf.put_u8(3); // deferred bit clear, tier code 3: undefined
        buf.put_u8(5);
        assert!(matches!(
            Request::decode(buf.freeze()),
            Err(ProtocolError::Malformed("durability tier"))
        ));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(Request::decode(Bytes::new()).is_err());
        let mut short = BytesMut::new();
        short.put_u8(PROTOCOL_VERSION);
        short.put_slice(&[0u8; 8]);
        assert!(Response::decode(short.freeze()).is_err());
        let mut truncated = BytesMut::new();
        truncated.put_u8(PROTOCOL_VERSION);
        truncated.put_slice(&[0u8; 12]);
        assert!(matches!(
            Request::decode(truncated.freeze()),
            Err(ProtocolError::Malformed(_))
        ));
        // Unknown op tag.
        let mut buf = BytesMut::new();
        buf.put_u8(PROTOCOL_VERSION);
        buf.put_u64_le(1);
        buf.put_u32_le(10);
        buf.put_u8(0);
        buf.put_u8(99);
        assert_eq!(
            Request::decode(buf.freeze()),
            Err(ProtocolError::UnknownTag(99))
        );
    }

    #[test]
    fn frame_roundtrip() {
        let body = b"hello frames".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let mut reader = wire.as_slice();
        let got = read_frame(&mut reader).unwrap();
        assert_eq!(&got[..], &body[..]);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut reader = wire.as_slice();
        assert!(read_frame(&mut reader).is_err());
    }
}
