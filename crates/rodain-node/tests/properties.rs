//! Property-based tests of the node wire protocol.

use proptest::prelude::*;
use rodain_node::Message;

proptest! {
    /// Message::decode never panics on arbitrary frames.
    #[test]
    fn decode_never_panics(frame in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(bytes::Bytes::from(frame));
    }

    /// Whatever decodes must re-encode and decode to the same message
    /// (decode is a partial inverse of encode even on hostile input).
    #[test]
    fn decode_encode_decode_is_stable(frame in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(message) = Message::decode(bytes::Bytes::from(frame)) {
            let reencoded = message.encode();
            prop_assert_eq!(Message::decode(reencoded).unwrap(), message);
        }
    }
}
