//! The engine: builder, submission, worker pool, commit pipeline.

use crate::ctx::{CtxStop, TxnCtx, TxnFlags};
use crate::error::{TxnAbort, TxnError};
use crate::options::{CheckpointPolicy, DurabilityTier, MirrorLossPolicy, TxnOptions};
use crate::replicate::{CommitTicket, MirrorLink, ReplicationMode, Replicator, ShipBatchConfig};
use crate::stats::{Counters, EngineStats, TxnReceipt};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::{Condvar, Mutex, RwLock};
use rodain_log::RecordBuilder;
use rodain_net::Transport;
use rodain_node::Message;
use rodain_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Recorder};
use rodain_occ::{make_controller, CcPriority, ConcurrencyController, Csn, Protocol};
use rodain_sched::{
    ActiveSet, Admission, OverloadConfig, OverloadManager, ReadyQueue, ReservationConfig, TaskMeta,
    TxnClass,
};
use rodain_store::{ObjectId, Snapshot, Store, Ts, TxnId, Value, Workspace};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest a committed transaction waits for its durability gate before
/// reporting a replication failure.
const COMMIT_GATE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long the join handshake waits for a mirror's `JoinRequest`.
const JOIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Objects per snapshot-transfer chunk.
const SNAPSHOT_CHUNK: usize = 2_048;

/// How often the background checkpointer re-evaluates its triggers (also
/// bounds how quickly it notices shutdown).
const CHECKPOINT_POLL: Duration = Duration::from_millis(25);

type BoxClosure = Box<dyn FnMut(&mut TxnCtx) -> Result<Option<Value>, TxnAbort> + Send>;

/// Callback fired *after* a submission's outcome has been delivered to its
/// [`CommitFuture`] (see [`Rodain::submit_hooked`]). Runs on whichever
/// engine thread resolves the transaction — a worker for aborts and
/// Volatile commits, the completer for deferred tiers — so it must be
/// cheap and non-blocking (push a token, wake a poller).
pub type CompletionHook = Arc<dyn Fn() + Send + Sync>;

/// A commit future's resolution side: the reply channel plus the optional
/// completion hook. Every resolution path goes through [`ReplySlot::send`]
/// so the hook can never be missed; `try_send` (the channel holds exactly
/// one outcome) makes an accidental double-resolve inert instead of a
/// deadlock.
#[derive(Clone)]
struct ReplySlot {
    tx: Sender<Result<TxnReceipt, TxnError>>,
    hook: Option<CompletionHook>,
}

impl ReplySlot {
    fn send(&self, outcome: Result<TxnReceipt, TxnError>) {
        let _ = self.tx.try_send(outcome);
        if let Some(hook) = &self.hook {
            hook();
        }
    }
}

struct Job {
    closure: BoxClosure,
    reply: ReplySlot,
    meta: TaskMeta,
    flags: Arc<TxnFlags>,
    /// Durability gate the commit future waits for (from
    /// [`TxnOptions::durability`]).
    tier: DurabilityTier,
}

/// The pending outcome of a submitted transaction (see [`Rodain::submit`]).
///
/// Resolves when the transaction aborts or when its commit reaches the
/// [`DurabilityTier`] it asked for — the worker that validated it has long
/// moved on, so a connection can keep submitting while earlier commits
/// drain through the mirror shipper's coalesced frames. Consume with
/// [`CommitFuture::wait`] (blocking), [`CommitFuture::wait_timeout`] /
/// [`CommitFuture::try_wait`] (polling), or select over
/// [`CommitFuture::receiver`] to multiplex many futures on one thread (the
/// server's connection writer does).
pub struct CommitFuture {
    rx: Receiver<Result<TxnReceipt, TxnError>>,
}

impl CommitFuture {
    fn new(rx: Receiver<Result<TxnReceipt, TxnError>>) -> CommitFuture {
        CommitFuture { rx }
    }

    /// An already-resolved future — for error paths that never reach the
    /// engine (a sharded facade routing to a missing shard, say).
    #[must_use]
    pub fn ready(result: Result<TxnReceipt, TxnError>) -> CommitFuture {
        let (tx, rx) = bounded(1);
        let _ = tx.send(result);
        CommitFuture { rx }
    }

    /// Block until the outcome is known.
    pub fn wait(self) -> Result<TxnReceipt, TxnError> {
        self.rx.recv().unwrap_or(Err(TxnError::Shutdown))
    }

    /// Block up to `timeout`; `None` means still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<TxnReceipt, TxnError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => Some(outcome),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(TxnError::Shutdown)),
        }
    }

    /// Non-blocking poll; `None` means still pending.
    pub fn try_wait(&self) -> Option<Result<TxnReceipt, TxnError>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(TxnError::Shutdown)),
        }
    }

    /// The underlying channel, for `crossbeam::channel::Select` over many
    /// futures. The channel yields exactly one message; after it fires,
    /// collect the outcome with [`CommitFuture::try_wait`] or
    /// [`CommitFuture::wait`].
    #[must_use]
    pub fn receiver(&self) -> &Receiver<Result<TxnReceipt, TxnError>> {
        &self.rx
    }
}

/// A validated commit handed to the completer thread: the worker is
/// already free; the completer awaits the durability ticket and sends the
/// final receipt (or, for an early-resolved Volatile commit, merely drains
/// the ticket as a gate-health backstop).
struct PendingDurability {
    ticket: CommitTicket,
    /// `None` for a Volatile-tier commit that already replied at the
    /// worker — the completer then only babysits the ticket.
    reply: Option<ReplySlot>,
    value: Option<Value>,
    csn: Csn,
    ser_ts: Ts,
    restarts: u32,
    arrival: u64,
    commit_submitted: u64,
    requested: DurabilityTier,
}

enum Completion {
    Commit(Box<PendingDurability>),
    Shutdown,
}

struct SchedCore {
    ready: ReadyQueue,
    active: ActiveSet,
    overload: OverloadManager,
    jobs: HashMap<TxnId, Job>,
    flags: HashMap<TxnId, Arc<TxnFlags>>,
    next_id: u64,
}

struct Engine {
    store: Arc<Store>,
    cc: Arc<dyn ConcurrencyController>,
    sched: Mutex<SchedCore>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    epoch: Instant,
    counters: Counters,
    recorder: Recorder,
    obs: EngineObs,
    replicator: RwLock<Replicator>,
    commit_gate: RwLock<()>,
    commit_gate_timeout: Duration,
    ship_batch: ShipBatchConfig,
    last_csn: AtomicU64,
    builder: RecordBuilder,
    protocol: Protocol,
    /// Validated commits queued for the completer thread.
    completions: Sender<Completion>,
    /// Configured checkpointing (`None`: only ad-hoc [`Rodain::checkpoint`]
    /// calls work; the background thread and the wire op need this).
    checkpoint: Option<CheckpointConfig>,
    /// One checkpoint at a time: the background checkpointer and an
    /// operator-forced checkpoint must not interleave their truncations.
    checkpoint_lock: Mutex<()>,
    cp_obs: CheckpointObs,
}

impl Engine {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// Commit-path telemetry handles bound once at build time (see
/// `METRICS.md` for the catalog entries these feed).
struct EngineObs {
    /// Validation accept → durable/acknowledged, per committed txn.
    commit_wait_ns: Histogram,
    /// Same measurement split by the *requested* durability tier, indexed
    /// by [`DurabilityTier::code`].
    tier_wait_ns: [Histogram; 3],
    /// Commit futures ticketed but not yet resolved.
    inflight_futures: Gauge,
    /// Submission → reply, per committed txn.
    response_ns: Histogram,
    /// Commit tickets that timed out and triggered a mirror failover.
    gate_timeouts: Counter,
    /// OCC validation outcomes, labelled by protocol.
    validation_commit: Counter,
    validation_restart: Counter,
}

impl EngineObs {
    fn new(rec: &Recorder, protocol: Protocol) -> EngineObs {
        // Info-style gauge: constant 1, the label carries the protocol.
        rec.gauge(&format!("engine_info{{protocol=\"{}\"}}", protocol.name()))
            .set(1);
        EngineObs {
            commit_wait_ns: rec.histogram("engine_commit_wait_ns"),
            tier_wait_ns: DurabilityTier::ALL.map(|tier| {
                rec.histogram(&format!(
                    "engine_commit_wait_ns{{tier=\"{}\"}}",
                    tier.label()
                ))
            }),
            inflight_futures: rec.gauge("engine_inflight_futures"),
            response_ns: rec.histogram("engine_response_ns"),
            gate_timeouts: rec.counter("engine_gate_timeouts_total"),
            validation_commit: rec.counter(&format!(
                "occ_validation_commit_total{{protocol=\"{}\"}}",
                protocol.name()
            )),
            validation_restart: rec.counter(&format!(
                "occ_validation_restart_total{{protocol=\"{}\"}}",
                protocol.name()
            )),
        }
    }
}

/// Where configured checkpoints go and when they fire.
struct CheckpointConfig {
    dir: std::path::PathBuf,
    policy: CheckpointPolicy,
}

/// Checkpoint telemetry handles (see `METRICS.md`).
struct CheckpointObs {
    /// Wall time of one full checkpoint (boundary → truncation done).
    duration_ns: Histogram,
    /// Size of each installed snapshot file.
    snapshot_bytes: Histogram,
    completed: Counter,
    failed: Counter,
    /// Log segments deleted by checkpoint truncation.
    truncated: Counter,
    /// Bytes the local disk log currently occupies.
    log_bytes: Gauge,
    /// Boundary CSN of the most recent successful checkpoint.
    last_csn: Gauge,
}

impl CheckpointObs {
    fn new(rec: &Recorder) -> CheckpointObs {
        CheckpointObs {
            duration_ns: rec.histogram("checkpoint_duration_ns"),
            snapshot_bytes: rec.histogram("checkpoint_snapshot_bytes"),
            completed: rec.counter("checkpoints_total"),
            failed: rec.counter("checkpoint_failures_total"),
            truncated: rec.counter("checkpoint_truncated_segments_total"),
            log_bytes: rec.gauge("log_on_disk_bytes"),
            last_csn: rec.gauge("checkpoint_csn"),
        }
    }
}

/// Builder for a [`Rodain`] engine.
pub struct RodainBuilder {
    protocol: Protocol,
    workers: usize,
    overload: OverloadConfig,
    reservation: ReservationConfig,
    store: Option<Arc<Store>>,
    durability: Durability,
    commit_gate_timeout: Duration,
    group_commit_batch: usize,
    ship_batch: ShipBatchConfig,
    recorder: Option<Recorder>,
    checkpoint: Option<(std::path::PathBuf, CheckpointPolicy)>,
}

enum Durability {
    Volatile,
    Contingency(std::path::PathBuf),
    ContingencyBackend(Box<dyn rodain_log::StorageBackend>),
    Mirror {
        transport: Arc<dyn Transport>,
        policy: MirrorLossPolicy,
    },
}

impl RodainBuilder {
    fn new() -> Self {
        RodainBuilder {
            protocol: Protocol::OccDati,
            workers: 4,
            overload: OverloadConfig::default(),
            reservation: ReservationConfig::default(),
            store: None,
            durability: Durability::Volatile,
            commit_gate_timeout: COMMIT_GATE_TIMEOUT,
            group_commit_batch: crate::replicate::GROUP_COMMIT_BATCH,
            ship_batch: ShipBatchConfig::default(),
            recorder: None,
            checkpoint: None,
        }
    }

    /// Register the engine's metrics on an externally owned [`Recorder`]
    /// instead of a private one — e.g. to share one registry between the
    /// engine and a co-located mirror node. The default is a fresh
    /// recorder, reachable later through [`Rodain::recorder`].
    #[must_use]
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Concurrency-control protocol (default: the paper's OCC-DATI).
    #[must_use]
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Number of executor threads (default 4).
    ///
    /// The engine cannot run without an executor, so `workers(0)` is
    /// clamped to 1 rather than rejected — a zero-thread engine would
    /// accept submissions and never reply to any of them.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overload-manager settings (active-transaction limit etc.).
    #[must_use]
    pub fn overload(mut self, cfg: OverloadConfig) -> Self {
        self.overload = cfg;
        self
    }

    /// Non-real-time reservation settings.
    #[must_use]
    pub fn reservation(mut self, cfg: ReservationConfig) -> Self {
        self.reservation = cfg;
        self
    }

    /// Start from an existing store (e.g. a promoted mirror's copy or a
    /// disk-recovered state) instead of an empty database.
    #[must_use]
    pub fn store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Single-node Contingency mode: synchronous group-commit logging in
    /// `dir` gates every commit.
    #[must_use]
    pub fn contingency_log(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.durability = Durability::Contingency(dir.into());
        self
    }

    /// Single-node Contingency mode over a pre-built storage backend —
    /// e.g. a fault-injecting [`rodain_log::FaultyStorage`] in chaos tests.
    #[must_use]
    pub fn contingency_storage(
        mut self,
        storage: impl rodain_log::StorageBackend + 'static,
    ) -> Self {
        self.durability = Durability::ContingencyBackend(Box::new(storage));
        self
    }

    /// Longest a committed transaction waits for its durability gate
    /// (mirror acknowledgement or local flush) before the engine declares
    /// the mirror dead and retries through the degraded path (default
    /// 10 s). Chaos tests shorten this to keep fault turnaround tight.
    #[must_use]
    pub fn commit_gate_timeout(mut self, timeout: Duration) -> Self {
        self.commit_gate_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Most commit requests coalesced into one log flush in Contingency
    /// mode (default 64). `group_commit_batch(1)` reproduces the paper
    /// prototype's one-transaction-per-disk-rotation commit path —
    /// benchmarks use it to make a single log stream the measured
    /// bottleneck. Clamped to at least 1.
    #[must_use]
    pub fn group_commit_batch(mut self, max_batch: usize) -> Self {
        self.group_commit_batch = max_batch.max(1);
        self
    }

    /// Mirror-shipping batch knobs (see [`ShipBatchConfig`]): how many
    /// records/bytes one `Records` frame may carry and how long the
    /// shipper holds an open batch for more commits.
    /// [`ShipBatchConfig::unbatched`] restores one-frame-per-commit
    /// shipping (the COMMITPIPE baseline).
    #[must_use]
    pub fn ship_batch(mut self, cfg: ShipBatchConfig) -> Self {
        self.ship_batch = cfg;
        self
    }

    /// Primary mode: ship logs to a mirror over `transport` (the mirror
    /// must be running [`rodain_node::MirrorNode::join`]), degrading per
    /// `policy` if it dies.
    #[must_use]
    pub fn mirror(mut self, transport: Arc<dyn Transport>, policy: MirrorLossPolicy) -> Self {
        self.durability = Durability::Mirror { transport, policy };
        self
    }

    /// Enable the background checkpointer: fuzzy snapshots into
    /// `snapshot_dir` per `policy`, each followed by automatic truncation
    /// of log segments wholly behind the checkpoint boundary (fenced on
    /// the mirror ack watermark in mirrored mode). Checkpoints never
    /// pause writers beyond fixing the boundary CSN. Operators can also
    /// force one at any time with [`Rodain::force_checkpoint`] or the
    /// server's `Checkpoint` wire op. Design: DESIGN.md §15; tuning
    /// guidance: OPERATIONS.md.
    #[must_use]
    pub fn checkpoints(
        mut self,
        snapshot_dir: impl Into<std::path::PathBuf>,
        policy: CheckpointPolicy,
    ) -> Self {
        self.checkpoint = Some((snapshot_dir.into(), policy));
        self
    }

    /// Build and start the engine.
    pub fn build(self) -> io::Result<Rodain> {
        let store = self.store.unwrap_or_default();
        let recorder = self.recorder.unwrap_or_default();
        let (completions, completions_rx) = unbounded();
        let engine = Arc::new(Engine {
            cc: make_controller(self.protocol),
            sched: Mutex::new(SchedCore {
                ready: ReadyQueue::observed(self.reservation, &recorder),
                active: ActiveSet::new(),
                overload: OverloadManager::new(self.overload),
                jobs: HashMap::new(),
                flags: HashMap::new(),
                next_id: 1,
            }),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
            counters: Counters::new(&recorder),
            obs: EngineObs::new(&recorder, self.protocol),
            cp_obs: CheckpointObs::new(&recorder),
            recorder,
            replicator: RwLock::new(Replicator::Volatile),
            commit_gate: RwLock::new(()),
            commit_gate_timeout: self.commit_gate_timeout,
            ship_batch: self.ship_batch,
            last_csn: AtomicU64::new(0),
            builder: RecordBuilder::new(),
            protocol: self.protocol,
            completions,
            checkpoint: self
                .checkpoint
                .map(|(dir, policy)| CheckpointConfig { dir, policy }),
            checkpoint_lock: Mutex::new(()),
            store,
        });

        match self.durability {
            Durability::Volatile => {}
            Durability::Contingency(dir) => {
                if dir.as_os_str().is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "contingency log directory must not be empty",
                    ));
                }
                *engine.replicator.write() =
                    Replicator::contingency(&dir, &engine.recorder, self.group_commit_batch)?;
            }
            Durability::ContingencyBackend(backend) => {
                *engine.replicator.write() = Replicator::contingency_backend(
                    backend,
                    &engine.recorder,
                    self.group_commit_batch,
                );
            }
            Durability::Mirror { transport, policy } => {
                attach_mirror_inner(&engine, transport, policy)?;
            }
        }
        let mode = engine.replicator.read().mode();
        engine
            .recorder
            .gauge("replication_mode")
            .set(mode.as_gauge());
        engine
            .recorder
            .emit("mode-change", format!("engine started in {mode:?}"));

        let workers = (0..self.workers)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::Builder::new()
                    .name(format!("rodain-worker-{i}"))
                    .spawn(move || worker_loop(engine))
                    .expect("spawn worker")
            })
            .collect();

        let completer = {
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("rodain-completer".into())
                .spawn(move || completer_loop(&engine, &completions_rx))
                .expect("spawn completer")
        };

        let checkpointer = engine.checkpoint.is_some().then(|| {
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("rodain-checkpointer".into())
                .spawn(move || checkpointer_loop(&engine))
                .expect("spawn checkpointer")
        });

        Ok(Rodain {
            engine,
            workers,
            completer: Some(completer),
            checkpointer,
        })
    }
}

/// An exclusive hold on the commit gate (see [`Rodain::hold_commits`]).
/// Commits resume when it drops.
pub struct CommitHold<'a> {
    _gate: parking_lot::RwLockWriteGuard<'a, ()>,
}

impl std::fmt::Debug for CommitHold<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CommitHold")
    }
}

/// The RODAIN real-time main-memory database engine. See the crate docs.
pub struct Rodain {
    engine: Arc<Engine>,
    workers: Vec<std::thread::JoinHandle<()>>,
    completer: Option<std::thread::JoinHandle<()>>,
    checkpointer: Option<std::thread::JoinHandle<()>>,
}

impl Rodain {
    /// Start building an engine.
    #[must_use]
    pub fn builder() -> RodainBuilder {
        RodainBuilder::new()
    }

    /// Load an object during initial database population (bypasses
    /// concurrency control and logging; timestamp zero).
    pub fn load_initial(&self, oid: ObjectId, value: Value) {
        self.engine.store.load_initial(oid, value);
    }

    /// Read an object's committed value outside any transaction (dirty
    /// read of the latest committed state — handy for tests and metrics).
    #[must_use]
    pub fn get(&self, oid: ObjectId) -> Option<Value> {
        self.engine.store.read(oid).map(|(v, _)| v)
    }

    /// The underlying store (shared with the replication machinery).
    #[must_use]
    pub fn store(&self) -> Arc<Store> {
        Arc::clone(&self.engine.store)
    }

    /// A consistent snapshot of the database (pauses commits briefly).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let _gate = self.engine.commit_gate.write();
        self.engine.store.snapshot()
    }

    /// A consistent snapshot plus the highest CSN it contains — the
    /// shippable form a cluster migration or remote standby seeds from:
    /// every commit `<= Csn` is in the snapshot, every later one must
    /// come from the log tail.
    #[must_use]
    pub fn snapshot_upto(&self) -> (Snapshot, Csn) {
        let _gate = self.engine.commit_gate.write();
        let upto = Csn(self.engine.last_csn.load(Ordering::Acquire));
        (self.engine.store.snapshot(), upto)
    }

    /// The highest commit sequence number this engine has assigned.
    #[must_use]
    pub fn last_csn(&self) -> u64 {
        self.engine.last_csn.load(Ordering::Acquire)
    }

    /// Pause the commit point: while the returned [`CommitHold`] lives, no
    /// transaction can pass the commit gate, so `last_csn` and the on-disk
    /// log tail are frozen. This is the hook remote coordination layers
    /// (networked prepare/decide, shard-migration cutover) use to fence a
    /// final state transfer: everything acknowledged before the hold is in
    /// the log, and nothing new commits until the hold drops. Reads and
    /// transaction execution continue; only the commit step blocks.
    #[must_use]
    pub fn hold_commits(&self) -> CommitHold<'_> {
        CommitHold {
            _gate: self.engine.commit_gate.write(),
        }
    }

    /// Current replication/durability mode.
    #[must_use]
    pub fn replication_mode(&self) -> ReplicationMode {
        self.engine.replicator.read().mode()
    }

    /// The concurrency-control protocol in force.
    #[must_use]
    pub fn protocol(&self) -> Protocol {
        self.engine.protocol
    }

    /// Commit acknowledgements received from the mirror (`None` when not
    /// in mirrored mode).
    #[must_use]
    pub fn mirror_acks(&self) -> Option<u64> {
        match &*self.engine.replicator.read() {
            Replicator::Mirrored(link) => Some(link.acks()),
            _ => None,
        }
    }

    /// Engine statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let active = self.engine.sched.lock().active.len();
        EngineStats::from_counters(&self.engine.counters, self.engine.cc.stats(), active)
    }

    /// A point-in-time snapshot of every metric the engine and its
    /// attached subsystems publish (see `METRICS.md`). Render it with
    /// [`MetricsSnapshot::render_text`], [`MetricsSnapshot::render_json`]
    /// or [`MetricsSnapshot::render_prometheus`].
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        // Keep the controller's point-lookup counters in the same snapshot
        // as the handle-based metrics.
        let rec = &self.engine.recorder;
        for (name, value) in self.engine.cc.stats().named() {
            let counter = rec.counter(&format!(
                "occ_{name}_total{{protocol=\"{}\"}}",
                self.engine.protocol.name()
            ));
            // CcStats is cumulative; counters only move forward.
            let current = counter.get();
            counter.add(value.saturating_sub(current));
        }
        rec.gauge("txn_active")
            .set(self.engine.sched.lock().active.len() as i64);
        rec.snapshot()
    }

    /// The engine's metric registry — clone it to register additional
    /// metrics in the same snapshot (the chaos harness and the server do).
    #[must_use]
    pub fn recorder(&self) -> Recorder {
        self.engine.recorder.clone()
    }

    /// Submit a transaction; the returned [`CommitFuture`] resolves when
    /// the commit satisfies the [`DurabilityTier`] in `opts` (or the
    /// transaction aborts). The worker and its admission slot are released
    /// at validation, so a caller can keep submitting while earlier
    /// commits drain — deferred commits coalesce into the shipper's
    /// multi-group frames. See [`Rodain::execute`] for the blocking
    /// variant.
    pub fn submit<F>(&self, opts: TxnOptions, closure: F) -> CommitFuture
    where
        F: FnMut(&mut TxnCtx) -> Result<Option<Value>, TxnAbort> + Send + 'static,
    {
        self.submit_inner(opts, Box::new(closure), None)
    }

    /// [`Rodain::submit`] with a [`CompletionHook`] that fires once the
    /// returned future resolves (the outcome is already in the future when
    /// the hook runs). This is how the event-driven server front-end
    /// multiplexes thousands of in-flight commits onto one poller thread
    /// without selecting over thousands of channels: each completion
    /// pushes its token and wakes the event loop, O(1) per commit. The
    /// hook fires on *every* resolution path — abort, admission denial,
    /// eviction, deadline miss, shutdown, and durable commit alike.
    pub fn submit_hooked<F>(&self, opts: TxnOptions, closure: F, hook: CompletionHook) -> CommitFuture
    where
        F: FnMut(&mut TxnCtx) -> Result<Option<Value>, TxnAbort> + Send + 'static,
    {
        self.submit_inner(opts, Box::new(closure), Some(hook))
    }

    fn submit_inner(
        &self,
        opts: TxnOptions,
        closure: BoxClosure,
        hook: Option<CompletionHook>,
    ) -> CommitFuture {
        let (tx, rx) = bounded(1);
        let reply = ReplySlot { tx, hook };
        let rx = CommitFuture::new(rx);
        let engine = &self.engine;
        if engine.shutdown.load(Ordering::Acquire) {
            let _ = reply.send(Err(TxnError::Shutdown));
            return rx;
        }
        let now = engine.now_ns();
        let mut sched = engine.sched.lock();
        let id = TxnId(sched.next_id);
        sched.next_id += 1;

        let est = opts.est_cost.as_nanos() as u64;
        let rel_deadline = opts
            .relative_deadline
            .as_nanos()
            .min(u128::from(u64::MAX / 4)) as u64;
        let meta = match opts.class {
            TxnClass::Firm => TaskMeta::firm(id, now, rel_deadline, est),
            TxnClass::Soft => TaskMeta::soft(id, now, rel_deadline, est),
            TxnClass::NonRealTime => TaskMeta::non_real_time(id, now, est),
        };

        let admission = {
            let SchedCore {
                overload, active, ..
            } = &mut *sched;
            overload.admit(now, &meta, active)
        };
        match admission {
            Admission::Reject => {
                engine.counters.aborted_admission.inc();
                let _ = reply.send(Err(TxnError::AdmissionDenied));
                return rx;
            }
            Admission::AcceptEvicting(victim) => {
                if let Some(flags) = sched.flags.get(&victim) {
                    flags.evicted.store(true, Ordering::Release);
                }
                sched.active.remove(victim);
                // A still-queued victim can be resolved right here.
                if let Some(job) = sched.jobs.remove(&victim) {
                    sched.flags.remove(&victim);
                    engine.counters.aborted_evicted.inc();
                    let _ = job.reply.send(Err(TxnError::Evicted));
                }
            }
            Admission::Accept => {}
        }

        let flags = TxnFlags::new();
        sched.flags.insert(id, Arc::clone(&flags));
        sched.active.insert(meta);
        sched.jobs.insert(
            id,
            Job {
                closure,
                reply,
                meta,
                flags,
                tier: opts.durability,
            },
        );
        sched.ready.push(meta);
        drop(sched);
        engine.work_ready.notify_one();
        rx
    }

    /// Execute a transaction and wait for its outcome — a thin
    /// `submit(..).wait()` wrapper.
    pub fn execute<F>(&self, opts: TxnOptions, closure: F) -> Result<TxnReceipt, TxnError>
    where
        F: FnMut(&mut TxnCtx) -> Result<Option<Value>, TxnAbort> + Send + 'static,
    {
        self.submit(opts, closure).wait()
    }

    /// Take a fuzzy checkpoint into `snapshot_dir` and truncate the local
    /// disk log behind it (DESIGN.md §15). Returns the snapshot file's
    /// path. Writers are only paused for the instant the boundary CSN is
    /// fixed — the store scan runs concurrently with commits.
    ///
    /// Bounded recovery: a restart restores the newest checkpoint and
    /// replays only the remaining log tail
    /// (see `rodain_node::recover_with_checkpoint`). This ad-hoc form
    /// applies no retention policy; the configured checkpointer
    /// ([`RodainBuilder::checkpoints`], [`Rodain::force_checkpoint`])
    /// does.
    pub fn checkpoint(
        &self,
        snapshot_dir: impl AsRef<std::path::Path>,
    ) -> io::Result<std::path::PathBuf> {
        fuzzy_checkpoint(&self.engine, snapshot_dir.as_ref(), 0, None)
    }

    /// Force a checkpoint now, using the directory and retention policy
    /// configured through [`RodainBuilder::checkpoints`] — what the
    /// server's `Checkpoint` wire op calls. Runs inline on the caller's
    /// thread, serialized against the background checkpointer. Fails with
    /// [`io::ErrorKind::InvalidInput`] when checkpointing was not
    /// configured.
    pub fn force_checkpoint(&self) -> io::Result<std::path::PathBuf> {
        let cp = self.engine.checkpoint.as_ref().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpointing not configured (RodainBuilder::checkpoints)",
            )
        })?;
        fuzzy_checkpoint(
            &self.engine,
            &cp.dir,
            cp.policy.retain_segments,
            Some(cp.policy.retain_snapshots),
        )
    }

    /// Accept a (re)joining mirror: wait for its `JoinRequest`, transfer a
    /// consistent snapshot, then switch commits to log shipping.
    ///
    /// Commits pause for the duration of the snapshot transfer. A node in
    /// Contingency mode becomes a full Primary again once this returns
    /// (paper: the recovered peer "will always become a Mirror Node").
    pub fn attach_mirror(
        &self,
        transport: Arc<dyn Transport>,
        policy: MirrorLossPolicy,
    ) -> io::Result<()> {
        attach_mirror_inner(&self.engine, transport, policy)
    }
}

fn attach_mirror_inner(
    engine: &Arc<Engine>,
    transport: Arc<dyn Transport>,
    policy: MirrorLossPolicy,
) -> io::Result<()> {
    // 1. Wait for the mirror to announce itself.
    let deadline = Instant::now() + JOIN_TIMEOUT;
    loop {
        match transport.recv_timeout(Duration::from_millis(20)) {
            Ok(Some(frame)) => {
                if let Ok(Message::JoinRequest) = Message::decode(frame) {
                    break;
                }
            }
            Ok(None) => {}
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    format!("mirror link failed during join: {e}"),
                ))
            }
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "mirror never sent JoinRequest",
            ));
        }
    }

    // 2. Pause commits, transfer a consistent snapshot, pick the CSN
    //    boundary where the live stream resumes.
    let gate = engine.commit_gate.write();
    let snapshot = engine.store.snapshot();
    let boundary = Csn(engine.last_csn.load(Ordering::Acquire) + 1);
    for chunk in Message::snapshot_chunks(&snapshot, SNAPSHOT_CHUNK) {
        transport
            .send(chunk.encode())
            .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
    }
    transport
        .send(Message::SnapshotDone { next_csn: boundary }.encode())
        .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;

    // 3. Switch the commit path to log shipping. The shipper's holdback
    //    starts at the snapshot boundary — the first CSN the live stream
    //    carries (the gate write lock guarantees nothing is in flight).
    let link = MirrorLink::new(
        transport,
        &policy,
        &engine.recorder,
        boundary,
        engine.ship_batch,
    )?;
    *engine.replicator.write() = Replicator::Mirrored(link);
    engine
        .recorder
        .gauge("replication_mode")
        .set(ReplicationMode::Mirrored.as_gauge());
    engine.recorder.emit(
        "mode-change",
        format!("mirror attached at csn {}", boundary.0),
    );
    drop(gate);
    Ok(())
}

// ----- checkpointing ------------------------------------------------------

/// Take one fuzzy checkpoint: fix a boundary CSN, scan the live store
/// without pausing writers, install the snapshot atomically, then
/// truncate log segments wholly behind the replication-fenced boundary
/// (DESIGN.md §15).
///
/// The boundary is fixed under a brief exclusive `commit_gate` hold, so
/// every commit with `csn < boundary` is fully installed before the scan
/// starts. The scan itself runs under per-shard read locks only; it may
/// observe commits *at or after* the boundary, which is safe because the
/// retained tail (`csn >= boundary`) replays over the snapshot and
/// `Store::install` is timestamp-monotone and idempotent.
///
/// Truncation is fenced on the mirror ack watermark: a segment is
/// GC-eligible only when both the snapshot (primary disk) and the
/// mirror's acknowledged prefix cover it — two independent copies before
/// any byte is dropped, so a takeover racing truncation never needs a
/// segment we deleted.
fn fuzzy_checkpoint(
    engine: &Engine,
    dir: &std::path::Path,
    retain_segments: usize,
    prune_to: Option<usize>,
) -> io::Result<std::path::PathBuf> {
    // Serialize against the background checkpointer / other forced calls.
    let _running = engine.checkpoint_lock.lock();
    let started = Instant::now();

    // 1. Fix the boundary under a brief exclusive gate. Nothing is copied
    //    while the gate is held — writers resume before the scan.
    let boundary = {
        let _gate = engine.commit_gate.write();
        Csn(engine.last_csn.load(Ordering::Acquire) + 1)
    };

    // 2. Fuzzy copy-on-scan: commits keep flowing while we walk shards.
    let snapshot = engine.store.fuzzy_snapshot();

    // 3. Atomic install: tmp → fsync → rename (DESIGN.md §13).
    let path = rodain_log::write_snapshot_file(dir, &snapshot, boundary)?;
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    if let Some(keep) = prune_to {
        let _ = rodain_log::prune_snapshots(dir, keep);
    }

    // 4. Marker record for recovery diagnostics, then truncate behind the
    //    fence. When a live mirror is attached the fence holds back
    //    segments whose commits it has not acknowledged yet.
    let replicator = engine.replicator.read();
    replicator.append_info(engine.builder.checkpoint_record(boundary, boundary.0));
    let fence = match replicator.ack_watermark() {
        Some(watermark) => Csn(boundary.0.min(watermark.saturating_add(1))),
        None => boundary,
    };
    let removed = replicator.truncate_before_retaining(fence, retain_segments)?;
    let log_bytes = replicator.log_on_disk_bytes();
    drop(replicator);

    engine.cp_obs.truncated.add(removed as u64);
    if let Some(bytes) = log_bytes {
        engine.cp_obs.log_bytes.set(bytes as i64);
    }
    engine.cp_obs.snapshot_bytes.record(snapshot_bytes);
    engine.cp_obs.duration_ns.record_elapsed(started);
    engine.cp_obs.completed.inc();
    engine.cp_obs.last_csn.set(boundary.0 as i64);
    engine.recorder.emit(
        "checkpoint",
        format!(
            "checkpoint at csn {} ({} objects, {removed} segments truncated)",
            boundary.0,
            snapshot.len()
        ),
    );
    Ok(path)
}

/// Background checkpointer: wakes every [`CHECKPOINT_POLL`], fires a
/// fuzzy checkpoint when the policy's interval elapses or the on-disk log
/// crosses `log_bytes_trigger`. Failures are counted and reported through
/// the recorder; the loop keeps running.
fn checkpointer_loop(engine: &Arc<Engine>) {
    let Some(cp) = engine.checkpoint.as_ref() else {
        return;
    };
    let mut last_at = Instant::now();
    let mut bytes_at_last = engine.replicator.read().log_on_disk_bytes().unwrap_or(0);
    while !engine.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(CHECKPOINT_POLL);
        if engine.shutdown.load(Ordering::Acquire) {
            return;
        }
        let timer_due =
            !cp.policy.interval.is_zero() && last_at.elapsed() >= cp.policy.interval;
        let log_bytes = engine.replicator.read().log_on_disk_bytes();
        if let Some(bytes) = log_bytes {
            engine.cp_obs.log_bytes.set(bytes as i64);
        }
        // The size trigger additionally requires growth since the last
        // checkpoint: when truncation cannot shrink the log (mirror ack
        // fence, retained segments) a bare threshold would hot-loop.
        let size_due = cp.policy.log_bytes_trigger > 0
            && log_bytes.is_some_and(|b| b >= cp.policy.log_bytes_trigger && b > bytes_at_last);
        if !(timer_due || size_due) {
            continue;
        }
        match fuzzy_checkpoint(
            engine,
            &cp.dir,
            cp.policy.retain_segments,
            Some(cp.policy.retain_snapshots),
        ) {
            Ok(_) => {}
            Err(e) => {
                engine.cp_obs.failed.inc();
                engine.recorder.emit("checkpoint-failed", e.to_string());
            }
        }
        last_at = Instant::now();
        bytes_at_last = engine.replicator.read().log_on_disk_bytes().unwrap_or(0);
    }
}

impl Drop for Rodain {
    fn drop(&mut self) {
        self.engine.shutdown.store(true, Ordering::Release);
        self.engine.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Workers are gone, so every completion is already enqueued; the
        // sentinel lands behind them and the completer drains in order.
        // (The gate-timeout → mark-down backstop bounds each ticket wait.)
        let _ = self.engine.completions.send(Completion::Shutdown);
        if let Some(handle) = self.completer.take() {
            let _ = handle.join();
        }
        // The checkpointer polls the shutdown flag; a checkpoint already
        // in flight runs to completion first (its snapshot stays valid).
        if let Some(handle) = self.checkpointer.take() {
            let _ = handle.join();
        }
        // Reply to anything still queued.
        let mut sched = self.engine.sched.lock();
        for (_, job) in sched.jobs.drain() {
            let _ = job.reply.send(Err(TxnError::Shutdown));
        }
    }
}

// ----- worker ------------------------------------------------------------

fn worker_loop(engine: Arc<Engine>) {
    loop {
        if engine.shutdown.load(Ordering::Acquire) {
            return;
        }
        let grabbed = {
            let mut sched = engine.sched.lock();
            let mut grabbed = None;
            let mut expired = Vec::new();
            loop {
                let now = engine.now_ns();
                let popped = sched.ready.pop(now, &mut expired);
                // Account expired firm transactions dropped by the queue.
                for meta in expired.drain(..) {
                    if let Some(job) = sched.jobs.remove(&meta.txn) {
                        sched.flags.remove(&meta.txn);
                        sched.active.remove(meta.txn);
                        sched.overload.record_miss(now);
                        engine.counters.aborted_deadline.inc();
                        let _ = job.reply.send(Err(TxnError::DeadlineExpired));
                    }
                }
                match popped {
                    Some(task) => {
                        if let Some(job) = sched.jobs.remove(&task.txn) {
                            grabbed = Some(job);
                            break;
                        }
                        // Stale queue entry (evicted earlier): keep looking.
                        continue;
                    }
                    None => {
                        if engine.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        engine
                            .work_ready
                            .wait_for(&mut sched, Duration::from_millis(5));
                        if engine.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                    }
                }
            }
            grabbed
        };
        let Some(job) = grabbed else {
            continue; // shutdown or spurious wakeup
        };
        execute_job(&engine, job);
    }
}

/// How one `execute_job` run ended: with an outcome to send now, or
/// deferred to the completer thread (the durability gate is still pending
/// and the worker must not block on it).
enum JobVerdict {
    Reply(Result<TxnReceipt, TxnError>),
    Deferred,
}

fn execute_job(engine: &Arc<Engine>, mut job: Job) {
    let id = job.meta.txn;
    let started = engine.now_ns();
    let firm_deadline = (job.meta.class == TxnClass::Firm)
        .then_some(job.meta.deadline)
        .flatten();
    let priority = CcPriority(job.meta.deadline.unwrap_or(u64::MAX));
    let mut ws = Workspace::new(id);
    let mut restarts = 0u32;

    let verdict: JobVerdict = loop {
        // Pre-attempt deadline check.
        if let Some(d) = firm_deadline {
            if engine.now_ns() > d {
                break JobVerdict::Reply(Err(TxnError::DeadlineExpired));
            }
        }
        engine.cc.begin(id, priority);
        ws.reset();

        let now_fn = {
            let engine = Arc::clone(engine);
            move || engine.now_ns()
        };
        let mut ctx = TxnCtx {
            id,
            ws: &mut ws,
            store: &engine.store,
            cc: engine.cc.as_ref(),
            flags: &job.flags,
            shutdown: &engine.shutdown,
            firm_deadline_ns: firm_deadline,
            now_ns: &now_fn,
            stop: None,
            blocks: 0,
        };
        let result = (job.closure)(&mut ctx);
        let stop = ctx.stop;
        let blocks = ctx.blocks;
        engine.counters.lock_waits.add(blocks);

        match result {
            Ok(value) => {
                // An evicted transaction must not commit even if its
                // closure never touched the context again.
                if job.flags.evicted.load(Ordering::Acquire) {
                    engine.cc.remove(id);
                    engine.counters.aborted_evicted.inc();
                    break JobVerdict::Reply(Err(TxnError::Evicted));
                }
                // Atomic validation + install, then the commit gate.
                let gate = engine.commit_gate.read();
                match engine.cc.validate(&ws, &engine.store) {
                    rodain_occ::ValidationOutcome::Commit {
                        ser_ts,
                        csn,
                        victims,
                    } => {
                        // Victims were marked by the controller; running
                        // ones discover it at their next access/validation.
                        let _ = victims;
                        engine.obs.validation_commit.inc();
                        engine.last_csn.fetch_max(csn.0, Ordering::AcqRel);
                        let records = engine.builder.commit_group(id, ws.writes(), csn, ser_ts);
                        let commit_submitted = engine.now_ns();
                        let tier = job.tier;
                        let ticket = engine.replicator.read().ship(csn, records, tier);
                        drop(gate);
                        engine.obs.inflight_futures.add(1);
                        if tier == DurabilityTier::Volatile {
                            // Resolve now — the whole point of the tier.
                            // The ticket still drains through the completer
                            // so a wedged gate triggers the mark-down
                            // backstop even if nothing stronger is queued.
                            let finished = engine.now_ns();
                            engine.counters.committed.inc();
                            let commit_wait = finished.saturating_sub(commit_submitted);
                            let response = finished.saturating_sub(job.meta.arrival);
                            engine.obs.commit_wait_ns.record(commit_wait);
                            engine.obs.tier_wait_ns[tier.code() as usize].record(commit_wait);
                            engine.obs.response_ns.record(response);
                            let _ = engine.completions.send(Completion::Commit(Box::new(
                                PendingDurability {
                                    ticket,
                                    reply: None,
                                    value: None,
                                    csn,
                                    ser_ts,
                                    restarts,
                                    arrival: job.meta.arrival,
                                    commit_submitted,
                                    requested: tier,
                                },
                            )));
                            break JobVerdict::Reply(Ok(TxnReceipt {
                                result: value,
                                csn,
                                ser_ts,
                                restarts,
                                response: Duration::from_nanos(response),
                                commit_wait: Duration::from_nanos(commit_wait),
                                acked_tier: DurabilityTier::Volatile,
                            }));
                        }
                        // Deferred tiers: hand the pending receipt to the
                        // completer and free this worker for the next
                        // transaction — the commit future resolves when
                        // the tier's gate does.
                        let _ = engine.completions.send(Completion::Commit(Box::new(
                            PendingDurability {
                                ticket,
                                reply: Some(job.reply.clone()),
                                value,
                                csn,
                                ser_ts,
                                restarts,
                                arrival: job.meta.arrival,
                                commit_submitted,
                                requested: tier,
                            },
                        )));
                        break JobVerdict::Deferred;
                    }
                    rodain_occ::ValidationOutcome::Restart(_) => {
                        drop(gate);
                        engine.obs.validation_restart.inc();
                        restarts += 1;
                        engine.counters.restarts.inc();
                        if !restart_fits(engine, &job.meta) {
                            break JobVerdict::Reply(Err(TxnError::ConflictAbort { restarts }));
                        }
                        continue;
                    }
                }
            }
            Err(abort) => {
                engine.cc.remove(id);
                if let Some(message) = abort.user_message {
                    engine.counters.aborted_user.inc();
                    break JobVerdict::Reply(Err(TxnError::UserAbort(message)));
                }
                match stop {
                    Some(CtxStop::Evicted) => {
                        engine.counters.aborted_evicted.inc();
                        break JobVerdict::Reply(Err(TxnError::Evicted));
                    }
                    Some(CtxStop::DeadlineExpired) => {
                        break JobVerdict::Reply(Err(TxnError::DeadlineExpired))
                    }
                    Some(CtxStop::Shutdown) => break JobVerdict::Reply(Err(TxnError::Shutdown)),
                    Some(CtxStop::Doomed) | None => {
                        restarts += 1;
                        engine.counters.restarts.inc();
                        if !restart_fits(engine, &job.meta) {
                            break JobVerdict::Reply(Err(TxnError::ConflictAbort { restarts }));
                        }
                        continue;
                    }
                }
            }
        }
    };

    // Common cleanup and accounting. Runs for deferred commits too: the
    // admission slot frees at validation, not at durability — that is what
    // lets a connection pipeline past an in-flight commit.
    let finished = engine.now_ns();
    {
        let mut sched = engine.sched.lock();
        sched.active.remove(id);
        sched.flags.remove(&id);
        sched.ready.account_busy(finished.saturating_sub(started));
        if matches!(verdict, JobVerdict::Reply(Err(TxnError::DeadlineExpired))) {
            sched.overload.record_miss(finished);
            engine.counters.aborted_deadline.inc();
        }
    }
    if let JobVerdict::Reply(outcome) = verdict {
        let _ = job.reply.send(outcome);
    }
}

// ----- completer ----------------------------------------------------------

/// The completer thread: awaits durability tickets in submission order and
/// resolves their commit futures. One thread suffices — acks arrive in CSN
/// order, so the head of the queue is the only ticket that ever actually
/// blocks; everything behind it resolves instantly once reached.
fn completer_loop(engine: &Arc<Engine>, completions: &Receiver<Completion>) {
    for msg in completions {
        match msg {
            Completion::Commit(pending) => complete_commit(engine, *pending),
            Completion::Shutdown => return,
        }
    }
}

/// Await one commit's durability ticket (with the gate-timeout → mirror
/// mark-down backstop the workers used to run inline) and resolve its
/// future with the achieved [`DurabilityTier`].
fn complete_commit(engine: &Arc<Engine>, pending: PendingDurability) {
    let mut waited = pending.ticket.recv_timeout(engine.commit_gate_timeout);
    if waited.is_err() && engine.replicator.read().note_gate_timeout() {
        // The mirror went silent (e.g. it rejected a corrupted frame and
        // never acked). Mark-down resolved every pending ticket through
        // the degraded path; re-await this one.
        engine.obs.gate_timeouts.inc();
        engine.recorder.emit(
            "gate-timeout",
            format!("commit gate timed out at csn {}", pending.csn.0),
        );
        waited = pending.ticket.recv_timeout(engine.commit_gate_timeout);
    }
    let gate_result = waited.unwrap_or(Err(TxnError::Replication("commit gate timeout".into())));
    engine.obs.inflight_futures.add(-1);
    let Some(reply) = pending.reply else {
        // Volatile-tier commit: already replied at the worker; this pass
        // only kept the gate-health backstop alive.
        return;
    };
    match gate_result {
        Ok(mut achieved) => {
            if pending.requested == DurabilityTier::DiskFsynced
                && achieved == DurabilityTier::MirrorAcked
            {
                // The mirror ack came back first; the records were already
                // appended to the local fallback at ship time, so one
                // flush upgrades the commit to its requested tier. With no
                // local log the ceiling stays MirrorAcked — the receipt
                // reports what actually held.
                match engine.replicator.read().fsync_local() {
                    Some(Ok(())) => achieved = DurabilityTier::DiskFsynced,
                    Some(Err(e)) => {
                        engine.counters.aborted_replication.inc();
                        let _ = reply.send(Err(e));
                        return;
                    }
                    None => {}
                }
            }
            let finished = engine.now_ns();
            engine.counters.committed.inc();
            let commit_wait = finished.saturating_sub(pending.commit_submitted);
            let response = finished.saturating_sub(pending.arrival);
            engine.obs.commit_wait_ns.record(commit_wait);
            engine.obs.tier_wait_ns[pending.requested.code() as usize].record(commit_wait);
            engine.obs.response_ns.record(response);
            let _ = reply.send(Ok(TxnReceipt {
                result: pending.value,
                csn: pending.csn,
                ser_ts: pending.ser_ts,
                restarts: pending.restarts,
                response: Duration::from_nanos(response),
                commit_wait: Duration::from_nanos(commit_wait),
                acked_tier: achieved,
            }));
        }
        Err(e) => {
            engine.counters.aborted_replication.inc();
            let _ = reply.send(Err(e));
        }
    }
}

/// Is there slack for one more execution attempt?
fn restart_fits(engine: &Engine, meta: &TaskMeta) -> bool {
    match (meta.class, meta.deadline) {
        (TxnClass::Firm, Some(d)) => engine.now_ns() + meta.est_cost <= d,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volatile_db(workers: usize) -> Rodain {
        Rodain::builder().workers(workers).build().unwrap()
    }

    #[test]
    fn read_modify_write_commits() {
        let db = volatile_db(2);
        db.load_initial(ObjectId(1), Value::Int(10));
        let receipt = db
            .execute(TxnOptions::firm_ms(500), |ctx| {
                let v = ctx.read(ObjectId(1))?.unwrap().as_int().unwrap();
                ctx.write(ObjectId(1), Value::Int(v * 2))?;
                Ok(Some(Value::Int(v)))
            })
            .unwrap();
        assert_eq!(receipt.result, Some(Value::Int(10)));
        assert_eq!(receipt.restarts, 0);
        assert_eq!(db.get(ObjectId(1)), Some(Value::Int(20)));
        assert_eq!(db.stats().committed, 1);
        assert_eq!(db.replication_mode(), ReplicationMode::Volatile);
        assert_eq!(db.protocol(), Protocol::OccDati);
        assert_eq!(db.mirror_acks(), None);
    }

    #[test]
    fn csns_are_dense_in_commit_order() {
        let db = volatile_db(1);
        db.load_initial(ObjectId(1), Value::Int(0));
        let mut csns = Vec::new();
        for _ in 0..5 {
            let r = db
                .execute(TxnOptions::firm_ms(500), |ctx| {
                    ctx.read(ObjectId(1))?;
                    Ok(None)
                })
                .unwrap();
            csns.push(r.csn.0);
        }
        assert_eq!(csns, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn concurrent_increments_never_lose_updates() {
        let db = Arc::new(volatile_db(4));
        db.load_initial(ObjectId(7), Value::Int(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let mut committed = 0u64;
                for _ in 0..50 {
                    let result = db.execute(
                        TxnOptions::soft_ms(1_000).with_est_cost(Duration::from_micros(10)),
                        |ctx| {
                            let v = ctx.read(ObjectId(7))?.unwrap().as_int().unwrap();
                            ctx.write(ObjectId(7), Value::Int(v + 1))?;
                            Ok(None)
                        },
                    );
                    if result.is_ok() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let final_value = db.get(ObjectId(7)).unwrap().as_int().unwrap();
        assert_eq!(final_value as u64, committed, "lost update detected");
        assert!(committed > 0);
    }

    #[test]
    fn user_abort_discards_writes() {
        let db = volatile_db(1);
        db.load_initial(ObjectId(1), Value::Int(1));
        let result = db.execute(TxnOptions::firm_ms(500), |ctx| {
            ctx.write(ObjectId(1), Value::Int(999))?;
            Err(ctx.abort("changed my mind"))
        });
        assert_eq!(result, Err(TxnError::UserAbort("changed my mind".into())));
        assert_eq!(db.get(ObjectId(1)), Some(Value::Int(1)));
        assert_eq!(db.stats().aborted_user, 1);
    }

    #[test]
    fn expired_deadline_aborts() {
        let db = volatile_db(1);
        db.load_initial(ObjectId(1), Value::Int(1));
        // Occupy the single worker so the firm txn expires in the queue.
        let blocker = db.submit(TxnOptions::soft_ms(10_000), |_ctx| {
            std::thread::sleep(Duration::from_millis(60));
            Ok(None)
        });
        std::thread::sleep(Duration::from_millis(5));
        let result = db.execute(
            TxnOptions::firm_ms(10).with_est_cost(Duration::from_micros(100)),
            |ctx| {
                ctx.read(ObjectId(1))?;
                Ok(None)
            },
        );
        assert_eq!(result, Err(TxnError::DeadlineExpired));
        assert!(blocker.wait().is_ok());
        assert_eq!(db.stats().aborted_deadline, 1);
    }

    #[test]
    fn admission_limit_rejects_excess_load() {
        let db = Rodain::builder()
            .workers(1)
            .overload(OverloadConfig {
                base_limit: 2,
                min_limit: 1,
                window: 1_000_000_000,
                miss_tolerance: 1,
            })
            .build()
            .unwrap();
        db.load_initial(ObjectId(1), Value::Int(1));
        // Two slow soft transactions occupy the limit...
        let a = db.submit(TxnOptions::soft_ms(10_000), |_| {
            std::thread::sleep(Duration::from_millis(50));
            Ok(None)
        });
        let b = db.submit(TxnOptions::soft_ms(10_000), |_| {
            std::thread::sleep(Duration::from_millis(50));
            Ok(None)
        });
        std::thread::sleep(Duration::from_millis(5));
        // ...so a later, *less urgent* arrival is rejected.
        let c = db.execute(TxnOptions::soft_ms(60_000), |_| Ok(None));
        assert_eq!(c, Err(TxnError::AdmissionDenied));
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        assert_eq!(db.stats().aborted_admission, 1);
    }

    #[test]
    fn completion_hook_fires_on_every_resolution_path() {
        use std::sync::atomic::AtomicUsize;
        let fired = Arc::new(AtomicUsize::new(0));
        let hook: CompletionHook = {
            let fired = Arc::clone(&fired);
            Arc::new(move || {
                fired.fetch_add(1, Ordering::SeqCst);
            })
        };

        // Commit path: the hook runs after the outcome is in the future,
        // so a try_wait right after observing the hook must succeed.
        let db = volatile_db(2);
        db.load_initial(ObjectId(1), Value::Int(1));
        let f = db.submit_hooked(
            TxnOptions::non_real_time(),
            |ctx| {
                ctx.write(ObjectId(1), Value::Int(2))?;
                Ok(Some(Value::Int(2)))
            },
            Arc::clone(&hook),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) < 1 {
            assert!(std::time::Instant::now() < deadline, "hook never fired");
            std::thread::yield_now();
        }
        assert!(matches!(f.try_wait(), Some(Ok(_))));

        // User-abort path.
        let f = db.submit_hooked(
            TxnOptions::non_real_time(),
            |ctx| Err(ctx.abort("no")),
            Arc::clone(&hook),
        );
        assert!(matches!(f.wait(), Err(TxnError::UserAbort(_))));
        assert_eq!(fired.load(Ordering::SeqCst), 2);

        // Admission-denial path: the rejection is sent before any worker
        // ever touches the job, and the hook must still fire.
        drop(db);
        let db = Rodain::builder()
            .workers(1)
            .overload(OverloadConfig {
                base_limit: 2,
                min_limit: 1,
                window: 1_000_000_000,
                miss_tolerance: 1,
            })
            .build()
            .unwrap();
        db.load_initial(ObjectId(1), Value::Int(1));
        let a = db.submit(TxnOptions::soft_ms(10_000), |_| {
            std::thread::sleep(Duration::from_millis(50));
            Ok(None)
        });
        let b = db.submit(TxnOptions::soft_ms(10_000), |_| {
            std::thread::sleep(Duration::from_millis(50));
            Ok(None)
        });
        std::thread::sleep(Duration::from_millis(5));
        let c = db.submit_hooked(TxnOptions::soft_ms(60_000), |_| Ok(None), Arc::clone(&hook));
        assert_eq!(c.wait(), Err(TxnError::AdmissionDenied));
        assert_eq!(fired.load(Ordering::SeqCst), 3);
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
    }

    #[test]
    fn urgent_arrival_evicts_queued_lazy_txn() {
        let db = Rodain::builder()
            .workers(1)
            .overload(OverloadConfig {
                base_limit: 2,
                min_limit: 1,
                window: 1_000_000_000,
                miss_tolerance: 1,
            })
            .build()
            .unwrap();
        db.load_initial(ObjectId(1), Value::Int(1));
        // Worker busy with a long, *least urgent* soft txn; a firm txn
        // queues behind it.
        let busy = db.submit(TxnOptions::soft_ms(20_000), |_| {
            std::thread::sleep(Duration::from_millis(60));
            Ok(None)
        });
        std::thread::sleep(Duration::from_millis(5));
        let queued = db.submit(TxnOptions::firm_ms(5_000), |ctx| {
            ctx.read(ObjectId(1))?;
            Ok(None)
        });
        std::thread::sleep(Duration::from_millis(5));
        // At the limit, an urgent firm arrival evicts the least urgent
        // active transaction — the sleeping soft one.
        let urgent = db.execute(TxnOptions::firm_ms(500), |ctx| {
            ctx.read(ObjectId(1))?;
            Ok(None)
        });
        assert!(urgent.is_ok());
        assert_eq!(busy.wait(), Err(TxnError::Evicted));
        assert!(queued.wait().is_ok());
        assert_eq!(db.stats().aborted_evicted, 1);
    }

    #[test]
    fn contingency_mode_survives_restart() {
        let dir = std::env::temp_dir().join(format!(
            "rodain-db-contingency-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Rodain::builder()
                .workers(2)
                .contingency_log(&dir)
                .build()
                .unwrap();
            assert_eq!(db.replication_mode(), ReplicationMode::Contingency);
            for i in 0..10i64 {
                db.execute(TxnOptions::firm_ms(5_000), move |ctx| {
                    ctx.write(ObjectId(i as u64), Value::Int(i * 11))?;
                    Ok(None)
                })
                .unwrap();
            }
        } // drop flushes and shuts down
        let cold = rodain_node::recover_store_from_disk(&dir).unwrap();
        assert_eq!(cold.stats.committed, 10);
        assert_eq!(
            cold.store.read(ObjectId(3)).map(|(v, _)| v),
            Some(Value::Int(33))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degenerate_builder_inputs() {
        // workers(0) is clamped to one executor, not a dead engine.
        let db = Rodain::builder().workers(0).build().unwrap();
        db.load_initial(ObjectId(1), Value::Int(1));
        let r = db
            .execute(TxnOptions::soft_ms(5_000), |ctx| ctx.read(ObjectId(1)))
            .unwrap();
        assert_eq!(r.result, Some(Value::Int(1)));

        // An empty contingency directory is a configuration bug.
        let err = match Rodain::builder().contingency_log("").build() {
            Err(e) => e,
            Ok(_) => panic!("empty contingency dir must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        // group_commit_batch(0) clamps to one request per flush.
        let dir = std::env::temp_dir().join(format!(
            "rodain-db-batch1-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Rodain::builder()
            .workers(1)
            .group_commit_batch(0)
            .contingency_log(&dir)
            .build()
            .unwrap();
        assert_eq!(db.replication_mode(), ReplicationMode::Contingency);
        db.execute(TxnOptions::soft_ms(5_000), |ctx| {
            ctx.write(ObjectId(1), Value::Int(7))?;
            Ok(None)
        })
        .unwrap();
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_real_time_transactions_complete() {
        let db = volatile_db(2);
        db.load_initial(ObjectId(1), Value::Int(5));
        let r = db
            .execute(TxnOptions::non_real_time(), |ctx| ctx.read(ObjectId(1)))
            .unwrap();
        assert_eq!(r.result, Some(Value::Int(5)));
    }

    #[test]
    fn every_protocol_runs_the_same_workload() {
        for protocol in Protocol::ALL {
            let db = Rodain::builder()
                .protocol(protocol)
                .workers(2)
                .build()
                .unwrap();
            db.load_initial(ObjectId(1), Value::Int(0));
            for _ in 0..20 {
                let _ = db.execute(TxnOptions::soft_ms(5_000), |ctx| {
                    let v = ctx.read(ObjectId(1))?.unwrap().as_int().unwrap();
                    ctx.write(ObjectId(1), Value::Int(v + 1))?;
                    Ok(None)
                });
            }
            let stats = db.stats();
            assert!(stats.committed > 0, "{protocol}: no commits ({stats:?})");
            let v = db.get(ObjectId(1)).unwrap().as_int().unwrap();
            assert_eq!(v as u64, stats.committed, "{protocol}: lost updates");
        }
    }

    #[test]
    fn snapshot_is_consistent_under_load() {
        let db = Arc::new(volatile_db(4));
        for i in 0..100u64 {
            db.load_initial(ObjectId(i), Value::Int(0));
        }
        let writer_db = Arc::clone(&db);
        let writer = std::thread::spawn(move || {
            for k in 0..50 {
                let _ = writer_db.execute(TxnOptions::soft_ms(5_000), move |ctx| {
                    // Invariant: objects 10 and 11 always change together.
                    ctx.write(ObjectId(10), Value::Int(k))?;
                    ctx.write(ObjectId(11), Value::Int(k))?;
                    Ok(None)
                });
            }
        });
        for _ in 0..20 {
            let snap = db.snapshot();
            let v10 = snap
                .objects
                .iter()
                .find(|(oid, _)| *oid == ObjectId(10))
                .map(|(_, o)| o.value.clone());
            let v11 = snap
                .objects
                .iter()
                .find(|(oid, _)| *oid == ObjectId(11))
                .map(|(_, o)| o.value.clone());
            assert_eq!(v10, v11, "snapshot split a transaction");
        }
        writer.join().unwrap();
    }

    #[test]
    fn receipts_report_the_achieved_tier_per_mode() {
        // Volatile engine: every request resolves at Volatile — the
        // receipt is honest about the ceiling, not the ask.
        let db = volatile_db(1);
        db.load_initial(ObjectId(1), Value::Int(1));
        for tier in DurabilityTier::ALL {
            let r = db
                .execute(TxnOptions::soft_ms(5_000).with_durability(tier), |ctx| {
                    ctx.read(ObjectId(1))
                })
                .unwrap();
            assert_eq!(r.acked_tier, DurabilityTier::Volatile, "requested {tier}");
        }

        // Contingency engine: Volatile requests skip the flush wait;
        // anything stronger rides the synchronous group commit.
        let dir = std::env::temp_dir().join(format!(
            "rodain-db-tiers-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Rodain::builder()
            .workers(2)
            .contingency_log(&dir)
            .build()
            .unwrap();
        db.load_initial(ObjectId(1), Value::Int(1));
        let v = db
            .execute(
                TxnOptions::soft_ms(5_000).with_durability(DurabilityTier::Volatile),
                |ctx| {
                    ctx.write(ObjectId(2), Value::Int(2))?;
                    Ok(None)
                },
            )
            .unwrap();
        assert_eq!(v.acked_tier, DurabilityTier::Volatile);
        for tier in [DurabilityTier::MirrorAcked, DurabilityTier::DiskFsynced] {
            let r = db
                .execute(TxnOptions::soft_ms(5_000).with_durability(tier), |ctx| {
                    ctx.write(ObjectId(3), Value::Int(3))?;
                    Ok(None)
                })
                .unwrap();
            assert_eq!(
                r.acked_tier,
                DurabilityTier::DiskFsynced,
                "requested {tier}"
            );
        }
        drop(db);
        // Every tier's records reached the log, volatile ones included.
        let cold = rodain_node::recover_store_from_disk(&dir).unwrap();
        assert_eq!(cold.stats.committed, 3);
        assert_eq!(
            cold.store.read(ObjectId(2)).map(|(v, _)| v),
            Some(Value::Int(2))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_pipelines_and_futures_resolve_out_of_band() {
        let db = volatile_db(2);
        for i in 0..16u64 {
            db.load_initial(ObjectId(i), Value::Int(0));
        }
        // Queue a burst of independent commits without waiting between
        // submissions, then collect every future.
        let futures: Vec<CommitFuture> = (0..16u64)
            .map(|i| {
                db.submit(TxnOptions::soft_ms(10_000), move |ctx| {
                    let v = ctx.read(ObjectId(i))?.unwrap().as_int().unwrap();
                    ctx.write(ObjectId(i), Value::Int(v + 1))?;
                    Ok(None)
                })
            })
            .collect();
        for fut in futures {
            let receipt = fut.wait().unwrap();
            assert_eq!(receipt.acked_tier, DurabilityTier::Volatile);
        }
        assert_eq!(db.stats().committed, 16);
        for i in 0..16u64 {
            assert_eq!(db.get(ObjectId(i)), Some(Value::Int(1)));
        }
    }

    #[test]
    fn commit_future_polling_surfaces_the_outcome_once() {
        let db = volatile_db(1);
        db.load_initial(ObjectId(1), Value::Int(7));
        let fut = db.submit(TxnOptions::soft_ms(5_000), |ctx| ctx.read(ObjectId(1)));
        let deadline = Instant::now() + Duration::from_secs(5);
        let outcome = loop {
            if let Some(outcome) = fut.try_wait() {
                break outcome;
            }
            assert!(Instant::now() < deadline, "future never resolved");
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(outcome.unwrap().result, Some(Value::Int(7)));
        // The channel is one-shot: once the sender side is gone, a second
        // poll reports shutdown-style disconnection rather than hanging.
        let deadline = Instant::now() + Duration::from_secs(5);
        while fut.try_wait() != Some(Err(TxnError::Shutdown)) {
            assert!(Instant::now() < deadline, "consumed future never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        let ready = CommitFuture::ready(Err(TxnError::AdmissionDenied));
        assert_eq!(
            ready.wait_timeout(Duration::from_millis(10)),
            Some(Err(TxnError::AdmissionDenied))
        );
    }

    fn test_dirs(name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let base = std::env::temp_dir().join(format!(
            "rodain-db-cp-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        (base.join("log"), base.join("snapshots"))
    }

    #[test]
    fn force_checkpoint_requires_configuration() {
        let db = volatile_db(1);
        let err = db.force_checkpoint().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn forced_checkpoint_on_empty_store_installs_empty_snapshot() {
        let (log_dir, snap_dir) = test_dirs("empty");
        let db = Rodain::builder()
            .workers(1)
            .contingency_log(&log_dir)
            .checkpoints(&snap_dir, CheckpointPolicy::default())
            .build()
            .unwrap();
        let path = db.force_checkpoint().unwrap();
        assert!(path.exists());
        let (snapshot, upto, _) = rodain_log::read_latest_snapshot(&snap_dir)
            .unwrap()
            .expect("snapshot installed");
        assert!(snapshot.is_empty());
        assert_eq!(upto, Csn(1)); // no commits yet: boundary is last_csn + 1
        drop(db);
        let _ = std::fs::remove_dir_all(log_dir.parent().unwrap());
    }

    #[test]
    fn fuzzy_checkpoint_truncates_log_and_recovery_matches_live_state() {
        let (log_dir, snap_dir) = test_dirs("recover");
        // Tiny segments so truncation has something to delete.
        let storage = rodain_log::LogStorage::open(rodain_log::LogStorageConfig {
            fsync: false,
            segment_bytes: 256,
            ..rodain_log::LogStorageConfig::new(&log_dir)
        })
        .unwrap();
        let db = Rodain::builder()
            .workers(2)
            .contingency_storage(storage)
            .checkpoints(&snap_dir, CheckpointPolicy::default())
            .build()
            .unwrap();
        for i in 0..40i64 {
            db.execute(TxnOptions::firm_ms(5_000), move |ctx| {
                ctx.write(ObjectId(i as u64 % 8), Value::Int(i))?;
                Ok(None)
            })
            .unwrap();
        }
        db.force_checkpoint().unwrap();
        // Tail commits after the checkpoint.
        for i in 40..48i64 {
            db.execute(TxnOptions::firm_ms(5_000), move |ctx| {
                ctx.write(ObjectId(i as u64 % 8), Value::Int(i))?;
                Ok(None)
            })
            .unwrap();
        }
        let live: Vec<_> = (0..8u64).map(|o| db.get(ObjectId(o))).collect();
        let snap = db.metrics();
        assert!(snap.counter("checkpoints_total").unwrap_or(0) >= 1);
        assert!(
            snap.counter("checkpoint_truncated_segments_total")
                .unwrap_or(0)
                > 0,
            "tiny segments behind the boundary must be GC'd"
        );
        assert!(snap.gauge("checkpoint_csn").unwrap_or(0) > 0);
        drop(db);
        // Bounded recovery: snapshot restore + tail replay equals live state.
        let cold = rodain_node::recover_with_checkpoint(&log_dir, &snap_dir).unwrap();
        for (o, want) in live.iter().enumerate() {
            assert_eq!(
                cold.store.read(ObjectId(o as u64)).map(|(v, _)| v),
                *want,
                "object {o} diverged after checkpointed recovery"
            );
        }
        assert!(
            cold.stats.committed < 48,
            "truncation should have removed early segments (tail replayed {} commits)",
            cold.stats.committed
        );
        let _ = std::fs::remove_dir_all(log_dir.parent().unwrap());
    }

    #[test]
    fn background_checkpointer_fires_on_interval() {
        let (log_dir, snap_dir) = test_dirs("interval");
        let db = Rodain::builder()
            .workers(1)
            .contingency_log(&log_dir)
            .checkpoints(
                &snap_dir,
                CheckpointPolicy::default().with_interval(Duration::from_millis(50)),
            )
            .build()
            .unwrap();
        db.execute(TxnOptions::firm_ms(5_000), |ctx| {
            ctx.write(ObjectId(1), Value::Int(1))?;
            Ok(None)
        })
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if db.metrics().counter("checkpoints_total").unwrap_or(0) >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "checkpointer never fired");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(rodain_log::read_latest_snapshot(&snap_dir)
            .unwrap()
            .is_some());
        drop(db);
        let _ = std::fs::remove_dir_all(log_dir.parent().unwrap());
    }
}
