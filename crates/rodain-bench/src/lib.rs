//! # rodain-bench — experiment harness
//!
//! One experiment module per figure/claim of the paper's evaluation (§4),
//! plus the ablations DESIGN.md calls out. Each experiment binary prints a
//! markdown table (the same rows/series the paper plots) and writes a CSV
//! under `experiments-out/`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2` | Fig 2(a)/(b): normal vs transient mode with true log writes |
//! | `fig3` | Fig 3(a)–(c): no-logs vs 1-node vs 2-node, disk off |
//! | `takeover` | §4: mirror takeover vs disk recovery unavailability |
//! | `saturation` | §4: saturation knee + abort-reason breakdown |
//! | `cc_ablation` | extension: OCC-DATI vs its ancestors under contention |
//! | `commit_path` | extension: commit-latency breakdown, group-commit sweep |
//! | `commit_pipe` | extension: batched log shipping vs one frame per commit |
//! | `shard_scale` | extension: throughput vs shard count on the sharded cluster |
//! | `cluster_scale` | extension: SHARDSCALE across node *processes* over TCP |
//! | `c10k` | extension: SATURATION — event-driven front-end vs thread-per-conn |
//! | `all_experiments` | everything above, sequentially |
//!
//! Pass `--quick` for a fast smoke run, `--reps N` / `--count N` to change
//! the measurement protocol (paper defaults: 20 repetitions of 10 000
//! transactions).

pub mod cluster;
pub mod experiments;
#[cfg(unix)]
pub mod frontend;
pub mod report;
