//! Transport errors.

use std::fmt;

/// Transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer is gone (socket closed, channel dropped, or link severed by
    /// failure injection). Crash-stop: the transport will never recover.
    Disconnected,
    /// An I/O error on the underlying socket.
    Io(std::io::ErrorKind),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Io(kind) => write!(f, "transport i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.kind())
    }
}
