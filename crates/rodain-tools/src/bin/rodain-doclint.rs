//! Documentation lint CI gate: broken intra-repo markdown links and a
//! METRICS.md catalog out of sync with the source are build failures.
//!
//! `cargo run -p rodain-tools --bin rodain-doclint [-- <repo-root>]`

use rodain_tools::doclint::{check_markdown_links, check_metrics_catalog};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let root = args.get(1).map_or(".", String::as_str);
    let root = Path::new(root);

    let mut violations = check_markdown_links(root);
    violations.extend(check_metrics_catalog(root));

    if violations.is_empty() {
        println!("doc-lint: ok (links resolve, metrics catalog in sync)");
        return;
    }
    for violation in &violations {
        eprintln!("doc-lint: {violation}");
    }
    eprintln!("doc-lint: {} violation(s)", violations.len());
    std::process::exit(1);
}
