//! Replay an off-line trace file against a *real* RODAIN engine — the
//! paper's "interface process, that reads the load descriptions from an
//! off-line generated test file".
//!
//! ```text
//! rodain-replay <trace-file> [--objects N] [--workers N]
//!               [--contingency-log DIR]      # sync disk commit path
//!               [--paced]                    # honour trace arrival times
//! ```
//!
//! Without `--contingency-log` the engine runs volatile (the "no logs"
//! configuration); pair it with a mirror process by embedding the library
//! instead (see the tcp_cluster example).

use rodain_db::{Rodain, TxnError, TxnOptions};
use rodain_tools::Args;
use rodain_workload::{NumberTranslationDb, Trace, TxnKind};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let Some(path) = args.positional.first() else {
        eprintln!(
            "usage: rodain-replay <trace-file> [--objects N] [--workers N] \
             [--contingency-log DIR] [--paced]"
        );
        return ExitCode::from(2);
    };
    let trace = match std::fs::File::open(path)
        .map_err(|e| e.to_string())
        .and_then(|f| Trace::read_from(std::io::BufReader::new(f)).map_err(|e| e.to_string()))
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let objects: u64 = args.get_or("objects", 30_000u64);
    let workers: usize = args.get_or("workers", 4usize);
    let paced = args.flags.contains("paced");

    let mut builder = Rodain::builder().workers(workers);
    if let Some(dir) = args.options.get("contingency-log") {
        builder = builder.contingency_log(dir);
    }
    let db = match builder.build() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("cannot start engine: {e}");
            return ExitCode::FAILURE;
        }
    };
    let schema = NumberTranslationDb::new(objects);
    schema.populate(&db.store());
    eprintln!(
        "replaying {} transactions over {} objects ({} workers, {}, {})",
        trace.len(),
        objects,
        workers,
        if paced { "paced" } else { "max speed" },
        match db.replication_mode() {
            rodain_db::ReplicationMode::Contingency => "contingency disk logging",
            _ => "volatile",
        }
    );

    let started = Instant::now();
    let mut pending = Vec::with_capacity(trace.len());
    for request in &trace.requests {
        if paced {
            let target = Duration::from_nanos(request.arrival_ns);
            if let Some(sleep) = target.checked_sub(started.elapsed()) {
                std::thread::sleep(sleep);
            }
        }
        let opts = match (request.kind, request.relative_deadline_ns) {
            (TxnKind::NonRealTime, _) => TxnOptions::non_real_time(),
            (_, Some(d)) => {
                TxnOptions::firm(Duration::from_nanos(d)).with_est_cost(Duration::from_micros(200))
            }
            (_, None) => TxnOptions::non_real_time(),
        };
        let objs = request.objects.clone();
        let seq = request.seq;
        let update = request.is_update();
        pending.push(db.submit(opts, move |ctx| {
            for &n in &objs {
                let oid = schema.object_id(n);
                if let Some(record) = ctx.read(oid)? {
                    if update {
                        ctx.write(oid, schema.updated_record(&record, seq))?;
                    }
                }
            }
            Ok(None)
        }));
    }

    let (mut committed, mut deadline, mut admission, mut other) = (0u64, 0u64, 0u64, 0u64);
    for fut in pending {
        match fut.wait() {
            Ok(_) => committed += 1,
            Err(TxnError::DeadlineExpired) => deadline += 1,
            Err(TxnError::AdmissionDenied | TxnError::Evicted) => admission += 1,
            Err(_) => other += 1,
        }
    }
    let elapsed = started.elapsed();
    let total = committed + deadline + admission + other;
    println!("elapsed:        {elapsed:?}");
    println!(
        "throughput:     {:.0} tps",
        total as f64 / elapsed.as_secs_f64()
    );
    println!("committed:      {committed}");
    println!(
        "missed:         {} ({:.2} %) — deadline {deadline} / overload {admission} / other {other}",
        total - committed,
        (total - committed) as f64 / total.max(1) as f64 * 100.0
    );
    println!("engine stats:   {:?}", db.stats());
    ExitCode::SUCCESS
}
