//! Cold-start recovery from the disk log.

use rodain_log::{replay_frames_into, LogStorage, RecoveryError, RecoveryStats, ReplayOptions};
use rodain_obs::Recorder;
use rodain_store::Store;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for the recovery entry points.
#[derive(Clone)]
pub struct RecoveryOptions {
    /// Replay partition workers. `1` replays inline on the calling thread;
    /// higher values hash-partition the redo stream by `ObjectId` across
    /// that many decode/install workers. Defaults to the machine's
    /// available parallelism, capped at 8.
    pub workers: usize,
    /// When set, recovery publishes `recovery_replay_ms`,
    /// `recovery_partitions`, `recovery_segments_scanned`,
    /// `recovery_torn_tail_bytes` and `recovery_tail_commits` on this
    /// recorder (see `METRICS.md`).
    pub recorder: Option<Recorder>,
}

impl std::fmt::Debug for RecoveryOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Recorder is an opaque handle; show presence only.
        f.debug_struct("RecoveryOptions")
            .field("workers", &self.workers)
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            workers: default_workers(),
            recorder: None,
        }
    }
}

impl RecoveryOptions {
    /// Options with an explicit worker count and no recorder.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        RecoveryOptions {
            workers,
            ..RecoveryOptions::default()
        }
    }
}

/// Default replay width: the machine's parallelism, capped at 8 — the
/// RECOVERY experiment shows scaling flattens past the partition count
/// where per-worker batches stop amortising channel traffic.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// The result of recovering a node's state from its disk log.
#[derive(Debug)]
pub struct ColdStart {
    /// The reconstructed database.
    pub store: Arc<Store>,
    /// Replay statistics (committed transactions, discarded tail, max CSN).
    pub stats: RecoveryStats,
    /// Whether the log ended in a torn tail (last record incomplete —
    /// normal after a crash mid-write; the affected transaction had not
    /// committed on *this* node).
    pub torn_tail: bool,
    /// Bytes dropped from the final segment by torn-tail truncation.
    pub torn_tail_bytes: u64,
    /// Log segment files the forward pass read.
    pub segments_scanned: u64,
    /// Partition workers the replay actually used.
    pub replay_workers: usize,
    /// Wall-clock time of the replay pass (excludes snapshot restore).
    pub elapsed: Duration,
}

/// Rebuild a store by a single forward pass over the log segments in
/// `dir` (paper §3: the pre-reordered log makes one pass sufficient).
///
/// This is the *slow* path the paper contrasts with mirror takeover: "If,
/// however, the Primary Node was alone and had to recover from the backup
/// on the disk …, the database would be down much longer." The TAKEOVER
/// experiment quantifies exactly this gap; the RECOVERY experiment measures
/// how partitioned replay narrows it.
pub fn recover_store_from_disk(dir: impl AsRef<Path>) -> Result<ColdStart, RecoveryError> {
    recover_store_from_disk_with(dir, &RecoveryOptions::default())
}

/// [`recover_store_from_disk`] with explicit [`RecoveryOptions`].
pub fn recover_store_from_disk_with(
    dir: impl AsRef<Path>,
    opts: &RecoveryOptions,
) -> Result<ColdStart, RecoveryError> {
    let store = Arc::new(Store::new());
    replay_dir(store, dir, opts)
}

/// Checkpoint-accelerated recovery: restore the newest intact snapshot in
/// `snapshot_dir` (if any) and replay the log in `log_dir` over it.
///
/// Replaying log segments whose commits predate the checkpoint is harmless
/// — installing an after-image at its original serialization timestamp over
/// the snapshot state is idempotent — so truncation lag never corrupts
/// recovery, it only costs replay time.
pub fn recover_with_checkpoint(
    log_dir: impl AsRef<Path>,
    snapshot_dir: impl AsRef<Path>,
) -> Result<ColdStart, RecoveryError> {
    recover_with_checkpoint_with(log_dir, snapshot_dir, &RecoveryOptions::default())
}

/// [`recover_with_checkpoint`] with explicit [`RecoveryOptions`].
pub fn recover_with_checkpoint_with(
    log_dir: impl AsRef<Path>,
    snapshot_dir: impl AsRef<Path>,
    opts: &RecoveryOptions,
) -> Result<ColdStart, RecoveryError> {
    let store = Arc::new(Store::new());
    if let Some((snapshot, _upto, _path)) =
        rodain_log::read_latest_snapshot(snapshot_dir.as_ref()).map_err(RecoveryError::Io)?
    {
        store.restore(&snapshot);
    }
    replay_dir(store, log_dir, opts)
}

/// The shared forward pass: partitioned frame replay over whatever state
/// `store` already holds, plus torn-tail accounting and metrics.
fn replay_dir(
    store: Arc<Store>,
    dir: impl AsRef<Path>,
    opts: &RecoveryOptions,
) -> Result<ColdStart, RecoveryError> {
    let started = Instant::now();
    let workers = opts.workers.max(1);
    let mut frames = LogStorage::scan_dir_frames(dir).map_err(RecoveryError::Io)?;
    let stats = replay_frames_into(&store, &mut frames, ReplayOptions::with_workers(workers))?;
    let cold = ColdStart {
        torn_tail: frames.torn_tail(),
        torn_tail_bytes: frames.torn_tail_bytes(),
        segments_scanned: frames.segments_scanned(),
        replay_workers: workers,
        elapsed: started.elapsed(),
        store,
        stats,
    };
    if let Some(rec) = &opts.recorder {
        rec.histogram("recovery_replay_ms")
            .record(cold.elapsed.as_millis() as u64);
        rec.gauge("recovery_partitions").set(workers as i64);
        rec.gauge("recovery_segments_scanned")
            .set(cold.segments_scanned as i64);
        rec.gauge("recovery_torn_tail_bytes")
            .set(cold.torn_tail_bytes as i64);
        // How much work replay did on top of the snapshot — the number an
        // operator watches to size CheckpointPolicy (OPERATIONS.md).
        rec.gauge("recovery_tail_commits")
            .set(cold.stats.committed as i64);
    }
    Ok(cold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_log::{LogRecord, LogStorageConfig, Lsn, RecordKind};
    use rodain_occ::Csn;
    use rodain_store::{ObjectId, Ts, TxnId, Value};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rodain-node-recovery-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cold_start_rebuilds_committed_state() {
        let dir = tmpdir("rebuild");
        {
            let mut storage = LogStorage::open(LogStorageConfig {
                fsync: false,
                ..LogStorageConfig::new(&dir)
            })
            .unwrap();
            // txn 1 committed, txn 2 in flight at crash.
            storage
                .append_batch(&[
                    LogRecord {
                        lsn: Lsn(1),
                        txn: TxnId(1),
                        kind: RecordKind::Write {
                            oid: ObjectId(10),
                            image: Value::Int(1),
                        },
                    },
                    LogRecord {
                        lsn: Lsn(2),
                        txn: TxnId(1),
                        kind: RecordKind::Commit {
                            csn: Csn(1),
                            ser_ts: Ts(500),
                            n_writes: 1,
                        },
                    },
                    LogRecord {
                        lsn: Lsn(3),
                        txn: TxnId(2),
                        kind: RecordKind::Write {
                            oid: ObjectId(11),
                            image: Value::Int(2),
                        },
                    },
                ])
                .unwrap();
            storage.flush().unwrap();
        }
        let cold = recover_store_from_disk(&dir).unwrap();
        assert_eq!(cold.stats.committed, 1);
        assert_eq!(cold.stats.discarded, 1);
        assert_eq!(cold.stats.max_csn, Csn(1));
        assert!(!cold.torn_tail);
        assert_eq!(cold.torn_tail_bytes, 0);
        assert_eq!(cold.segments_scanned, 1);
        assert_eq!(cold.store.read(ObjectId(10)).unwrap().0, Value::Int(1));
        assert_eq!(cold.store.read(ObjectId(11)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_recovers_empty_store() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let cold = recover_store_from_disk(&dir).unwrap();
        assert!(cold.store.is_empty());
        assert_eq!(cold.stats.records, 0);
        assert_eq!(cold.segments_scanned, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_cold_start_matches_sequential_and_reports_metrics() {
        let dir = tmpdir("parallel");
        {
            let mut storage = LogStorage::open(LogStorageConfig {
                fsync: false,
                ..LogStorageConfig::new(&dir)
            })
            .unwrap();
            let mut lsn = 0u64;
            let mut batch = Vec::new();
            for t in 1..=200u64 {
                for w in 0..3u64 {
                    lsn += 1;
                    batch.push(LogRecord {
                        lsn: Lsn(lsn),
                        txn: TxnId(t),
                        kind: RecordKind::Write {
                            oid: ObjectId(t * 3 + w),
                            image: Value::Int((t * 10 + w) as i64),
                        },
                    });
                }
                lsn += 1;
                batch.push(LogRecord {
                    lsn: Lsn(lsn),
                    txn: TxnId(t),
                    kind: RecordKind::Commit {
                        csn: Csn(t),
                        ser_ts: Ts(t * 100),
                        n_writes: 3,
                    },
                });
            }
            storage.append_batch(&batch).unwrap();
            storage.flush().unwrap();
        }
        let sequential =
            recover_store_from_disk_with(&dir, &RecoveryOptions::with_workers(1)).unwrap();
        let rec = Recorder::new();
        let parallel = recover_store_from_disk_with(
            &dir,
            &RecoveryOptions {
                workers: 4,
                recorder: Some(rec.clone()),
            },
        )
        .unwrap();
        assert_eq!(parallel.stats.committed, 200);
        assert_eq!(parallel.stats.images, sequential.stats.images);
        assert_eq!(parallel.stats.watermark, Csn(200));
        assert_eq!(parallel.replay_workers, 4);
        assert_eq!(
            parallel.store.snapshot(),
            sequential.store.snapshot(),
            "partitioned replay must reconstruct the same state"
        );
        let snap = rec.snapshot();
        assert_eq!(snap.gauge("recovery_partitions"), Some(4));
        assert_eq!(snap.gauge("recovery_segments_scanned"), Some(1));
        assert_eq!(snap.gauge("recovery_torn_tail_bytes"), Some(0));
        assert_eq!(snap.gauge("recovery_tail_commits"), Some(200));
        assert_eq!(snap.histogram("recovery_replay_ms").unwrap().count, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
