//! # rodain-obs — the unified observability layer
//!
//! The paper's headline claims are quantitative — commit latency without a
//! disk write on the critical path, near-instant takeover — so every other
//! crate in this workspace needs a way to *measure* its hot paths without
//! perturbing them. This crate is that layer: a dependency-free substrate
//! of lock-free metric primitives shared by the engine, the replication
//! machinery, the scheduler, the log writer and the chaos harness.
//!
//! Building blocks:
//!
//! * [`Counter`] / [`Gauge`] — single atomics behind cloneable handles;
//!   recording is one relaxed RMW, reading never blocks a writer.
//! * [`Histogram`] — a fixed-bucket **log-linear** histogram (16 linear
//!   sub-buckets per power of two, ≤ 6.25 % relative error) over `u64`
//!   values, all-atomic, sized for nanosecond latencies up to `u64::MAX`.
//!   Recording touches four relaxed atomics and never allocates.
//! * [`EventTrace`] — a bounded ring buffer of timestamped events for
//!   commit/failover timelines (mode changes, takeovers, gate timeouts);
//!   old events are dropped, the tracer never grows.
//! * [`Recorder`] — the cheap cloneable handle tying it together: metrics
//!   are registered by name once (cold path, mutex-protected) and recorded
//!   through the returned handles (hot path, lock-free).
//!
//! One snapshot type, [`MetricsSnapshot`], is consumed three ways: the
//! server's `STATS`/metrics protocol command ([`MetricsSnapshot::render_text`]
//! and [`MetricsSnapshot::render_json`]), Prometheus-style exposition
//! ([`MetricsSnapshot::render_prometheus`]) and percentile columns in
//! `rodain-bench` reports. The complete catalog of metric names the system
//! emits — with units and the source that moves each one — lives in the
//! repository's `METRICS.md`.
//!
//! ## Conventions
//!
//! * Durations are recorded in **nanoseconds** and the metric name ends in
//!   `_ns`; monotone counters end in `_total`; everything else is a gauge.
//! * Labels are baked into the registered name
//!   (`engine_info{protocol="occ-dati"}`) — registration happens once per
//!   process, so there is no label cardinality to manage at record time.
//!
//! ```
//! use rodain_obs::Recorder;
//!
//! let rec = Recorder::new();
//! let commits = rec.counter("txn_committed_total");
//! let wait = rec.histogram("engine_commit_wait_ns");
//! commits.inc();
//! wait.record(1_500);
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("txn_committed_total"), Some(1));
//! assert!(snap.render_prometheus().contains("engine_commit_wait_ns_count"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod metric;
mod registry;
mod render;
mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use metric::{Counter, Gauge};
pub use registry::{MetricsSnapshot, Recorder};
pub use trace::{EventTrace, TraceEvent};
