//! A storage decorator modelling a fixed device service time.
//!
//! The paper's prototype committed one transaction per disk rotation; its
//! experiments reason about log-device *service time*, not any particular
//! disk. [`ThrottledStorage`] makes that cost explicit and portable: every
//! flush pays a fixed wall-clock delay on top of the wrapped backend's real
//! work. Benchmarks (the SHARDSCALE sweep in `rodain-bench`) use it so the
//! log stream is a deterministic bottleneck on any hardware — N independent
//! shard streams then overlap their service times, while a single stream
//! serializes them.

use crate::record::LogRecord;
use crate::storage::{RecordIter, StorageBackend, StorageStats};
use rodain_occ::Csn;
use std::io;
use std::time::Duration;

/// A [`StorageBackend`] decorator that adds a fixed service delay to every
/// flush (the fsync — the operation group commit exists to amortize).
pub struct ThrottledStorage<S> {
    inner: S,
    flush_delay: Duration,
}

impl<S: StorageBackend> ThrottledStorage<S> {
    /// Wrap `inner`, charging `flush_delay` of wall time per flush.
    #[must_use]
    pub fn new(inner: S, flush_delay: Duration) -> Self {
        ThrottledStorage { inner, flush_delay }
    }
}

impl<S: StorageBackend> StorageBackend for ThrottledStorage<S> {
    fn append_batch(&mut self, records: &[LogRecord]) -> io::Result<()> {
        self.inner.append_batch(records)
    }

    fn flush(&mut self) -> io::Result<()> {
        std::thread::sleep(self.flush_delay);
        self.inner.flush()
    }

    fn truncate_before(&mut self, upto: Csn) -> io::Result<usize> {
        self.inner.truncate_before(upto)
    }

    fn truncate_before_retaining(&mut self, upto: Csn, retain: usize) -> io::Result<usize> {
        self.inner.truncate_before_retaining(upto, retain)
    }

    fn iter(&mut self) -> io::Result<RecordIter> {
        self.inner.iter()
    }

    fn stats(&self) -> StorageStats {
        self.inner.stats()
    }
}

impl<S: StorageBackend> std::fmt::Debug for ThrottledStorage<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThrottledStorage")
            .field("flush_delay", &self.flush_delay)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Lsn, RecordKind};
    use crate::storage::{LogStorage, LogStorageConfig};
    use rodain_store::{Ts, TxnId};
    use std::time::Instant;

    #[test]
    fn flush_pays_the_service_delay_and_data_survives() {
        let dir = std::env::temp_dir().join(format!(
            "rodain-throttle-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let storage = LogStorage::open(LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        })
        .unwrap();
        let mut throttled = ThrottledStorage::new(storage, Duration::from_millis(5));
        throttled
            .append_batch(&[LogRecord {
                lsn: Lsn(1),
                txn: TxnId(1),
                kind: RecordKind::Commit {
                    csn: Csn(1),
                    ser_ts: Ts(1),
                    n_writes: 0,
                },
            }])
            .unwrap();
        let started = Instant::now();
        throttled.flush().unwrap();
        assert!(started.elapsed() >= Duration::from_millis(5));
        let got: Vec<_> = throttled.iter().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
