//! End-to-end tests of the User Request Interpreter: TCP clients driving a
//! live engine through the service protocol.

use rodain::db::Rodain;
use rodain::server::{Client, Outcome, RequestOp, Server};
use rodain::workload::NumberTranslationDb;
use rodain::{ObjectId, Value};
use std::net::TcpListener;
use std::sync::Arc;

fn start_service(objects: u64) -> (rodain::server::ServerHandle, NumberTranslationDb) {
    let db = Arc::new(Rodain::builder().workers(4).build().unwrap());
    let schema = NumberTranslationDb::new(objects);
    schema.populate(&db.store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = Server::new(db, schema).start(listener).unwrap();
    (handle, schema)
}

#[test]
fn translate_and_provision_over_tcp() {
    let (server, _schema) = start_service(1_000);
    let mut client = Client::connect(server.addr()).unwrap();

    // Translate: the initial routing address.
    match client.translate(42, 50).unwrap() {
        Outcome::Ok(Value::Text(address)) => assert!(address.starts_with("+358-9-")),
        other => panic!("{other:?}"),
    }

    // Provision: re-point the number; the translation count comes back.
    match client.provision(42, "+358-40-0000042", 150).unwrap() {
        Outcome::Ok(Value::Int(count)) => assert_eq!(count, 1),
        other => panic!("{other:?}"),
    }

    // The translation now returns the new address.
    match client.translate(42, 50).unwrap() {
        Outcome::Ok(Value::Text(address)) => assert_eq!(address, "+358-40-0000042"),
        other => panic!("{other:?}"),
    }

    // Unknown numbers: the schema maps modulo the database size, so use a
    // generic Get on a truly absent object instead.
    match client.get(ObjectId(999_999), 50).unwrap() {
        Outcome::NotFound => {}
        other => panic!("{other:?}"),
    }

    let stats = server.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.ok, 3);
    assert_eq!(stats.not_found, 1);
    server.shutdown();
}

#[test]
fn generic_get_put_roundtrip() {
    let (server, _schema) = start_service(10);
    let mut client = Client::connect(server.addr()).unwrap();
    let payload = Value::Record(vec![Value::Int(7), Value::Text("blob".into())]);
    assert_eq!(
        client.put(ObjectId(5_000), payload.clone(), 100).unwrap(),
        Outcome::Ok(Value::Null)
    );
    assert_eq!(
        client.get(ObjectId(5_000), 100).unwrap(),
        Outcome::Ok(payload)
    );
    server.shutdown();
}

#[test]
fn pipelined_requests_return_in_order() {
    let (server, _schema) = start_service(100);
    let mut client = Client::connect(server.addr()).unwrap();
    let burst: Vec<(u32, RequestOp)> = (0..50u64)
        .map(|n| (100u32, RequestOp::Translate { number: n }))
        .collect();
    let outcomes = client.pipeline(burst).unwrap();
    assert_eq!(outcomes.len(), 50);
    assert!(outcomes.iter().all(|o| matches!(o, Outcome::Ok(_))));
    server.shutdown();
}

#[test]
fn deferred_commits_resolve_out_of_band() {
    use rodain::db::DurabilityTier;
    let (server, _schema) = start_service(1_000);
    let mut client = Client::connect(server.addr()).unwrap();

    // Submit a burst of deferred updates; the connection is not blocked on
    // their durability gates.
    let ids: Vec<u64> = (0..20u64)
        .map(|n| {
            client
                .submit_deferred(
                    500,
                    DurabilityTier::Volatile,
                    RequestOp::Provision {
                        number: n,
                        address: format!("+358-44-{n:07}"),
                    },
                )
                .unwrap()
        })
        .collect();

    // A blocking request interleaves with the drain: correlation is by id,
    // so the answer arrives even while durable frames are outstanding.
    match client.translate(999, 500).unwrap() {
        Outcome::Ok(Value::Text(_)) => {}
        other => panic!("{other:?}"),
    }

    // Every deferred commit resolves with its achieved tier and CSN. The
    // engine runs volatile here, so Volatile is both requested and
    // achieved.
    for id in ids {
        match client.wait_durable(id).unwrap() {
            Outcome::CommitDurable { tier, csn, value } => {
                assert_eq!(tier, DurabilityTier::Volatile);
                assert!(csn > 0);
                assert_eq!(value, Value::Int(1));
            }
            other => panic!("{other:?}"),
        }
    }

    // The durable frames count as successes in the server's stats.
    assert_eq!(server.stats().ok, 21);
    server.shutdown();
}

#[test]
fn concurrent_clients_provision_disjoint_numbers() {
    let (server, _schema) = start_service(1_000);
    let addr = server.addr();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for i in 0..25u64 {
                let number = t * 250 + i;
                match client
                    .provision(number, format!("+358-50-{number:07}"), 500)
                    .unwrap()
                {
                    Outcome::Ok(_) | Outcome::Overloaded | Outcome::MissDeadline => {}
                    other => panic!("{other:?}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.stats().connections, 4);
    assert_eq!(server.stats().requests, 100);
    server.shutdown();
}

#[test]
fn stats_request_reports_engine_counters() {
    let (server, _schema) = start_service(100);
    let mut client = Client::connect(server.addr()).unwrap();
    client.translate(1, 100).unwrap();
    client.translate(2, 100).unwrap();
    match client.stats().unwrap() {
        Outcome::Ok(Value::Record(fields)) => {
            assert_eq!(fields.len(), 4);
            let committed = fields[0].as_int().unwrap();
            assert!(committed >= 2, "committed {committed}");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

/// Count recorded in a `hist <name> count=… …` line of the text rendering.
fn hist_count(text: &str, name: &str) -> u64 {
    let prefix = format!("hist {name} count=");
    text.lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no histogram {name} in:\n{text}"))
}

/// Value of a `counter <name> …` line of the text rendering.
fn counter_value(text: &str, name: &str) -> u64 {
    let prefix = format!("counter {name} ");
    text.lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no counter {name} in:\n{text}"))
}

/// Acceptance: after a 1 000-transaction run against a mirrored pair, the
/// Metrics op returns commit-wait and replication-lag histograms with
/// non-zero counts, in all three formats, and the compact Stats record
/// agrees with the committed-transaction counter.
#[test]
fn metrics_request_reports_commit_path_histograms() {
    use rodain::net::InProcTransport;
    use rodain::node::{MirrorConfig, MirrorNode};
    use rodain::server::MetricsFormat;
    use std::time::Duration;

    // Mirror side: a hot stand-by applying the shipped log.
    let (primary_side, mirror_side) = InProcTransport::pair();
    let mirror_store = Arc::new(rodain::store::Store::new());
    let mut mirror = MirrorNode::new(
        mirror_store,
        Arc::new(mirror_side),
        None,
        MirrorConfig {
            poll_interval: Duration::from_millis(1),
            heartbeat_interval: Duration::from_millis(10),
            peer_timeout: Duration::from_secs(60),
            suspect_rounds: 1_000,
            snapshot_dir: None,
            takeover_workers: 2,
        },
    );
    let mirror_shutdown = mirror.shutdown_handle();
    let mirror_thread = std::thread::spawn(move || {
        mirror.join().expect("mirror join");
        mirror.run()
    });

    // Primary side: engine + URI front-end.
    let db = Arc::new(
        Rodain::builder()
            .workers(4)
            .mirror(
                Arc::new(primary_side),
                rodain::db::MirrorLossPolicy::ContinueVolatile,
            )
            .build()
            .unwrap(),
    );
    let schema = NumberTranslationDb::new(1_000);
    schema.populate(&db.store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = Server::new(db, schema).start(listener).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // 1 000 update transactions, pipelined in bursts.
    for chunk in 0..10 {
        let burst: Vec<_> = (0..100)
            .map(|i| {
                (
                    2_000u32,
                    RequestOp::Provision {
                        number: chunk * 100 + i,
                        address: format!("+358-50-{i:07}"),
                    },
                )
            })
            .collect();
        for outcome in client.pipeline(burst).unwrap() {
            assert!(matches!(outcome, Outcome::Ok(_)), "{outcome:?}");
        }
    }

    // Text format: commit-gate wait and log-ship RTT both observed.
    let text = match client.metrics(MetricsFormat::Text).unwrap() {
        Outcome::Ok(Value::Text(text)) => text,
        other => panic!("{other:?}"),
    };
    let commit_waits = hist_count(&text, "engine_commit_wait_ns");
    let rtts = hist_count(&text, "mirror_ship_rtt_ns");
    assert!(commit_waits >= 1_000, "commit waits {commit_waits}");
    assert!(rtts >= 1, "ship RTTs {rtts}");

    // The compact Stats record and the full snapshot agree (no traffic is
    // in flight, so both views are quiescent).
    let committed = counter_value(&text, "txn_committed_total");
    match client.stats().unwrap() {
        Outcome::Ok(Value::Record(fields)) => {
            assert_eq!(fields[0].as_int().unwrap() as u64, committed);
        }
        other => panic!("{other:?}"),
    }

    // JSON and Prometheus renderings carry the same histograms.
    match client.metrics(MetricsFormat::Json).unwrap() {
        Outcome::Ok(Value::Text(json)) => {
            assert!(json.contains("\"engine_commit_wait_ns\""), "{json}");
            assert!(json.contains("\"mirror_ship_rtt_ns\""), "{json}");
        }
        other => panic!("{other:?}"),
    }
    match client.metrics(MetricsFormat::Prometheus).unwrap() {
        Outcome::Ok(Value::Text(prom)) => {
            assert!(
                prom.contains("# TYPE engine_commit_wait_ns histogram"),
                "{prom}"
            );
            assert!(prom.contains("engine_commit_wait_ns_bucket"), "{prom}");
        }
        other => panic!("{other:?}"),
    }

    server.shutdown();
    mirror_shutdown.store(true, std::sync::atomic::Ordering::Release);
    let _ = mirror_thread.join();
}

#[test]
fn non_real_time_requests_use_deadline_zero() {
    let (server, _schema) = start_service(100);
    let mut client = Client::connect(server.addr()).unwrap();
    // deadline_ms = 0 → non-real-time class; must still succeed.
    match client.translate(5, 0).unwrap() {
        Outcome::Ok(Value::Text(_)) => {}
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn protocol_violation_drops_only_that_connection() {
    let (server, _schema) = start_service(100);
    // A garbage client…
    {
        use std::io::Write;
        let mut bad = std::net::TcpStream::connect(server.addr()).unwrap();
        bad.write_all(&[5, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF])
            .unwrap();
        // Server drops the connection; nothing to assert beyond no panic.
    }
    // …does not affect a well-behaved one.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(matches!(
        client.translate(1, 100).unwrap(),
        Outcome::Ok(Value::Text(_))
    ));
    server.shutdown();
}

#[test]
fn checkpoint_request_installs_snapshot_or_reports_unconfigured() {
    use rodain::db::CheckpointPolicy;

    // Unconfigured node: the op fails loudly instead of guessing a dir.
    let (server, _schema) = start_service(10);
    let mut client = Client::connect(server.addr()).unwrap();
    match client.checkpoint().unwrap() {
        Outcome::Failed(reason) => assert!(reason.contains("not configured"), "{reason}"),
        other => panic!("{other:?}"),
    }
    server.shutdown();

    // Configured node: the op installs a snapshot and returns its path.
    let base = std::env::temp_dir().join(format!("rodain-srv-cp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let db = Arc::new(
        Rodain::builder()
            .workers(2)
            .contingency_log(base.join("log"))
            .checkpoints(base.join("snapshots"), CheckpointPolicy::default())
            .build()
            .unwrap(),
    );
    let schema = NumberTranslationDb::new(100);
    schema.populate(&db.store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = Server::new(db, schema).start(listener).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for n in 0..10u64 {
        match client.provision(n, format!("+358-40-{n:07}"), 500).unwrap() {
            Outcome::Ok(_) => {}
            other => panic!("{other:?}"),
        }
    }
    match client.checkpoint().unwrap() {
        Outcome::Ok(Value::Text(path)) => {
            assert!(std::path::Path::new(&path).exists(), "missing {path}");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn sharded_backend_serves_and_merges_metrics() {
    use rodain::server::MetricsFormat;
    use rodain::shard::ShardedRodain;

    let cluster = Arc::new(
        ShardedRodain::builder()
            .shards(4)
            .workers_per_shard(2)
            .build()
            .unwrap(),
    );
    let schema = NumberTranslationDb::new(500);
    for n in 0..schema.objects {
        cluster.load_initial(schema.object_id(n), schema.initial_record(n));
    }
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = Server::sharded(Arc::clone(&cluster), schema)
        .start(listener)
        .unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    // Requests spread across all four shards through one front-end.
    for n in 0..40u64 {
        match client.translate(n, 200).unwrap() {
            Outcome::Ok(Value::Text(_)) => {}
            other => panic!("{other:?}"),
        }
    }
    match client.provision(7, "+358-40-7777777", 300).unwrap() {
        Outcome::Ok(Value::Int(count)) => assert_eq!(count, 1),
        other => panic!("{other:?}"),
    }

    // Stats are cluster-wide totals...
    match client.stats().unwrap() {
        Outcome::Ok(Value::Record(fields)) => match fields.as_slice() {
            [Value::Int(committed), ..] => assert!(*committed >= 41, "committed {committed}"),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
    // ...and the metrics scrape carries the per-shard label dimension.
    match client.metrics(MetricsFormat::Prometheus).unwrap() {
        Outcome::Ok(Value::Text(body)) => {
            for shard in 0..4 {
                assert!(
                    body.contains(&format!("shard=\"{shard}\"")),
                    "missing shard {shard} label in scrape"
                );
            }
        }
        other => panic!("{other:?}"),
    }

    // Every shard saw traffic: the workload spreads over the hash space.
    let per_shard = cluster.shard_stats();
    assert_eq!(per_shard.len(), 4);
    for (i, stats) in per_shard.iter().enumerate() {
        assert!(
            stats.expect("shard attached").committed > 0,
            "idle shard {i}"
        );
    }
    server.shutdown();
}

/// Acceptance (DESIGN.md §17): responses on one connection are correlated
/// by id, not by arrival order. A slow request — a `Checkpoint` snapshot
/// of a 100 000-object store, which occupies one front-end worker for its
/// full duration — is pipelined first, followed by 32 cheap reads served
/// by the other worker: the fast answers must overtake the slow one on
/// the wire.
#[test]
fn pipelined_responses_overtake_a_slow_request() {
    use rodain::db::CheckpointPolicy;
    use rodain::server::protocol::{read_frame, write_frame};
    use rodain::server::{FrontEndConfig, Request, Response};
    use std::io::Write;

    let base = std::env::temp_dir().join(format!("rodain-ooo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let db = Arc::new(
        Rodain::builder()
            .workers(4)
            .contingency_log(base.join("log"))
            .checkpoints(base.join("snapshots"), CheckpointPolicy::default())
            .build()
            .unwrap(),
    );
    let schema = NumberTranslationDb::new(100_000);
    schema.populate(&db.store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let config = FrontEndConfig {
        workers: 2,
        ..FrontEndConfig::default()
    };
    let server = Server::new(db, schema).start_with(listener, config).unwrap();

    // Raw socket so the observed order is the wire order.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut batch = Vec::new();
    let slow = Request::new(1, 0, RequestOp::Checkpoint);
    write_frame(&mut batch, &slow.encode()).unwrap();
    for id in 2..=33u64 {
        let fast = Request::new(id, 10_000, RequestOp::Translate { number: id });
        write_frame(&mut batch, &fast.encode()).unwrap();
    }
    stream.write_all(&batch).unwrap();

    let mut order = Vec::new();
    for _ in 0..33 {
        let response = Response::decode(read_frame(&mut stream).unwrap()).unwrap();
        assert!(
            matches!(response.outcome, Outcome::Ok(_)),
            "id {} gave {:?}",
            response.id,
            response.outcome
        );
        order.push(response.id);
    }
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (1..=33u64).collect::<Vec<_>>(), "{order:?}");
    let slow_pos = order.iter().position(|&id| id == 1).unwrap();
    assert!(
        slow_pos >= 8,
        "slow checkpoint response was overtaken by only {slow_pos} \
         fast responses: {order:?}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}

/// Regression (DESIGN.md §17): when the per-connection caps pause reads,
/// request bytes already buffered must survive the interest re-arm — a
/// 50-request burst through caps of 2 must produce exactly one response
/// per id, and the pause itself must be observable in the stats.
#[test]
fn backpressure_pause_preserves_buffered_requests() {
    use rodain::server::protocol::{read_frame, write_frame};
    use rodain::server::{FrontEndConfig, Request, Response};
    use std::io::Write;

    let db = Arc::new(Rodain::builder().workers(2).build().unwrap());
    let schema = NumberTranslationDb::new(100);
    schema.populate(&db.store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let config = FrontEndConfig {
        workers: 1,
        max_inflight_per_conn: 2,
        reply_queue_cap: 2,
        ..FrontEndConfig::default()
    };
    let server = Server::new(db, schema).start_with(listener, config).unwrap();

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut batch = Vec::new();
    for id in 1..=50u64 {
        let request = Request::new(id, 10_000, RequestOp::Translate { number: id });
        write_frame(&mut batch, &request.encode()).unwrap();
    }
    stream.write_all(&batch).unwrap();

    let mut seen = std::collections::HashSet::new();
    for _ in 0..50 {
        let response = Response::decode(read_frame(&mut stream).unwrap()).unwrap();
        assert!(
            seen.insert(response.id),
            "duplicate response for id {}",
            response.id
        );
    }
    assert!((1..=50u64).all(|id| seen.contains(&id)));

    let stats = server.stats();
    assert!(
        stats.backpressure_pauses >= 1,
        "caps of 2 against a 50-request burst never paused the connection"
    );
    server.shutdown();
}

/// The global admission gate answers `Overloaded` from the frame header
/// alone: with a cap of one in-flight request, a pipelined burst gets a
/// mix of `Ok` (admitted) and `Overloaded` (gated) — and every id is
/// still answered exactly once.
#[test]
fn global_admission_gate_rejects_with_overloaded() {
    use rodain::server::protocol::{read_frame, write_frame};
    use rodain::server::{FrontEndConfig, Request, Response};
    use std::io::Write;

    let db = Arc::new(Rodain::builder().workers(2).build().unwrap());
    let schema = NumberTranslationDb::new(100);
    schema.populate(&db.store());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let config = FrontEndConfig {
        workers: 1,
        max_global_inflight: 1,
        ..FrontEndConfig::default()
    };
    let server = Server::new(db, schema).start_with(listener, config).unwrap();

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut batch = Vec::new();
    for id in 1..=20u64 {
        let request = Request::new(id, 10_000, RequestOp::Translate { number: id });
        write_frame(&mut batch, &request.encode()).unwrap();
    }
    stream.write_all(&batch).unwrap();

    let mut ok = 0;
    let mut overloaded = 0;
    let mut seen = std::collections::HashSet::new();
    for _ in 0..20 {
        let response = Response::decode(read_frame(&mut stream).unwrap()).unwrap();
        assert!(seen.insert(response.id), "duplicate id {}", response.id);
        match response.outcome {
            Outcome::Ok(_) => ok += 1,
            Outcome::Overloaded => overloaded += 1,
            other => panic!("id {} gave {other:?}", response.id),
        }
    }
    assert!(ok >= 1, "nothing was admitted");
    assert!(
        overloaded >= 1,
        "a burst of 20 against a global cap of 1 was never gated"
    );
    server.shutdown();
}
