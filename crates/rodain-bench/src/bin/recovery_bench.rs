//! RECOVERY: cold-start and takeover replay time vs log length at
//! 1/2/4/8 replay workers (partitioned redo replay, `DESIGN.md` §13).
//!
//! Writes `BENCH_RECOVERY.json` into the output directory and exits
//! non-zero when parallel replay stops scaling: on hosts exposing at
//! least 4 cores, the 8-worker cold start over the longest log must
//! finish in at most half the single-worker wall time. Hosts with fewer
//! cores print the report but skip the gate — replay workers contending
//! for one core cannot demonstrate scaling either way.
//!
//! `cargo run -p rodain-bench --release --bin recovery_bench [-- --quick]`

use rodain_bench::experiments::{recovery, SweepOptions};
use rodain_bench::report::out_dir;

fn main() {
    let report = recovery(SweepOptions::from_args());
    report.table().print();

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("BENCH_RECOVERY.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_RECOVERY.json");
    println!("json: {path:?}");

    let speedup = report.cold_start_speedup_8();
    println!(
        "cold-start speedup (8 workers vs 1, longest log): {speedup:.2}x \
         on a {}-core host",
        report.host_parallelism
    );
    if report.host_parallelism < 4 {
        eprintln!(
            "RECOVERY gate skipped: host exposes {} cores (< 4), parallel \
             replay cannot scale here",
            report.host_parallelism
        );
        return;
    }
    if speedup < 2.0 {
        eprintln!(
            "RECOVERY regression: 8-worker cold start must be <= 0.5x the \
             single-worker wall time (need speedup >= 2.0, got {speedup:.2})"
        );
        std::process::exit(1);
    }
}
