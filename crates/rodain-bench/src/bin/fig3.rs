//! Regenerate Fig 3: optimal (no logs) vs single node vs two nodes with
//! disk writing turned off, at write ratios 0 % / 20 % / 80 %.
//!
//! `cargo run -p rodain-bench --release --bin fig3 [-- --write-ratio 0.2] [--quick]`

use rodain_bench::experiments::{fig3, SweepOptions};

fn main() {
    let opts = SweepOptions::from_args();
    let ratio_arg: Option<f64> = std::env::args()
        .skip_while(|a| a != "--write-ratio")
        .nth(1)
        .and_then(|s| s.parse().ok());
    let ratios: Vec<(char, f64)> = match ratio_arg {
        Some(r) => vec![('x', r)],
        None => vec![('a', 0.0), ('b', 0.2), ('c', 0.8)],
    };
    for (panel, ratio) in ratios {
        let table = fig3(ratio, opts);
        table.print();
        let stem = format!("fig3{panel}");
        println!("csv: {:?}\n", table.write_csv(&stem).unwrap());
    }
}
