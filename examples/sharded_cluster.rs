//! The multi-node placement layer end to end: two cluster nodes behind
//! real TCP sockets, a networked 2PC coordinator driving mixed traffic,
//! and an online shard migration — with the total balance conserved
//! throughout.
//!
//! Run with: `cargo run --example sharded_cluster`
//!
//! The point of DESIGN.md §16: the sharding layer of §11 seated across
//! *processes*. Each node owns a subset of shards behind a client-plane
//! server and a peer-plane server; an epoch-numbered shard map names the
//! owners; cross-shard transfers run the durable-intent 2PC over the
//! wire; and a shard moves between live nodes (snapshot ship + log-tail
//! catch-up + epoch-bumped cutover) without stopping traffic.

use rodain::cluster::{ClusterClient, ClusterCoordinator, ClusterNode, NodeConfig};
use rodain::server::Outcome;
use rodain::shard::{ShardMap, ShardOp, ShardOwner, ShardRouter};
use rodain::workload::NumberTranslationDb;
use rodain::{ObjectId, Value};
use std::net::TcpListener;

const SHARDS: usize = 4;
const ACCOUNTS: u64 = 64;
const OPENING_BALANCE: i64 = 100;

fn start_node(own: Vec<usize>, tag: &str) -> ClusterNode {
    let data = std::env::temp_dir().join(format!(
        "rodain-example-cluster-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&data);
    let cfg = NodeConfig::new(SHARDS, own, data);
    let client = TcpListener::bind("127.0.0.1:0").expect("bind client plane");
    let peer = TcpListener::bind("127.0.0.1:0").expect("bind peer plane");
    ClusterNode::start(cfg, client, peer).expect("start node")
}

fn owner_of(node: &ClusterNode) -> ShardOwner {
    ShardOwner {
        client_addr: node.client_addr().to_string(),
        peer_addr: node.peer_addr().to_string(),
    }
}

fn total_balance(client: &mut ClusterClient) -> i64 {
    (0..ACCOUNTS)
        .map(|i| match client.get(ObjectId(i)).expect("audit read") {
            Outcome::Ok(Value::Int(v)) => v,
            _ => 0,
        })
        .sum()
}

fn main() {
    // ── Phase 1: two nodes behind real sockets, one map ──────────────────
    println!("phase 1: two nodes on loopback, shards 0-1 on A, 2-3 on B");
    let node_a = start_node(vec![0, 1], "a");
    let node_b = start_node(vec![2, 3], "b");
    let coordinator =
        ClusterCoordinator::connect(&node_a.peer_addr().to_string()).expect("coordinator");
    let map = ShardMap {
        epoch: 2,
        owners: vec![
            owner_of(&node_a),
            owner_of(&node_a),
            owner_of(&node_b),
            owner_of(&node_b),
        ],
    };
    let addrs = vec![
        node_a.peer_addr().to_string(),
        node_b.peer_addr().to_string(),
    ];
    coordinator.broadcast_map(&map, &addrs).expect("install map");
    println!(
        "  A client={} peer={}",
        node_a.client_addr(),
        node_a.peer_addr()
    );
    println!(
        "  B client={} peer={}",
        node_b.client_addr(),
        node_b.peer_addr()
    );

    for i in 0..ACCOUNTS {
        coordinator
            .execute(vec![ShardOp::Put {
                oid: ObjectId(i),
                value: Value::Int(OPENING_BALANCE),
            }])
            .expect("seed balance");
    }
    let mut client = ClusterClient::connect(
        &node_a.client_addr().to_string(),
        NumberTranslationDb::new(ACCOUNTS),
    )
    .expect("routing client");
    let opening_total = total_balance(&mut client);
    println!("  opening total balance: {opening_total}");

    // ── Phase 2: mixed traffic over the wire ─────────────────────────────
    // Single-shard groups take the one-node fast path; groups spanning
    // shards run the durable-intent 2PC: intents on each participant,
    // decision record on the coordinator shard, then apply + cleanup.
    println!("phase 2: mixed single-shard and cross-shard traffic");
    let router = ShardRouter::new(SHARDS);
    let mut singles = 0u64;
    let mut transfers = 0u64;
    for k in 0..200u64 {
        let from = ObjectId(k % ACCOUNTS);
        let to = ObjectId((k * 7 + 3) % ACCOUNTS);
        if k % 3 == 0 && router.route(from) != router.route(to) {
            coordinator
                .execute(vec![
                    ShardOp::Add {
                        oid: from,
                        delta: -5,
                    },
                    ShardOp::Add { oid: to, delta: 5 },
                ])
                .expect("cross-shard transfer");
            transfers += 1;
        } else {
            coordinator
                .execute(vec![ShardOp::Add { oid: from, delta: 0 }])
                .expect("single-shard touch");
            singles += 1;
        }
    }
    println!("  {singles} single-shard commits, {transfers} networked 2PC transfers");
    assert_eq!(total_balance(&mut client), opening_total);

    // ── Phase 3: migrate shard 1 from A to B, online ─────────────────────
    println!("phase 3: migrate shard 1 from node A to node B (online)");
    let report = coordinator
        .migrate_shard(1, owner_of(&node_b))
        .expect("migrate shard 1");
    println!(
        "  snapshot upto CSN {}, {} catch-up commits in {} rounds, epoch {} installed",
        report.snapshot_upto, report.catchup_commits, report.rounds, report.final_epoch
    );

    // The routing client's map is stale (epoch 2): its next touch of
    // shard 1 is answered WrongShard, it refetches the map, and lands on
    // node B — the caller never sees the redirect.
    let on_shard_1 = (0..ACCOUNTS)
        .map(ObjectId)
        .find(|oid| router.route(*oid) == 1)
        .expect("an account on shard 1");
    match client.get(on_shard_1).expect("read moved account") {
        Outcome::Ok(Value::Int(v)) => {
            println!("  account {} read from its new home: {v}", on_shard_1.0);
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    println!("  client converged on epoch {}", client.map().epoch);

    // ── Phase 4: post-migration traffic, invariant intact ────────────────
    println!("phase 4: transfers across the migrated cluster");
    for k in 0..50u64 {
        let from = ObjectId((k * 5) % ACCOUNTS);
        let to = ObjectId((k * 11 + 1) % ACCOUNTS);
        if router.route(from) == router.route(to) {
            continue;
        }
        coordinator
            .execute(vec![
                ShardOp::Add {
                    oid: from,
                    delta: -1,
                },
                ShardOp::Add { oid: to, delta: 1 },
            ])
            .expect("post-migration transfer");
    }
    let _ = coordinator.resolve_all();
    assert_eq!(total_balance(&mut client), opening_total);
    println!("  total balance conserved: {opening_total}");

    // ── Phase 5: scrape the placement metrics off node B ─────────────────
    println!("phase 5: cluster metrics from node B");
    let mut raw = rodain::server::Client::connect(node_b.client_addr()).expect("metrics client");
    if let Outcome::Ok(Value::Text(prom)) = raw
        .metrics(rodain::server::MetricsFormat::Prometheus)
        .expect("scrape")
    {
        for line in prom.lines().filter(|l| {
            l.starts_with("cluster_shard_map_epoch") || l.starts_with("cluster_migrations_total")
        }) {
            println!("  {line}");
        }
    }

    node_a.shutdown();
    node_b.shutdown();
    println!("done.");
}
