//! Test-session specification.

use serde::{Deserialize, Serialize};

/// How transactions pick the objects they touch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Uniform over the whole database (the paper's service numbers are
    /// equally likely).
    Uniform,
    /// A fraction `hot_fraction` of the database receives `hot_probability`
    /// of the accesses — an extension for contention studies (the CCABLATE
    /// experiment uses it to make protocol differences visible).
    Hotspot {
        /// Fraction of objects that are hot (0, 1].
        hot_fraction: f64,
        /// Probability an access goes to the hot set [0, 1].
        hot_probability: f64,
    },
    /// Zipf-distributed ranks: object `0` is the most popular and rank
    /// `k`'s access probability decays as `1/(k+1)^theta`. Sampled with
    /// the YCSB/Gray et al. closed-form method, so generation stays O(1)
    /// per access after an O(db) precomputation. Skewed popularity is
    /// what makes shard routing interesting (SHARDSCALE drives each
    /// shard with it) — a uniform workload never produces a hot shard.
    Zipfian {
        /// Skew parameter in (0, 1): 0⁺ approaches uniform, 0.99 is the
        /// classic YCSB "zipfian" default.
        theta: f64,
    },
}

/// One entry of the transaction mix (extension point beyond the paper's
/// two-transaction mix; unused probability mass goes to the read-only
/// service-provision transaction).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TxnMixEntry {
    /// Share of arrivals [0, 1].
    pub share: f64,
    /// Objects read.
    pub reads: u32,
    /// Objects updated (subset of the reads; 0 = read-only).
    pub updates: u32,
    /// Relative firm deadline in milliseconds (`None` = non-real-time).
    pub deadline_ms: Option<u64>,
}

/// All knobs of one test session.
///
/// Defaults follow the paper's experimental study (§4) under the OCR
/// interpretations listed in DESIGN.md §1: 30 000 objects, 10 000
/// transactions per session, firm deadlines of 50 ms (read) / 150 ms
/// (write), a variable read/update mix, uniform access.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Database size in objects.
    pub db_objects: u64,
    /// Transactions in the session.
    pub count: u64,
    /// Poisson arrival rate, transactions per second.
    pub arrival_rate_tps: f64,
    /// Fraction of arrivals that are update transactions [0, 1].
    pub write_fraction: f64,
    /// Objects read by the read-only service-provision transaction.
    pub reads_per_read_txn: u32,
    /// Objects read by the update transaction (all of them are updated:
    /// "reads a few objects, updates them and then commits").
    pub reads_per_update_txn: u32,
    /// Relative firm deadline of read-only transactions (ms).
    pub read_deadline_ms: u64,
    /// Relative firm deadline of update transactions (ms).
    pub write_deadline_ms: u64,
    /// Fraction of arrivals that are non-real-time maintenance
    /// transactions (no deadline; 0 in the paper's figures).
    pub non_rt_fraction: f64,
    /// Relative-deadline jitter: each transaction's deadline is scaled by
    /// a uniform factor in `[1-j, 1+j]`. The paper's workload uses fixed
    /// per-class deadlines (j = 0); contention studies (CCABLATE) use
    /// jitter so that EDF produces cross-preemption between update
    /// transactions and concurrency-control conflicts become possible.
    pub deadline_jitter: f64,
    /// Object selection pattern.
    pub access: AccessPattern,
    /// RNG seed: same spec + same seed ⇒ identical trace.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            db_objects: 30_000,
            count: 10_000,
            arrival_rate_tps: 200.0,
            write_fraction: 0.2,
            reads_per_read_txn: 4,
            reads_per_update_txn: 2,
            read_deadline_ms: 50,
            write_deadline_ms: 150,
            non_rt_fraction: 0.0,
            deadline_jitter: 0.0,
            access: AccessPattern::Uniform,
            seed: 0x0DA1_2000,
        }
    }
}

impl WorkloadSpec {
    /// The paper's session at a given arrival rate and write fraction.
    #[must_use]
    pub fn paper(arrival_rate_tps: f64, write_fraction: f64) -> Self {
        WorkloadSpec {
            arrival_rate_tps,
            write_fraction,
            ..WorkloadSpec::default()
        }
    }

    /// Validate ranges; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.db_objects == 0 {
            return Err("db_objects must be positive".into());
        }
        if !(self.arrival_rate_tps.is_finite() && self.arrival_rate_tps > 0.0) {
            return Err("arrival_rate_tps must be positive".into());
        }
        for (name, v) in [
            ("write_fraction", self.write_fraction),
            ("non_rt_fraction", self.non_rt_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must lie in [0, 1]"));
            }
        }
        if self.write_fraction + self.non_rt_fraction > 1.0 {
            return Err("write_fraction + non_rt_fraction exceeds 1".into());
        }
        if !(0.0..1.0).contains(&self.deadline_jitter) {
            return Err("deadline_jitter must lie in [0, 1)".into());
        }
        if self.reads_per_read_txn == 0 || self.reads_per_update_txn == 0 {
            return Err("transactions must read at least one object".into());
        }
        match self.access {
            AccessPattern::Uniform => {}
            AccessPattern::Hotspot {
                hot_fraction,
                hot_probability,
            } => {
                if !(0.0 < hot_fraction && hot_fraction <= 1.0) {
                    return Err("hot_fraction must lie in (0, 1]".into());
                }
                if !(0.0..=1.0).contains(&hot_probability) {
                    return Err("hot_probability must lie in [0, 1]".into());
                }
            }
            AccessPattern::Zipfian { theta } => {
                // The closed-form sampler needs theta != 1 (its exponent
                // is 1/(1-theta)); theta <= 0 would invert the skew.
                if !(theta.is_finite() && 0.0 < theta && theta < 1.0) {
                    return Err("zipfian theta must lie in (0, 1)".into());
                }
            }
        }
        Ok(())
    }

    /// Expected session duration in seconds (count / rate).
    #[must_use]
    pub fn expected_duration_secs(&self) -> f64 {
        self.count as f64 / self.arrival_rate_tps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        WorkloadSpec::default().validate().unwrap();
    }

    #[test]
    fn paper_spec_overrides() {
        let s = WorkloadSpec::paper(300.0, 0.8);
        assert_eq!(s.arrival_rate_tps, 300.0);
        assert_eq!(s.write_fraction, 0.8);
        assert_eq!(s.db_objects, 30_000);
        s.validate().unwrap();
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let bad = [
            WorkloadSpec {
                write_fraction: 1.5,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                arrival_rate_tps: 0.0,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                write_fraction: 0.8,
                non_rt_fraction: 0.4,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                access: AccessPattern::Hotspot {
                    hot_fraction: 0.0,
                    hot_probability: 0.5,
                },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                db_objects: 0,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                deadline_jitter: 1.0,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                access: AccessPattern::Zipfian { theta: 0.0 },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                access: AccessPattern::Zipfian { theta: 1.0 },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                access: AccessPattern::Zipfian { theta: f64::NAN },
                ..WorkloadSpec::default()
            },
        ];
        for spec in bad {
            assert!(spec.validate().is_err(), "{spec:?}");
        }
    }

    #[test]
    fn duration_estimate() {
        let s = WorkloadSpec::paper(200.0, 0.0);
        assert!((s.expected_duration_secs() - 50.0).abs() < 1e-9);
    }
}
