//! COMMITPIPE: batched log shipping vs one frame per commit group on the
//! real mirrored engine, over a paced in-process link.
//!
//! Writes `BENCH_COMMITPIPE.json` into the output directory and exits
//! non-zero when the commit-pipeline overhaul regresses: batched shipping
//! must clear 1.5× the unbatched committed throughput without inflating
//! the commit-wait p99 beyond 1.2× of the baseline.
//!
//! `cargo run -p rodain-bench --release --bin commit_pipe [-- --quick]`

use rodain_bench::experiments::{commit_pipe, SweepOptions};
use rodain_bench::report::out_dir;

fn main() {
    let report = commit_pipe(SweepOptions::from_args());
    report.table().print();

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("BENCH_COMMITPIPE.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_COMMITPIPE.json");
    println!("json: {path:?}");

    let speedup = report.speedup();
    let p99_ratio = report.p99_ratio();
    println!("speedup: {speedup:.2}x, commit-wait p99 ratio: {p99_ratio:.2}");
    if speedup < 1.5 || p99_ratio > 1.2 {
        eprintln!(
            "COMMITPIPE regression: need speedup >= 1.5 (got {speedup:.2}) \
             and p99 ratio <= 1.2 (got {p99_ratio:.2})"
        );
        std::process::exit(1);
    }
}
