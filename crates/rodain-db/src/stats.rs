//! Receipts and engine statistics.

use crate::options::DurabilityTier;
use rodain_obs::{Counter, Recorder};
use rodain_occ::{CcStats, Csn};
use rodain_store::{Ts, Value};
use std::time::Duration;

/// What a committed transaction returns to the client.
#[derive(Clone, Debug, PartialEq)]
pub struct TxnReceipt {
    /// The closure's result value.
    pub result: Option<Value>,
    /// Commit sequence number (true validation order).
    pub csn: Csn,
    /// Serialization timestamp.
    pub ser_ts: Ts,
    /// Concurrency-control restarts endured before committing.
    pub restarts: u32,
    /// End-to-end response time (submission → reply).
    pub response: Duration,
    /// Commit-gate wait (validation accept → durable/acknowledged).
    pub commit_wait: Duration,
    /// The durability actually achieved when the commit future resolved.
    /// At least the requested [`crate::TxnOptions::durability`] whenever
    /// the engine's mode can deliver it; weaker only when it cannot (e.g.
    /// a volatile engine, or a mirror lost under
    /// [`crate::MirrorLossPolicy::ContinueVolatile`]) — see DESIGN.md §14.
    pub acked_tier: DurabilityTier,
}

/// The engine's outcome counters, registered on the engine's
/// [`Recorder`] so the same values back both [`EngineStats`] and the
/// metrics snapshot (see `METRICS.md` for the catalog entries).
pub(crate) struct Counters {
    pub committed: Counter,
    pub aborted_admission: Counter,
    pub aborted_evicted: Counter,
    pub aborted_deadline: Counter,
    pub aborted_conflict: Counter,
    pub aborted_user: Counter,
    pub aborted_replication: Counter,
    pub restarts: Counter,
    pub lock_waits: Counter,
}

impl Counters {
    pub fn new(rec: &Recorder) -> Counters {
        Counters {
            committed: rec.counter("txn_committed_total"),
            aborted_admission: rec.counter("txn_aborted_admission_total"),
            aborted_evicted: rec.counter("txn_aborted_evicted_total"),
            aborted_deadline: rec.counter("txn_aborted_deadline_total"),
            aborted_conflict: rec.counter("txn_aborted_conflict_total"),
            aborted_user: rec.counter("txn_aborted_user_total"),
            aborted_replication: rec.counter("txn_aborted_replication_total"),
            restarts: rec.counter("txn_restarts_total"),
            lock_waits: rec.counter("txn_lock_waits_total"),
        }
    }
}

/// A point-in-time snapshot of engine health.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Committed transactions.
    pub committed: u64,
    /// Admission rejections.
    pub aborted_admission: u64,
    /// Evictions by more urgent arrivals.
    pub aborted_evicted: u64,
    /// Deadline expiries.
    pub aborted_deadline: u64,
    /// Conflict aborts (restarts exhausted the slack).
    pub aborted_conflict: u64,
    /// User-requested aborts.
    pub aborted_user: u64,
    /// Replication/durability failures.
    pub aborted_replication: u64,
    /// Concurrency-control restarts retried.
    pub restarts: u64,
    /// 2PL lock waits observed.
    pub lock_waits: u64,
    /// Controller counters.
    pub cc: CcStats,
    /// Transactions currently admitted.
    pub active: usize,
}

impl EngineStats {
    pub(crate) fn from_counters(counters: &Counters, cc: CcStats, active: usize) -> EngineStats {
        EngineStats {
            committed: counters.committed.get(),
            aborted_admission: counters.aborted_admission.get(),
            aborted_evicted: counters.aborted_evicted.get(),
            aborted_deadline: counters.aborted_deadline.get(),
            aborted_conflict: counters.aborted_conflict.get(),
            aborted_user: counters.aborted_user.get(),
            aborted_replication: counters.aborted_replication.get(),
            restarts: counters.restarts.get(),
            lock_waits: counters.lock_waits.get(),
            cc,
            active,
        }
    }

    /// Fold another engine's statistics into this one — how a sharded
    /// deployment aggregates per-shard engines into cluster totals.
    pub fn merge(&mut self, other: &EngineStats) {
        self.committed += other.committed;
        self.aborted_admission += other.aborted_admission;
        self.aborted_evicted += other.aborted_evicted;
        self.aborted_deadline += other.aborted_deadline;
        self.aborted_conflict += other.aborted_conflict;
        self.aborted_user += other.aborted_user;
        self.aborted_replication += other.aborted_replication;
        self.restarts += other.restarts;
        self.lock_waits += other.lock_waits;
        self.cc.commits += other.cc.commits;
        self.cc.self_restarts += other.cc.self_restarts;
        self.cc.victim_restarts += other.cc.victim_restarts;
        self.cc.backward_commits += other.cc.backward_commits;
        self.cc.adjustments += other.cc.adjustments;
        self.cc.blocks += other.cc.blocks;
        self.active += other.active;
    }

    /// All aborts combined.
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.aborted_admission
            + self.aborted_evicted
            + self.aborted_deadline
            + self.aborted_conflict
            + self.aborted_user
            + self.aborted_replication
    }

    /// The paper's miss ratio over the engine lifetime.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let offered = self.committed + self.aborted();
        if offered == 0 {
            return 0.0;
        }
        self.aborted() as f64 / offered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let a = EngineStats {
            committed: 10,
            restarts: 2,
            active: 1,
            cc: CcStats {
                commits: 10,
                self_restarts: 2,
                ..CcStats::default()
            },
            ..EngineStats::default()
        };
        let b = EngineStats {
            committed: 5,
            aborted_deadline: 3,
            active: 2,
            cc: CcStats {
                commits: 5,
                ..CcStats::default()
            },
            ..EngineStats::default()
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.committed, 15);
        assert_eq!(merged.aborted_deadline, 3);
        assert_eq!(merged.restarts, 2);
        assert_eq!(merged.active, 3);
        assert_eq!(merged.cc.commits, 15);
        assert_eq!(merged.cc.self_restarts, 2);
        assert_eq!(merged.aborted(), 3);
    }

    #[test]
    fn snapshot_and_ratios() {
        let rec = Recorder::new();
        let counters = Counters::new(&rec);
        counters.committed.inc();
        counters.committed.inc();
        counters.aborted_deadline.inc();
        counters.restarts.add(5);
        let stats = EngineStats::from_counters(&counters, CcStats::default(), 3);
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.aborted(), 1);
        assert_eq!(stats.restarts, 5);
        assert_eq!(stats.active, 3);
        assert!((stats.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(EngineStats::default().miss_ratio(), 0.0);
        // The same counters are visible through the recorder snapshot.
        let snap = rec.snapshot();
        assert_eq!(snap.counter("txn_committed_total"), Some(2));
        assert_eq!(snap.counter("txn_restarts_total"), Some(5));
    }
}
