//! The controller interface shared by every protocol.

use rodain_store::{ObjectId, Store, Ts, TxnId, Workspace};
use std::fmt;

/// Commit sequence number: dense, monotone, assigned in *true validation
/// order*. The mirror node reorders the log stream by CSN (paper §3: "The
/// true validation order of the transactions is used for the reordering").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Csn(pub u64);

impl Csn {
    /// The first CSN ever assigned.
    pub const FIRST: Csn = Csn(1);

    /// The next CSN.
    #[must_use]
    pub fn next(self) -> Csn {
        Csn(self.0 + 1)
    }
}

impl fmt::Debug for Csn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csn#{}", self.0)
    }
}

impl fmt::Display for Csn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Priority of a transaction as seen by the concurrency controller.
///
/// Smaller is more urgent. The engine uses the absolute deadline in
/// nanoseconds (EDF), with non-real-time transactions mapped to `LOWEST`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CcPriority(pub u64);

impl CcPriority {
    /// The least urgent priority (non-real-time transactions).
    pub const LOWEST: CcPriority = CcPriority(u64::MAX);
}

/// The protocol family implemented by this crate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Protocol {
    /// OCC broadcast commit: restart every conflicting active transaction.
    OccBc,
    /// OCC with dynamic adjustment of serialization order (Lam et al.).
    OccDa,
    /// OCC with timestamp intervals, read-phase adjustment (Lee & Son).
    OccTi,
    /// OCC-DATI: dynamic adjustment using timestamp intervals, validation
    /// phase only (Lindström & Raatikainen) — the paper's protocol.
    OccDati,
    /// Two-phase locking with high-priority conflict resolution.
    TwoPlHp,
}

impl Protocol {
    /// All protocols, for sweeps and ablations.
    pub const ALL: [Protocol; 5] = [
        Protocol::OccBc,
        Protocol::OccDa,
        Protocol::OccTi,
        Protocol::OccDati,
        Protocol::TwoPlHp,
    ];

    /// Stable lowercase name used in benchmark output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::OccBc => "occ-bc",
            Protocol::OccDa => "occ-da",
            Protocol::OccTi => "occ-ti",
            Protocol::OccDati => "occ-dati",
            Protocol::TwoPlHp => "2pl-hp",
        }
    }

    /// Parse a protocol from its [`Protocol::name`] string.
    #[must_use]
    pub fn parse(s: &str) -> Option<Protocol> {
        Protocol::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a transaction must restart (or abort, if its deadline leaves no
/// slack for a re-execution).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RestartReason {
    /// Timestamp interval became empty (OCC-TI / OCC-DATI / OCC-DA).
    EmptyInterval,
    /// Restarted by a validating transaction's broadcast commit (OCC-BC).
    BroadcastConflict,
    /// Wounded by a higher-priority lock requester (2PL-HP).
    Wounded,
    /// The transaction was too old: its interval fell behind the pruning
    /// horizon of the timestamp allocator.
    Stale,
}

impl fmt::Display for RestartReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RestartReason::EmptyInterval => "empty-interval",
            RestartReason::BroadcastConflict => "broadcast-conflict",
            RestartReason::Wounded => "wounded",
            RestartReason::Stale => "stale",
        };
        f.write_str(s)
    }
}

/// Decision returned by per-access hooks ([`ConcurrencyController::on_read`]
/// / [`ConcurrencyController::on_write`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessDecision {
    /// Access granted; carry on.
    Proceed,
    /// The transaction has been doomed and must restart before doing more
    /// work (eager detection; optimistic protocols may also discover this
    /// only at validation).
    Restart(RestartReason),
    /// Lock-based protocols only: the requester must wait for `holder` to
    /// finish and then retry the access.
    Block {
        /// The transaction currently holding the conflicting lock.
        holder: TxnId,
    },
}

/// Result of atomic validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationOutcome {
    /// The transaction committed. Its after-images are already installed.
    Commit {
        /// Serialization timestamp chosen from the interval.
        ser_ts: Ts,
        /// Dense commit sequence number (true validation order).
        csn: Csn,
        /// Active transactions doomed by this validation (dynamic
        /// adjustment emptied their interval, or broadcast commit hit them).
        /// They have already been marked; the engine restarts them.
        victims: Vec<TxnId>,
    },
    /// The validating transaction itself must restart.
    Restart(RestartReason),
}

impl ValidationOutcome {
    /// Whether the outcome is a commit.
    #[must_use]
    pub fn is_commit(&self) -> bool {
        matches!(self, ValidationOutcome::Commit { .. })
    }
}

/// Aggregate controller statistics (monotone counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CcStats {
    /// Transactions validated successfully.
    pub commits: u64,
    /// Validations that ended in the validating transaction restarting.
    pub self_restarts: u64,
    /// Active transactions doomed as victims of another's validation.
    pub victim_restarts: u64,
    /// Commits whose serialization timestamp lay before the global clock
    /// (backward commits — the adjustment classic OCC would have refused).
    pub backward_commits: u64,
    /// Interval adjustments applied to active transactions.
    pub adjustments: u64,
    /// Lock waits (2PL only).
    pub blocks: u64,
}

impl CcStats {
    /// `(metric name, value)` pairs for every counter, in declaration
    /// order — the observability layer exports these under
    /// `occ_<name>_total` (see the repository's `METRICS.md`).
    #[must_use]
    pub fn named(&self) -> [(&'static str, u64); 6] {
        [
            ("commits", self.commits),
            ("self_restarts", self.self_restarts),
            ("victim_restarts", self.victim_restarts),
            ("backward_commits", self.backward_commits),
            ("adjustments", self.adjustments),
            ("blocks", self.blocks),
        ]
    }
}

/// A pluggable concurrency controller.
///
/// The engine drives it through the transaction life cycle:
///
/// ```text
/// begin → {on_read | on_write}* → validate ─commit→ remove
///                                    └─restart→ (reset workspace) → begin…
/// ```
///
/// `validate` is atomic: the controller serializes all validations
/// internally, and on success the caller's workspace has been installed into
/// the store *inside* the critical section.
pub trait ConcurrencyController: Send + Sync {
    /// Which protocol this controller implements.
    fn protocol(&self) -> Protocol;

    /// Register a (re)starting transaction.
    fn begin(&self, txn: TxnId, priority: CcPriority);

    /// Hook invoked after the transaction read `oid` from committed state,
    /// observing the version written at `observed_wts`.
    fn on_read(&self, txn: TxnId, oid: ObjectId, observed_wts: Ts) -> AccessDecision;

    /// Hook invoked when the transaction buffers a deferred write to `oid`.
    /// `store` lets eager protocols (OCC-TI) prune against committed
    /// version metadata at access time.
    fn on_write(&self, txn: TxnId, oid: ObjectId, store: &Store) -> AccessDecision;

    /// Whether the transaction has been doomed by another's validation.
    fn doomed(&self, txn: TxnId) -> Option<RestartReason>;

    /// Atomically validate `ws.txn()`; on success install the workspace
    /// into `store` and unregister the transaction.
    fn validate(&self, ws: &Workspace, store: &Store) -> ValidationOutcome;

    /// Unregister a transaction (abort, restart bookkeeping, or final
    /// cleanup after a failed validation). Idempotent. Releases any locks.
    fn remove(&self, txn: TxnId);

    /// Monotone statistics snapshot.
    fn stats(&self) -> CcStats;

    /// Number of currently registered (active) transactions.
    fn active_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_name_roundtrip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::parse(p.name()), Some(p));
        }
        assert_eq!(Protocol::parse("nonsense"), None);
    }

    #[test]
    fn csn_is_monotone() {
        assert!(Csn::FIRST < Csn::FIRST.next());
        assert_eq!(Csn(3).next(), Csn(4));
    }

    #[test]
    fn outcome_is_commit() {
        assert!(ValidationOutcome::Commit {
            ser_ts: Ts(1),
            csn: Csn(1),
            victims: vec![]
        }
        .is_commit());
        assert!(!ValidationOutcome::Restart(RestartReason::EmptyInterval).is_commit());
    }

    #[test]
    fn priority_ordering() {
        assert!(CcPriority(10) < CcPriority::LOWEST);
        assert!(CcPriority(1) < CcPriority(2));
    }

    #[test]
    fn named_counters_cover_every_field() {
        let stats = CcStats {
            commits: 1,
            self_restarts: 2,
            victim_restarts: 3,
            backward_commits: 4,
            adjustments: 5,
            blocks: 6,
        };
        let named = stats.named();
        assert_eq!(named.len(), 6);
        let sum: u64 = named.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 21, "a CcStats field is missing from named()");
    }

    #[test]
    fn display_impls() {
        assert_eq!(Protocol::OccDati.to_string(), "occ-dati");
        assert_eq!(RestartReason::Wounded.to_string(), "wounded");
        assert_eq!(format!("{:?}", Csn(2)), "csn#2");
    }
}
