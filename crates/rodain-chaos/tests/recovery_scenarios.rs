//! Recovery chaos scenarios: crash the node *during* replay and
//! checkpointing and verify the dirty-log contract (DESIGN.md §13).
//!
//! Every scenario runs under pinned seeds; reproduce a failure with
//! `CHAOS_SEED=<seed> cargo test -p rodain-chaos --test recovery_scenarios`.

use rodain_chaos::{scenario_seeds, SeededLog};
use rodain_log::{
    replay_frames_into, write_snapshot_file, write_snapshot_file_with_crash, FaultyStorage,
    LogRecord, LogStorage, LogStorageConfig, Lsn, RecordKind, ReplayOptions, SnapshotCrashPoint,
    StorageBackend,
};
use rodain_node::{recover_store_from_disk_with, recover_with_checkpoint_with, RecoveryOptions};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Store, Ts, TxnId, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch_dir(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rodain-recovery-chaos-{tag}-{seed}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_plain(dir: &Path) -> LogStorage {
    LogStorage::open(LogStorageConfig {
        fsync: false,
        ..LogStorageConfig::new(dir)
    })
    .unwrap()
}

/// Split a seeded record stream into per-transaction append groups: each
/// group ends with its commit or abort record (the trailing in-flight
/// write forms a group of its own).
fn txn_groups(records: &[LogRecord]) -> Vec<Vec<LogRecord>> {
    let mut groups = Vec::new();
    let mut current = Vec::new();
    for record in records {
        let boundary = matches!(record.kind, RecordKind::Commit { .. } | RecordKind::Abort);
        current.push(record.clone());
        if boundary {
            groups.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

#[test]
fn r1_torn_write_mid_txn_recovers_every_completed_commit() {
    for seed in scenario_seeds() {
        let objects = 12u64;
        let log = SeededLog::generate(seed, 60, objects);
        let groups = txn_groups(&log.records);
        // Crash while appending a transaction somewhere past the warm-up.
        let tear_at = (20 + seed % 20) as usize;
        assert!(tear_at < groups.len() - 1);

        let dir = scratch_dir("r1", seed);
        let (mut faulty, ctl) = FaultyStorage::new(open_plain(&dir));
        for (i, group) in groups.iter().enumerate() {
            if i == tear_at {
                ctl.tear_next_append();
                let err = faulty.append_batch(group).unwrap_err();
                assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
                break;
            }
            faulty.append_batch(group).unwrap();
        }
        assert!(ctl.is_poisoned());
        drop(faulty);

        // Everything before the torn transaction was flushed by the tear;
        // recovery truncates the damaged tail and keeps the prefix.
        let workers = 1 + (seed % 4) as usize;
        let cold =
            recover_store_from_disk_with(&dir, &RecoveryOptions::with_workers(workers)).unwrap();
        assert!(cold.torn_tail, "seed {seed}: tear not seen as torn tail");
        assert!(cold.torn_tail_bytes > 0, "seed {seed}");
        let prefix = SeededLog::generate(seed, tear_at as u64, objects);
        assert_eq!(cold.stats.committed, prefix.commits, "seed {seed}");
        let violations = prefix.check_store(&cold.store, "torn-tail recovery");
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn r2_crash_mid_replay_then_full_rerun_converges() {
    for seed in scenario_seeds() {
        let log = SeededLog::generate(seed, 200, 24);
        let dir = scratch_dir("r2", seed);
        {
            let mut storage = open_plain(&dir);
            storage.append_batch(&log.records).unwrap();
            storage.flush().unwrap();
        }

        // Reference: an uninterrupted partitioned replay.
        let full = recover_store_from_disk_with(&dir, &RecoveryOptions::with_workers(4)).unwrap();
        assert_eq!(full.stats.committed, log.commits, "seed {seed}");
        assert_eq!(full.stats.watermark, log.max_csn, "seed {seed}");
        let violations = log.check_store(&full.store, "uninterrupted");
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");

        // Chaos: the recovering process dies after applying roughly half
        // the commits...
        let store = Arc::new(Store::new());
        let stop = log.commits / 2;
        let mut frames = LogStorage::scan_dir_frames(&dir).unwrap();
        let partial = replay_frames_into(
            &store,
            &mut frames,
            ReplayOptions {
                workers: 4,
                stop_after_commits: Some(stop),
            },
        )
        .unwrap();
        assert_eq!(partial.committed, stop, "seed {seed}");
        assert!(partial.watermark <= partial.max_csn);

        // ...and the restarted recovery replays the whole log over the
        // partially rebuilt store. It must converge to the reference
        // state: installs are idempotent, so the overlap is harmless.
        let mut frames = LogStorage::scan_dir_frames(&dir).unwrap();
        let rerun =
            replay_frames_into(&store, &mut frames, ReplayOptions::with_workers(4)).unwrap();
        assert_eq!(rerun.committed, log.commits, "seed {seed}");
        assert_eq!(rerun.watermark, log.max_csn, "seed {seed}");
        assert_eq!(
            store.snapshot(),
            full.store.snapshot(),
            "seed {seed}: mid-replay crash + rerun diverged from clean replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn r3_crash_mid_checkpoint_recovers_from_the_prior_snapshot() {
    for seed in scenario_seeds() {
        let objects = 16u64;
        let log = SeededLog::generate(seed, 120, objects);
        let log_dir = scratch_dir("r3-log", seed);
        let snap_dir = scratch_dir("r3-snap", seed);
        {
            let mut storage = open_plain(&log_dir);
            storage.append_batch(&log.records).unwrap();
            storage.flush().unwrap();
        }

        // A good checkpoint exists at the halfway state.
        let prefix = SeededLog::generate(seed, 60, objects);
        let halfway = Store::new();
        for (&oid, &val) in &prefix.expected {
            halfway.install(ObjectId(oid), Value::Int(val), Ts(1));
        }
        let boundary = Csn(prefix.commits + 1);
        write_snapshot_file(&snap_dir, &halfway.snapshot(), boundary).unwrap();

        // The next checkpoint — at the full state — crashes mid-install,
        // at every point before the rename becomes durable.
        let full_state = Store::new();
        for (&oid, &val) in &log.expected {
            full_state.install(ObjectId(oid), Value::Int(val), Ts(2));
        }
        for crash in [
            SnapshotCrashPoint::AfterTempWrite,
            SnapshotCrashPoint::AfterTempSync,
        ] {
            let err = write_snapshot_file_with_crash(
                &snap_dir,
                &full_state.snapshot(),
                Csn(log.commits + 1),
                crash,
            )
            .unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        }

        // Recovery must see only the prior snapshot — never a torso of the
        // crashed one — and rebuild the full state from snapshot + log.
        let latest = rodain_log::read_latest_snapshot(&snap_dir)
            .unwrap()
            .unwrap();
        assert_eq!(
            latest.1, boundary,
            "seed {seed}: crashed install became visible"
        );
        let cold =
            recover_with_checkpoint_with(&log_dir, &snap_dir, &RecoveryOptions::with_workers(2))
                .unwrap();
        let violations = log.check_store(&cold.store, "post-checkpoint-crash recovery");
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        let _ = std::fs::remove_dir_all(&log_dir);
        let _ = std::fs::remove_dir_all(&snap_dir);
    }
}

#[test]
fn r4_partial_append_retry_duplicates_replay_idempotently() {
    for seed in scenario_seeds() {
        let log = SeededLog::generate(seed, 80, 12);
        let dir = scratch_dir("r4", seed);
        let (mut faulty, ctl) = FaultyStorage::new(open_plain(&dir));
        faulty.append_batch(&log.records).unwrap();

        // A writer ships two more committed transactions in one batch; the
        // disk takes the first group, then EIO. The writer's retry
        // re-appends the whole batch, so group A lands twice (same CSN).
        let base_lsn = log.records.last().unwrap().lsn.0;
        let commit = |lsn: u64, txn: u64, csn: u64, n: u32| LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Commit {
                csn: Csn(csn),
                ser_ts: Ts(csn * 10),
                n_writes: n,
            },
        };
        let write = |lsn: u64, txn: u64, oid: u64, val: i64| LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Write {
                oid: ObjectId(oid),
                image: Value::Int(val),
            },
        };
        let batch = [
            write(base_lsn + 1, 900, 1000, seed as i64),
            commit(base_lsn + 2, 900, log.max_csn.0 + 1, 1),
            write(base_lsn + 3, 901, 1001, -(seed as i64)),
            commit(base_lsn + 4, 901, log.max_csn.0 + 2, 1),
        ];
        ctl.partial_next_append();
        assert!(faulty.append_batch(&batch).is_err());
        assert!(!ctl.is_poisoned(), "partial append must stay transient");
        faulty.append_batch(&batch).unwrap();
        StorageBackend::flush(&mut faulty).unwrap();
        drop(faulty);

        // Replay sees transaction 900 twice (duplicate CSN): the re-apply
        // must be idempotent, and every other commit must survive.
        let cold = recover_store_from_disk_with(&dir, &RecoveryOptions::with_workers(4)).unwrap();
        assert_eq!(
            cold.stats.committed,
            log.commits + 3,
            "seed {seed}: group A twice + group B once"
        );
        let violations = log.check_store_with_extras(
            &cold.store,
            &[(1000, seed as i64), (1001, -(seed as i64))],
            "partial-append recovery",
        );
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn r5_mid_log_corruption_fails_loudly_with_location() {
    for seed in scenario_seeds() {
        let log = SeededLog::generate(seed, 60, 12);
        let dir = scratch_dir("r5", seed);
        {
            let mut storage = open_plain(&dir);
            storage.append_batch(&log.records).unwrap();
            storage.flush().unwrap();
        }
        // Flip one byte in the middle of the (only) segment — far from
        // the tail, so this is NOT a torn tail and must abort recovery.
        let segment = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "rodainlog"))
            .expect("segment file");
        let mut data = std::fs::read(&segment).unwrap();
        // Segment header is 20 bytes, each frame is [len u32][crc u32]
        // [payload]. Flip a byte inside the FIRST frame's payload: the
        // frame fails its CRC with plenty of intact data after it, which
        // is unambiguously corruption, never a torn tail.
        data[20 + 8 + 4] ^= 0x20;
        std::fs::write(&segment, &data).unwrap();

        let err =
            recover_store_from_disk_with(&dir, &RecoveryOptions::with_workers(2)).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("mid-log corruption") && msg.contains("seg-"),
            "seed {seed}: corruption error must name segment and offset, got: {msg}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
