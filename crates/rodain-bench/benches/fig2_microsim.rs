//! Criterion wrapper around the Fig 2 configurations: one reduced session
//! per commit-path configuration. Useful both as a performance regression
//! guard on the simulator and as a quick sanity check that the 1-node-disk
//! configuration stays the slow one.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rodain_sim::{run_session, DiskMode, SimConfig};
use rodain_workload::WorkloadSpec;

fn bench_fig2_sessions(c: &mut Criterion) {
    let spec = WorkloadSpec {
        count: 1_000,
        arrival_rate_tps: 200.0,
        write_fraction: 0.5,
        ..WorkloadSpec::default()
    };
    let mut group = c.benchmark_group("fig2-session-1000txn");
    group.sample_size(10);
    for (name, cfg) in [
        ("1-node-disk", SimConfig::single_node(DiskMode::On)),
        ("2-node-disk", SimConfig::two_node(DiskMode::On)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(run_session(cfg, &spec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2_sessions);
criterion_main!(benches);
