//! One cluster node as a standalone process.
//!
//! ```text
//! cluster_node --shards 4 --own 0,2 --listen 127.0.0.1:0 \
//!     --peer-listen 127.0.0.1:0 --data /tmp/node-a
//! ```
//!
//! Prints `LISTEN <addr>`, `PEER <addr>` and `READY` on stdout so an
//! orchestrating parent can scrape the bound ports, then blocks reading
//! stdin: EOF (the parent died or closed the pipe) shuts the node down.

use rodain_cluster::{ClusterNode, NodeConfig};
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::time::Duration;

struct Args {
    shards: usize,
    own: Vec<usize>,
    listen: String,
    peer_listen: String,
    data: String,
    flush_delay_us: u64,
    batch: usize,
    workers: usize,
    objects: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        shards: 1,
        own: Vec::new(),
        listen: "127.0.0.1:0".to_string(),
        peer_listen: "127.0.0.1:0".to_string(),
        data: String::new(),
        flush_delay_us: 0,
        batch: 1,
        workers: 2,
        objects: 30_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--shards" => args.shards = value("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--own" => {
                args.own = value("--own")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--listen" => args.listen = value("--listen")?,
            "--peer-listen" => args.peer_listen = value("--peer-listen")?,
            "--data" => args.data = value("--data")?,
            "--flush-delay-us" => {
                args.flush_delay_us = value("--flush-delay-us")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--batch" => args.batch = value("--batch")?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => args.workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?,
            "--objects" => args.objects = value("--objects")?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.data.is_empty() {
        return Err("--data is required".to_string());
    }
    if args.own.is_empty() {
        args.own = (0..args.shards).collect();
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cluster_node: {e}");
            std::process::exit(2);
        }
    };
    let mut cfg = NodeConfig::new(args.shards, args.own, &args.data);
    cfg.workers_per_shard = args.workers;
    cfg.schema_objects = args.objects;
    cfg.group_commit_batch = args.batch;
    cfg.unlimited_admission = true;
    if args.flush_delay_us > 0 {
        cfg.flush_delay = Some(Duration::from_micros(args.flush_delay_us));
    }
    let client_listener = TcpListener::bind(&args.listen).expect("bind client listener");
    let peer_listener = TcpListener::bind(&args.peer_listen).expect("bind peer listener");
    let node = ClusterNode::start(cfg, client_listener, peer_listener).expect("start node");

    let stdout = std::io::stdout();
    {
        let mut out = stdout.lock();
        writeln!(out, "LISTEN {}", node.client_addr()).expect("stdout");
        writeln!(out, "PEER {}", node.peer_addr()).expect("stdout");
        writeln!(out, "READY").expect("stdout");
        out.flush().expect("stdout flush");
    }

    // Park until the parent closes our stdin (or asks us to quit).
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(cmd) if cmd.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    node.shutdown();
}
