//! Mirror-side reorder buffer throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rodain_log::{LogRecord, Lsn, RecordKind, ReorderBuffer};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Ts, TxnId, Value};

/// An interleaved stream: 2 writes + 1 commit per txn, two txns in flight.
fn interleaved_stream(txns: u64) -> Vec<LogRecord> {
    let mut out = Vec::with_capacity(txns as usize * 3);
    let mut lsn = 0u64;
    let mut push = |txn: u64, kind: RecordKind, lsn: &mut u64| {
        *lsn += 1;
        out.push(LogRecord {
            lsn: Lsn(*lsn),
            txn: TxnId(txn),
            kind,
        });
    };
    for pair in 0..txns / 2 {
        let a = pair * 2 + 1;
        let b = pair * 2 + 2;
        for (t, k) in [(a, 0u64), (b, 0), (a, 1), (b, 1)] {
            push(
                t,
                RecordKind::Write {
                    oid: ObjectId(t * 10 + k),
                    image: Value::Int(k as i64),
                },
                &mut lsn,
            );
        }
        for t in [a, b] {
            push(
                t,
                RecordKind::Commit {
                    csn: Csn(t),
                    ser_ts: Ts(t << 20),
                    n_writes: 2,
                },
                &mut lsn,
            );
        }
    }
    out
}

fn bench_reorder(c: &mut Criterion) {
    let stream = interleaved_stream(2_000);
    let mut group = c.benchmark_group("reorder-buffer");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("ingest_drain_2000txn", |b| {
        b.iter(|| {
            let mut rb = ReorderBuffer::new();
            let mut applied = 0u64;
            for rec in &stream {
                let _ = rb.ingest(rec.clone()).unwrap();
                for committed in rb.drain_ready() {
                    applied += committed.writes.len() as u64;
                }
            }
            black_box(applied)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reorder);
criterion_main!(benches);
