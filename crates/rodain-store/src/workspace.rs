//! Deferred-write transaction workspaces.

use crate::fxhash::FxHashMap;
use crate::store::Store;
use crate::types::{ObjectId, Ts, TxnId, Value};

/// What a transaction observed when it read an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadObservation {
    /// Write timestamp of the version the transaction saw.
    pub wts: Ts,
    /// Whether the object existed at read time.
    pub existed: bool,
}

/// A transaction's private workspace implementing the paper's *deferred
/// write* mechanism.
///
/// > "the transaction is allowed to write the modified data to the database
/// > area only after it is accepted to commit by the concurrency control
/// > mechanism. This way the aborted transaction can simply discard its
/// > modified copies of the data without rollbacking."
///
/// Reads go through the workspace so a transaction sees its own uncommitted
/// writes; everything else comes from the committed store. Writes only touch
/// the private after-image map. [`Workspace::install_into`] is called during
/// the write phase, after validation accepted the transaction.
#[derive(Debug)]
pub struct Workspace {
    txn: TxnId,
    /// Objects read from committed state, with the version observed.
    /// A read of an object this transaction already wrote does NOT appear
    /// here (it is served from `writes` and causes no external dependency).
    ///
    /// FxHash, not SipHash: `ObjectId` keys are small dense integers and
    /// this map is probed on every read of every transaction.
    reads: FxHashMap<ObjectId, ReadObservation>,
    /// Deferred after-images, in first-write order (the order the redo log
    /// records will be generated in during the write phase).
    writes: Vec<(ObjectId, Value)>,
    /// Index into `writes` for O(1) read-your-writes and overwrites.
    write_index: FxHashMap<ObjectId, usize>,
}

impl Workspace {
    /// Create an empty workspace for transaction `txn`.
    #[must_use]
    pub fn new(txn: TxnId) -> Self {
        Workspace {
            txn,
            reads: FxHashMap::default(),
            writes: Vec::new(),
            write_index: FxHashMap::default(),
        }
    }

    /// The owning transaction.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Read `oid`, honouring the transaction's own deferred writes first.
    ///
    /// Returns `None` when the object neither exists in committed state nor
    /// in the write set (or was deleted by this transaction). Reads that hit
    /// committed state are recorded in the read set together with the
    /// observed version for validation.
    pub fn read(&mut self, store: &Store, oid: ObjectId) -> Option<Value> {
        if let Some(&idx) = self.write_index.get(&oid) {
            let v = &self.writes[idx].1;
            return if v.is_null() { None } else { Some(v.clone()) };
        }
        match store.read(oid) {
            Some((value, wts)) => {
                self.note_read(oid, wts, true);
                Some(value)
            }
            None => {
                self.note_read(oid, Ts::ZERO, false);
                None
            }
        }
    }

    /// Record an externally performed read (used by the simulator, which
    /// separates timing from data access).
    pub fn note_read(&mut self, oid: ObjectId, wts: Ts, existed: bool) {
        // Keep the FIRST observation: validation must check the version the
        // transaction actually used.
        self.reads
            .entry(oid)
            .or_insert(ReadObservation { wts, existed });
    }

    /// Buffer a deferred write of `value` to `oid`.
    ///
    /// Writing [`Value::Null`] deletes the object at commit.
    pub fn write(&mut self, oid: ObjectId, value: Value) {
        match self.write_index.get(&oid) {
            Some(&idx) => self.writes[idx].1 = value,
            None => {
                self.write_index.insert(oid, self.writes.len());
                self.writes.push((oid, value));
            }
        }
    }

    /// The read set: object ids and observed versions.
    pub fn reads(&self) -> impl Iterator<Item = (ObjectId, ReadObservation)> + '_ {
        self.reads.iter().map(|(oid, obs)| (*oid, *obs))
    }

    /// The write set in first-write order (redo-log generation order).
    #[must_use]
    pub fn writes(&self) -> &[(ObjectId, Value)] {
        &self.writes
    }

    /// Whether the transaction performed any writes.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Number of committed-state reads recorded.
    #[must_use]
    pub fn read_count(&self) -> usize {
        self.reads.len()
    }

    /// Number of distinct objects written.
    #[must_use]
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Did this transaction read `oid` from committed state?
    #[must_use]
    pub fn has_read(&self, oid: ObjectId) -> bool {
        self.reads.contains_key(&oid)
    }

    /// Did this transaction write `oid`?
    #[must_use]
    pub fn has_written(&self, oid: ObjectId) -> bool {
        self.write_index.contains_key(&oid)
    }

    /// Write phase: install every after-image into the store at commit
    /// timestamp `ts` and stamp the read timestamps of read objects.
    ///
    /// Must only be called after the concurrency controller accepted the
    /// transaction, inside its validation critical section (the paper's
    /// "transactions are validated atomically").
    pub fn install_into(&self, store: &Store, ts: Ts) {
        for (oid, obs) in &self.reads {
            if obs.existed && !self.write_index.contains_key(oid) {
                store.note_committed_read(*oid, ts);
            }
        }
        for (oid, value) in &self.writes {
            store.install(*oid, value.clone(), ts);
        }
    }

    /// Discard all buffered state, keeping the allocation for a restart of
    /// the same transaction. This is the paper's cheap abort: no rollback.
    pub fn reset(&mut self) {
        self.reads.clear();
        self.writes.clear();
        self.write_index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(n: u64) -> Store {
        let s = Store::new();
        for i in 0..n {
            s.load_initial(ObjectId(i), Value::Int(i as i64));
        }
        s
    }

    #[test]
    fn read_committed_records_observation() {
        let store = store_with(3);
        let mut ws = Workspace::new(TxnId(1));
        assert_eq!(ws.read(&store, ObjectId(2)), Some(Value::Int(2)));
        assert_eq!(ws.read_count(), 1);
        assert!(ws.has_read(ObjectId(2)));
    }

    #[test]
    fn read_your_own_writes() {
        let store = store_with(3);
        let mut ws = Workspace::new(TxnId(1));
        ws.write(ObjectId(2), Value::Int(99));
        assert_eq!(ws.read(&store, ObjectId(2)), Some(Value::Int(99)));
        // Own-write reads do not create read-set entries.
        assert_eq!(ws.read_count(), 0);
    }

    #[test]
    fn read_own_delete_sees_none() {
        let store = store_with(3);
        let mut ws = Workspace::new(TxnId(1));
        ws.write(ObjectId(1), Value::Null);
        assert_eq!(ws.read(&store, ObjectId(1)), None);
    }

    #[test]
    fn missing_object_read_is_recorded() {
        let store = store_with(1);
        let mut ws = Workspace::new(TxnId(1));
        assert_eq!(ws.read(&store, ObjectId(42)), None);
        let obs: Vec<_> = ws.reads().collect();
        assert_eq!(obs.len(), 1);
        assert!(!obs[0].1.existed);
    }

    #[test]
    fn first_observation_wins() {
        let store = store_with(1);
        let mut ws = Workspace::new(TxnId(1));
        ws.read(&store, ObjectId(0));
        // Concurrent committer bumps the version...
        store.install(ObjectId(0), Value::Int(7), Ts(10));
        // ...re-reading within the txn keeps the FIRST observed version for
        // validation purposes.
        ws.read(&store, ObjectId(0));
        let obs: Vec<_> = ws.reads().collect();
        assert_eq!(obs[0].1.wts, Ts::ZERO);
    }

    #[test]
    fn overwrite_keeps_single_log_slot() {
        let store = store_with(1);
        let mut ws = Workspace::new(TxnId(1));
        ws.write(ObjectId(0), Value::Int(1));
        ws.write(ObjectId(0), Value::Int(2));
        assert_eq!(ws.write_count(), 1);
        assert_eq!(ws.writes(), &[(ObjectId(0), Value::Int(2))]);
        assert_eq!(ws.read(&store, ObjectId(0)), Some(Value::Int(2)));
    }

    #[test]
    fn writes_preserve_first_write_order() {
        let mut ws = Workspace::new(TxnId(1));
        ws.write(ObjectId(5), Value::Int(5));
        ws.write(ObjectId(1), Value::Int(1));
        ws.write(ObjectId(5), Value::Int(55));
        let order: Vec<_> = ws.writes().iter().map(|(oid, _)| oid.0).collect();
        assert_eq!(order, vec![5, 1]);
    }

    #[test]
    fn install_applies_after_images_and_read_stamps() {
        let store = store_with(3);
        let mut ws = Workspace::new(TxnId(1));
        ws.read(&store, ObjectId(0));
        ws.write(ObjectId(1), Value::Int(111));
        ws.install_into(&store, Ts(4));
        assert_eq!(store.read(ObjectId(1)), Some((Value::Int(111), Ts(4))));
        // Read-only object got its rts bumped.
        assert_eq!(store.version(ObjectId(0)), Some((Ts::ZERO, Ts(4))));
    }

    #[test]
    fn read_then_write_same_object_stamps_once() {
        let store = store_with(2);
        let mut ws = Workspace::new(TxnId(1));
        ws.read(&store, ObjectId(0));
        ws.write(ObjectId(0), Value::Int(100));
        ws.install_into(&store, Ts(9));
        // Install sets both wts and rts to 9; the read-note path is skipped
        // for objects that were also written.
        assert_eq!(store.version(ObjectId(0)), Some((Ts(9), Ts(9))));
    }

    #[test]
    fn abort_is_reset_without_store_effects() {
        let store = store_with(2);
        let mut ws = Workspace::new(TxnId(1));
        ws.read(&store, ObjectId(0));
        ws.write(ObjectId(1), Value::Int(42));
        ws.reset();
        assert!(ws.is_read_only());
        assert_eq!(ws.read_count(), 0);
        assert_eq!(store.read(ObjectId(1)), Some((Value::Int(1), Ts::ZERO)));
    }

    #[test]
    fn install_null_deletes() {
        let store = store_with(2);
        let mut ws = Workspace::new(TxnId(1));
        ws.write(ObjectId(1), Value::Null);
        ws.install_into(&store, Ts(2));
        assert_eq!(store.read(ObjectId(1)), None);
    }
}
