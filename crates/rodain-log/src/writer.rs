//! Primary-side record generation.

use crate::record::{LogRecord, Lsn, RecordKind};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Ts, TxnId, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Assigns LSNs and builds the record group of a committing transaction.
///
/// The write phase of transaction `txn` generates one [`RecordKind::Write`]
/// record per after-image, in the transaction's first-write order, followed
/// by the [`RecordKind::Commit`] record. Record generation happens inside
/// the validation critical section of the engine, so commit records leave
/// the primary in true validation (CSN) order — the mirror's reorder buffer
/// only has to untangle the *write* records of concurrent transactions.
pub struct RecordBuilder {
    next_lsn: AtomicU64,
}

impl RecordBuilder {
    /// Start numbering at [`Lsn::FIRST`].
    #[must_use]
    pub fn new() -> Self {
        RecordBuilder {
            next_lsn: AtomicU64::new(Lsn::FIRST.0),
        }
    }

    /// Resume numbering after `last` (log storage re-opened after a crash).
    #[must_use]
    pub fn resuming_after(last: Lsn) -> Self {
        RecordBuilder {
            next_lsn: AtomicU64::new(last.0 + 1),
        }
    }

    fn bump(&self) -> Lsn {
        Lsn(self.next_lsn.fetch_add(1, Ordering::Relaxed))
    }

    /// The next LSN that will be assigned.
    #[must_use]
    pub fn peek_next(&self) -> Lsn {
        Lsn(self.next_lsn.load(Ordering::Relaxed))
    }

    /// Build the full record group for a committing transaction:
    /// its write records followed by the commit record.
    ///
    /// Read-only transactions produce just the commit record — the paper
    /// notes the system "generates a commit log record also for read-only
    /// transactions", which keeps commit times of both transaction types
    /// close (every commit pays the mirror round-trip).
    pub fn commit_group(
        &self,
        txn: TxnId,
        writes: &[(ObjectId, Value)],
        csn: Csn,
        ser_ts: Ts,
    ) -> Vec<LogRecord> {
        let mut records = Vec::with_capacity(writes.len() + 1);
        for (oid, image) in writes {
            records.push(LogRecord {
                lsn: self.bump(),
                txn,
                kind: RecordKind::Write {
                    oid: *oid,
                    image: image.clone(),
                },
            });
        }
        records.push(LogRecord {
            lsn: self.bump(),
            txn,
            kind: RecordKind::Commit {
                csn,
                ser_ts,
                n_writes: writes.len() as u32,
            },
        });
        records
    }

    /// Build an abort record (shipped when a transaction dies after some of
    /// its write records already left the node — only possible in designs
    /// that ship during the write phase; included for protocol
    /// completeness and failure injection in tests).
    pub fn abort_record(&self, txn: TxnId) -> LogRecord {
        LogRecord {
            lsn: self.bump(),
            txn,
            kind: RecordKind::Abort,
        }
    }

    /// Build a checkpoint marker.
    pub fn checkpoint_record(&self, upto: Csn, snapshot_id: u64) -> LogRecord {
        LogRecord {
            lsn: self.bump(),
            txn: TxnId(0),
            kind: RecordKind::Checkpoint { upto, snapshot_id },
        }
    }
}

impl Default for RecordBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_group_shape() {
        let builder = RecordBuilder::new();
        let writes = vec![(ObjectId(1), Value::Int(10)), (ObjectId(2), Value::Int(20))];
        let group = builder.commit_group(TxnId(5), &writes, Csn(1), Ts(100));
        assert_eq!(group.len(), 3);
        assert_eq!(group[0].lsn, Lsn(1));
        assert_eq!(group[2].lsn, Lsn(3));
        assert!(group[2].is_commit());
        match &group[2].kind {
            RecordKind::Commit { n_writes, .. } => assert_eq!(*n_writes, 2),
            _ => unreachable!(),
        }
        assert!(group.iter().all(|r| r.txn == TxnId(5)));
    }

    #[test]
    fn read_only_commit_is_single_record() {
        let builder = RecordBuilder::new();
        let group = builder.commit_group(TxnId(1), &[], Csn(1), Ts(1));
        assert_eq!(group.len(), 1);
        assert!(group[0].is_commit());
    }

    #[test]
    fn lsns_are_dense_across_groups() {
        let builder = RecordBuilder::new();
        let g1 = builder.commit_group(TxnId(1), &[(ObjectId(1), Value::Int(1))], Csn(1), Ts(1));
        let g2 = builder.commit_group(TxnId(2), &[], Csn(2), Ts(2));
        assert_eq!(g1.last().unwrap().lsn, Lsn(2));
        assert_eq!(g2[0].lsn, Lsn(3));
        assert_eq!(builder.peek_next(), Lsn(4));
    }

    #[test]
    fn resume_continues_numbering() {
        let builder = RecordBuilder::resuming_after(Lsn(41));
        assert_eq!(builder.abort_record(TxnId(1)).lsn, Lsn(42));
        let cp = builder.checkpoint_record(Csn(5), 7);
        assert_eq!(cp.lsn, Lsn(43));
        assert_eq!(cp.txn, TxnId(0));
    }
}
