//! Failure-injection link wrapper.

use crate::{NetError, Transport};
use bytes::Bytes;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// XOR mask applied to the corrupted byte. Chosen to flip bits in both
/// nibbles so a single corrupted byte always defeats the CRC32 framing of
/// `rodain-log` records and the message codec on top.
const CORRUPT_MASK: u8 = 0xA5;

/// Multiplier for the deterministic per-frame jitter hash (the 64-bit
/// golden-ratio constant). Jitter must not consume a shared RNG: the amount
/// of added latency is a pure function of the frame sequence number so a
/// fault schedule replays identically.
const JITTER_HASH: u64 = 0x9E37_79B9_7F4A_7C15;

/// The knobs and counters shared between a [`LossyLink`] and its
/// [`LinkControl`] handles.
#[derive(Default)]
struct LinkState {
    severed: AtomicBool,
    blackhole: AtomicBool,
    drop_one_in: AtomicU64,
    duplicate_one_in: AtomicU64,
    corrupt_one_in: AtomicU64,
    corrupt_next: AtomicBool,
    delay_ns: AtomicU64,
    jitter_ns: AtomicU64,
    sent: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
}

/// Shared control handle for a [`LossyLink`] (clone it into test code to
/// manipulate the link while nodes are running).
#[derive(Clone)]
pub struct LinkControl {
    state: Arc<LinkState>,
}

impl LinkControl {
    /// Permanently sever the link: both directions fail with
    /// [`NetError::Disconnected`] (models a node crash / cable cut).
    pub fn sever(&self) {
        self.state.severed.store(true, Ordering::Release);
    }

    /// Silently discard everything sent while enabled (models a partition
    /// that the failure detector must notice by missing heartbeats).
    pub fn set_blackhole(&self, enabled: bool) {
        self.state.blackhole.store(enabled, Ordering::Release);
    }

    /// Drop every `n`-th outbound frame (0 disables dropping).
    /// Note the [`Transport`] contract is FIFO-or-fail, so this is only
    /// meaningful for stress-testing the *detection* of missing records
    /// (e.g. [`rodain_log::ReorderBuffer`] gap checks, via its
    /// `MissingWrites` error), not for normal operation.
    pub fn set_drop_one_in(&self, n: u64) {
        self.state.drop_one_in.store(n, Ordering::Release);
    }

    /// Send every `n`-th outbound frame twice (0 disables duplication).
    /// The receiver must tolerate replayed frames — commit replay is
    /// idempotent in `rodain-log`'s reorder buffer, and this knob proves it.
    pub fn set_duplicate_one_in(&self, n: u64) {
        self.state.duplicate_one_in.store(n, Ordering::Release);
    }

    /// Flip one byte in every `n`-th outbound frame (0 disables corruption).
    /// The CRC framing on log records must reject the damaged payload.
    pub fn set_corrupt_one_in(&self, n: u64) {
        self.state.corrupt_one_in.store(n, Ordering::Release);
    }

    /// Flip one byte in the next outbound frame only (one-shot).
    pub fn corrupt_next(&self) {
        self.state.corrupt_next.store(true, Ordering::Release);
    }

    /// Add `base` of latency to every frame, plus up to `jitter` more chosen
    /// deterministically per frame from its sequence number. Zero/zero
    /// disables the delay.
    pub fn set_delay(&self, base: Duration, jitter: Duration) {
        let base_ns = u64::try_from(base.as_nanos()).unwrap_or(u64::MAX);
        let jitter_ns = u64::try_from(jitter.as_nanos()).unwrap_or(u64::MAX);
        self.state.delay_ns.store(base_ns, Ordering::Release);
        self.state.jitter_ns.store(jitter_ns, Ordering::Release);
    }

    /// Clear delay, duplication and corruption settings (sever is
    /// irreversible by design — crash-stop links never come back).
    pub fn heal(&self) {
        self.state.blackhole.store(false, Ordering::Release);
        self.state.drop_one_in.store(0, Ordering::Release);
        self.state.duplicate_one_in.store(0, Ordering::Release);
        self.state.corrupt_one_in.store(0, Ordering::Release);
        self.state.corrupt_next.store(false, Ordering::Release);
        self.state.delay_ns.store(0, Ordering::Release);
        self.state.jitter_ns.store(0, Ordering::Release);
    }

    /// Frames sent through the link so far (including duplicates' originals,
    /// excluding dropped frames' payloads reaching the peer).
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.state.sent.load(Ordering::Acquire)
    }

    /// Frames discarded so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state.dropped.load(Ordering::Acquire)
    }

    /// Frames sent twice so far.
    #[must_use]
    pub fn duplicated(&self) -> u64 {
        self.state.duplicated.load(Ordering::Acquire)
    }

    /// Frames damaged so far.
    #[must_use]
    pub fn corrupted(&self) -> u64 {
        self.state.corrupted.load(Ordering::Acquire)
    }

    /// Whether the link was severed.
    #[must_use]
    pub fn is_severed(&self) -> bool {
        self.state.severed.load(Ordering::Acquire)
    }
}

/// A [`Transport`] decorator that injects link failures under test control.
pub struct LossyLink<T: Transport> {
    inner: T,
    state: Arc<LinkState>,
}

impl<T: Transport> LossyLink<T> {
    /// Wrap `inner`; returns the link and its control handle.
    pub fn new(inner: T) -> (Self, LinkControl) {
        let state = Arc::new(LinkState::default());
        (
            LossyLink {
                inner,
                state: Arc::clone(&state),
            },
            LinkControl { state },
        )
    }
}

impl<T: Transport> Transport for LossyLink<T> {
    fn send(&self, frame: Bytes) -> Result<(), NetError> {
        let s = &*self.state;
        if s.severed.load(Ordering::Acquire) {
            return Err(NetError::Disconnected);
        }
        if s.blackhole.load(Ordering::Acquire) {
            s.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // swallowed silently
        }
        // Lock-free frame sequencing: the injection decisions below must not
        // add contention to the send path being measured.
        let seq = s.sent.fetch_add(1, Ordering::AcqRel) + 1;
        let drop_n = s.drop_one_in.load(Ordering::Acquire);
        if drop_n > 0 && seq % drop_n == 0 {
            s.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let base_ns = s.delay_ns.load(Ordering::Acquire);
        let jitter_ns = s.jitter_ns.load(Ordering::Acquire);
        if base_ns > 0 || jitter_ns > 0 {
            let extra = if jitter_ns > 0 {
                seq.wrapping_mul(JITTER_HASH) % jitter_ns.saturating_add(1)
            } else {
                0
            };
            std::thread::sleep(Duration::from_nanos(base_ns.saturating_add(extra)));
        }
        let corrupt_n = s.corrupt_one_in.load(Ordering::Acquire);
        let corrupt = if frame.is_empty() {
            false
        } else {
            s.corrupt_next.swap(false, Ordering::AcqRel) || (corrupt_n > 0 && seq % corrupt_n == 0)
        };
        let frame = if corrupt {
            s.corrupted.fetch_add(1, Ordering::Relaxed);
            let mut damaged = frame.to_vec();
            let victim = damaged.len() / 2;
            damaged[victim] ^= CORRUPT_MASK;
            Bytes::from(damaged)
        } else {
            frame
        };
        let dup_n = s.duplicate_one_in.load(Ordering::Acquire);
        if dup_n > 0 && seq % dup_n == 0 {
            s.duplicated.fetch_add(1, Ordering::Relaxed);
            self.inner.send(frame.clone())?;
        }
        self.inner.send(frame)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NetError> {
        if self.state.severed.load(Ordering::Acquire) {
            return Err(NetError::Disconnected);
        }
        self.inner.recv_timeout(timeout)
    }

    fn is_connected(&self) -> bool {
        !self.state.severed.load(Ordering::Acquire) && self.inner.is_connected()
    }

    fn close(&self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InProcTransport;

    #[test]
    fn passthrough_by_default() {
        let (a, b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        lossy.send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"x"));
        assert!(lossy.is_connected());
        assert_eq!(ctl.sent(), 1);
    }

    #[test]
    fn sever_disconnects_immediately() {
        let (a, _b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        ctl.sever();
        assert!(ctl.is_severed());
        assert_eq!(lossy.send(Bytes::new()), Err(NetError::Disconnected));
        assert_eq!(
            lossy.recv_timeout(Duration::from_millis(1)),
            Err(NetError::Disconnected)
        );
        assert!(!lossy.is_connected());
    }

    #[test]
    fn blackhole_swallows_silently() {
        let (a, b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        ctl.set_blackhole(true);
        lossy.send(Bytes::from_static(b"gone")).unwrap();
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(ctl.dropped(), 1);
        ctl.set_blackhole(false);
        lossy.send(Bytes::from_static(b"back")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"back"));
    }

    #[test]
    fn periodic_drop() {
        let (a, b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        ctl.set_drop_one_in(3);
        for i in 0..9u8 {
            lossy.send(Bytes::from(vec![i])).unwrap();
        }
        let mut received = Vec::new();
        while let Some(f) = b.try_recv().unwrap() {
            received.push(f[0]);
        }
        assert_eq!(received.len(), 6);
        assert_eq!(ctl.dropped(), 3);
    }

    #[test]
    fn periodic_duplication() {
        let (a, b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        ctl.set_duplicate_one_in(2);
        for i in 0..4u8 {
            lossy.send(Bytes::from(vec![i])).unwrap();
        }
        let mut received = Vec::new();
        while let Some(f) = b.try_recv().unwrap() {
            received.push(f[0]);
        }
        // Frames 2 and 4 arrive twice, immediately after their originals.
        assert_eq!(received, vec![0, 1, 1, 2, 3, 3]);
        assert_eq!(ctl.duplicated(), 2);
    }

    #[test]
    fn corrupt_next_is_one_shot() {
        let (a, b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        ctl.corrupt_next();
        let clean = Bytes::from_static(b"payload");
        lossy.send(clean.clone()).unwrap();
        lossy.send(clean.clone()).unwrap();
        let first = b.try_recv().unwrap().unwrap();
        let second = b.try_recv().unwrap().unwrap();
        assert_ne!(first, clean);
        assert_eq!(first.len(), clean.len());
        assert_eq!(first[clean.len() / 2], clean[clean.len() / 2] ^ CORRUPT_MASK);
        assert_eq!(second, clean);
        assert_eq!(ctl.corrupted(), 1);
    }

    #[test]
    fn periodic_corruption_and_heal() {
        let (a, b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        ctl.set_corrupt_one_in(2);
        for _ in 0..4 {
            lossy.send(Bytes::from_static(b"abcd")).unwrap();
        }
        let mut damaged = 0;
        while let Some(f) = b.try_recv().unwrap() {
            if f != Bytes::from_static(b"abcd") {
                damaged += 1;
            }
        }
        assert_eq!(damaged, 2);
        assert_eq!(ctl.corrupted(), 2);
        ctl.heal();
        lossy.send(Bytes::from_static(b"abcd")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"abcd"));
        assert_eq!(ctl.corrupted(), 2);
    }

    #[test]
    fn delay_slows_the_send_path() {
        let (a, b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        ctl.set_delay(Duration::from_millis(5), Duration::ZERO);
        let start = std::time::Instant::now();
        lossy.send(Bytes::from_static(b"slow")).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"slow"));
        ctl.heal();
        lossy.send(Bytes::from_static(b"fast")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"fast"));
    }

    #[test]
    fn jitter_is_deterministic_per_sequence() {
        // The jitter amount is a pure function of the frame sequence number;
        // two links configured identically delay identically.
        let jitter = 1000u64;
        let a: Vec<u64> = (1..=10u64)
            .map(|seq| seq.wrapping_mul(JITTER_HASH) % (jitter + 1))
            .collect();
        let b: Vec<u64> = (1..=10u64)
            .map(|seq| seq.wrapping_mul(JITTER_HASH) % (jitter + 1))
            .collect();
        assert_eq!(a, b);
        // And it actually varies between frames.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }
}
