//! Shared state machine backing the optimistic protocol family.
//!
//! OCC-BC, OCC-DA, OCC-TI and OCC-DATI differ only in three policy switches
//! (see the crate docs): whether conflicts with active transactions restart
//! them outright (*broadcast*) or shrink their timestamp interval, whether
//! committed-state constraints are applied *eagerly* at access time, and
//! whether the validating transaction may take a *backward* serialization
//! timestamp (one lying before already committed timestamps). [`OccCore`]
//! implements the full mechanism; each protocol is a named configuration.
//!
//! ## Locking
//!
//! The controller state is split three ways so the read-phase hooks
//! ([`OccCore::on_read`] / [`OccCore::on_write`]) never contend on a global
//! lock:
//!
//! * **Transaction shards** — the active set is partitioned into
//!   [`SHARD_COUNT`] shards keyed by `TxnId`. Hooks touch exactly one shard.
//! * **Clock state** — the serialization-timestamp allocator and the CSN
//!   counter sit behind one short-lived mutex taken only during validation.
//! * **Validation mutex** — validations are serialized against each other
//!   (the store must always reflect a prefix of the validation order), but
//!   a validator only blocks hooks shard-by-shard while it scans for
//!   conflicts, not for its whole critical section.
//!
//! A hook that slips in between a validator's conflict scan of its shard
//! and the store install is harmless: the backward-validation pass
//! ([`committed_constraints`]) re-checks every access against the committed
//! store state when that transaction validates, so a missed dynamic
//! adjustment surfaces there at the latest.

use crate::interval::TsInterval;
use crate::traits::{
    AccessDecision, CcPriority, CcStats, Csn, Protocol, RestartReason, ValidationOutcome,
};
use parking_lot::Mutex;
use rodain_store::{FxHashMap, FxHashSet, ObjectId, Store, Ts, TxnId, Workspace};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Spacing between consecutive *forward* serialization timestamps.
///
/// Forward commits advance the global clock by this stride, leaving a gap of
/// `CLOCK_STRIDE - 1` timestamps below each committed timestamp into which
/// later backward commits (transactions re-serialized *before* a committed
/// one) can be placed without colliding.
pub const CLOCK_STRIDE: u64 = 1 << 20;

/// How far below the clock assigned timestamps are remembered. Transactions
/// whose upper bound falls behind this horizon restart with
/// [`RestartReason::Stale`]; this bounds allocator memory on long runs.
const PRUNE_KEEP: u64 = 64 * CLOCK_STRIDE;

/// Maximum probes when searching a free backward slot.
const BACKWARD_SCAN_LIMIT: u32 = 64;

/// Number of transaction shards. Power of two so the shard index is a mask.
pub const SHARD_COUNT: usize = 16;

/// Per-transaction bookkeeping.
struct ActiveTxn {
    interval: TsInterval,
    reads: FxHashSet<ObjectId>,
    writes: FxHashSet<ObjectId>,
    doomed: Option<RestartReason>,
    #[allow(dead_code)] // priorities drive victim choice in 2PL-HP only
    priority: CcPriority,
}

impl ActiveTxn {
    fn new(priority: CcPriority) -> Self {
        ActiveTxn {
            interval: TsInterval::FULL,
            reads: FxHashSet::default(),
            writes: FxHashSet::default(),
            doomed: None,
            priority,
        }
    }
}

/// One slice of the active set. Hooks lock exactly one shard.
#[derive(Default)]
struct TxnShard {
    active: FxHashMap<TxnId, ActiveTxn>,
}

/// Timestamp allocator + CSN counter: the short global critical section.
struct ClockState {
    /// Last forward serialization timestamp assigned.
    clock: u64,
    /// Recently assigned serialization timestamps (pruned to the horizon).
    assigned: BTreeSet<u64>,
    next_csn: Csn,
}

/// Monotone counters updated with relaxed atomics; no lock on any hot path.
#[derive(Default)]
struct AtomicCcStats {
    commits: AtomicU64,
    self_restarts: AtomicU64,
    victim_restarts: AtomicU64,
    backward_commits: AtomicU64,
    adjustments: AtomicU64,
}

impl AtomicCcStats {
    fn snapshot(&self) -> CcStats {
        CcStats {
            commits: self.commits.load(Ordering::Relaxed),
            self_restarts: self.self_restarts.load(Ordering::Relaxed),
            victim_restarts: self.victim_restarts.load(Ordering::Relaxed),
            backward_commits: self.backward_commits.load(Ordering::Relaxed),
            adjustments: self.adjustments.load(Ordering::Relaxed),
            blocks: 0, // 2PL only
        }
    }
}

impl ClockState {
    fn prune_floor(&self) -> u64 {
        self.clock.saturating_sub(PRUNE_KEEP)
    }

    /// Pick a serialization timestamp from `iv`.
    fn choose_ser_ts(
        &mut self,
        iv: TsInterval,
        allow_backward: bool,
    ) -> Result<(u64, bool), RestartReason> {
        debug_assert!(!iv.is_empty());
        let forward = self.clock.saturating_add(CLOCK_STRIDE);
        if iv.contains(forward) {
            self.clock = forward;
            self.assigned.insert(forward);
            let floor = self.prune_floor();
            // Amortized O(1): each timestamp is inserted and removed once.
            while let Some(&oldest) = self.assigned.first() {
                if oldest >= floor {
                    break;
                }
                self.assigned.remove(&oldest);
            }
            return Ok((forward, false));
        }
        // The clock lags committed state when an engine is rebuilt over a
        // store that already carries high write timestamps (mirror
        // promotion after a primary crash, cold-start recovery). An
        // interval unbounded above whose lower bound clears the clock is
        // that case — not a genuine backward squeeze — so jump the clock
        // past the inherited timestamps instead of committing at u64::MAX
        // and wedging every later writer of the same objects.
        if iv.ub == u64::MAX && iv.lb > forward {
            let jumped = iv.lb.saturating_add(CLOCK_STRIDE);
            self.clock = jumped;
            self.assigned.insert(jumped);
            return Ok((jumped, false));
        }
        if !allow_backward {
            return Err(RestartReason::EmptyInterval);
        }
        // Backward commit: place the transaction just below its upper bound,
        // skipping already-assigned slots.
        let floor = self.prune_floor();
        if iv.ub < floor {
            return Err(RestartReason::Stale);
        }
        let mut ts = iv.ub;
        let mut probes = 0u32;
        while self.assigned.contains(&ts) {
            probes += 1;
            if probes > BACKWARD_SCAN_LIMIT || ts == 0 {
                return Err(RestartReason::EmptyInterval);
            }
            ts -= 1;
        }
        if ts < iv.lb || ts < floor || ts == 0 {
            // ts 0 is reserved for the initial database load.
            return Err(RestartReason::EmptyInterval);
        }
        self.assigned.insert(ts);
        Ok((ts, true))
    }
}

/// Policy switches distinguishing the optimistic protocols.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OccPolicy {
    pub protocol: Protocol,
    /// Restart conflicting active transactions instead of adjusting them.
    pub broadcast: bool,
    /// Apply committed-state constraints at access time (OCC-TI).
    pub eager: bool,
    /// Allow the validating transaction to commit at a timestamp lying
    /// before already committed ones (OCC-TI / OCC-DATI).
    pub allow_backward: bool,
}

/// The shared optimistic-controller engine. See the module docs.
pub(crate) struct OccCore {
    /// Active-transaction bookkeeping, partitioned by `TxnId`.
    shards: [Mutex<TxnShard>; SHARD_COUNT],
    /// Timestamp allocator + CSN counter: the short global section.
    clock: Mutex<ClockState>,
    /// Serializes [`OccCore::validate`] bodies against each other.
    validation: Mutex<()>,
    stats: AtomicCcStats,
    policy: OccPolicy,
}

impl OccCore {
    pub(crate) fn new(policy: OccPolicy) -> Self {
        OccCore {
            shards: std::array::from_fn(|_| Mutex::new(TxnShard::default())),
            clock: Mutex::new(ClockState {
                clock: 0,
                assigned: BTreeSet::new(),
                next_csn: Csn::FIRST,
            }),
            validation: Mutex::new(()),
            stats: AtomicCcStats::default(),
            policy,
        }
    }

    fn shard(&self, txn: TxnId) -> &Mutex<TxnShard> {
        &self.shards[txn.0 as usize & (SHARD_COUNT - 1)]
    }

    pub(crate) fn protocol(&self) -> Protocol {
        self.policy.protocol
    }

    pub(crate) fn begin(&self, txn: TxnId, priority: CcPriority) {
        let mut sh = self.shard(txn).lock();
        sh.active.insert(txn, ActiveTxn::new(priority));
    }

    pub(crate) fn on_read(&self, txn: TxnId, oid: ObjectId, observed_wts: Ts) -> AccessDecision {
        let mut sh = self.shard(txn).lock();
        let Some(a) = sh.active.get_mut(&txn) else {
            return AccessDecision::Proceed;
        };
        if let Some(reason) = a.doomed {
            return AccessDecision::Restart(reason);
        }
        a.reads.insert(oid);
        if self.policy.eager {
            // OCC-TI prunes the interval at every access: the read must
            // serialize after the version it observed.
            if !a.interval.after(observed_wts) {
                a.doomed = Some(RestartReason::EmptyInterval);
                self.stats.self_restarts.fetch_add(1, Ordering::Relaxed);
                return AccessDecision::Restart(RestartReason::EmptyInterval);
            }
        }
        AccessDecision::Proceed
    }

    pub(crate) fn on_write(&self, txn: TxnId, oid: ObjectId, store: &Store) -> AccessDecision {
        let mut sh = self.shard(txn).lock();
        let Some(a) = sh.active.get_mut(&txn) else {
            return AccessDecision::Proceed;
        };
        if let Some(reason) = a.doomed {
            return AccessDecision::Restart(reason);
        }
        a.writes.insert(oid);
        if self.policy.eager {
            // OCC-TI: a write must serialize after every committed reader
            // and writer of the object known so far.
            if let Some((wts, rts)) = store.version(oid) {
                let ok = a.interval.after(wts) && a.interval.after(rts);
                if !ok {
                    a.doomed = Some(RestartReason::EmptyInterval);
                    self.stats.self_restarts.fetch_add(1, Ordering::Relaxed);
                    return AccessDecision::Restart(RestartReason::EmptyInterval);
                }
            }
        }
        AccessDecision::Proceed
    }

    pub(crate) fn doomed(&self, txn: TxnId) -> Option<RestartReason> {
        let sh = self.shard(txn).lock();
        sh.active.get(&txn).and_then(|a| a.doomed)
    }

    pub(crate) fn remove(&self, txn: TxnId) {
        let mut sh = self.shard(txn).lock();
        sh.active.remove(&txn);
    }

    pub(crate) fn active_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().active.len()).sum()
    }

    pub(crate) fn stats(&self) -> CcStats {
        self.stats.snapshot()
    }

    /// Restart the validating transaction: count it and drop its entry.
    fn self_restart(&self, txn: TxnId, reason: RestartReason) -> ValidationOutcome {
        self.stats.self_restarts.fetch_add(1, Ordering::Relaxed);
        self.remove(txn);
        ValidationOutcome::Restart(reason)
    }

    /// Atomic validation (see [`crate::ConcurrencyController::validate`]).
    pub(crate) fn validate(&self, ws: &Workspace, store: &Store) -> ValidationOutcome {
        let txn = ws.txn();
        // Validations are serialized: the conflict scan, the store install
        // and the CSN draw must together appear atomic to other validators.
        // Hooks are NOT blocked by this — they only take their shard lock.
        let _serial = self.validation.lock();

        // 1. The transaction may have been doomed while it was finishing its
        //    read phase.
        let stored_interval = {
            let mut sh = self.shard(txn).lock();
            match sh.active.get(&txn) {
                Some(a) => {
                    if let Some(reason) = a.doomed {
                        sh.active.remove(&txn);
                        drop(sh);
                        self.stats.self_restarts.fetch_add(1, Ordering::Relaxed);
                        return ValidationOutcome::Restart(reason);
                    }
                    a.interval
                }
                None => TsInterval::FULL,
            }
        };

        // 2. Committed-state constraints (the backward-validation part).
        let mut iv = stored_interval;
        if let Err(reason) = committed_constraints(ws, store, &mut iv) {
            return self.self_restart(txn, reason);
        }

        // 3. Choose the serialization timestamp (short global section).
        let chosen = self
            .clock
            .lock()
            .choose_ser_ts(iv, self.policy.allow_backward);
        let (ser_ts, backward) = match chosen {
            Ok(v) => v,
            Err(reason) => return self.self_restart(txn, reason),
        };

        // 4. Resolve conflicts with the remaining active transactions:
        //    broadcast commit restarts them; dynamic adjustment shrinks
        //    their intervals and restarts only those left with an empty one.
        //    The scan locks one shard at a time.
        let v_writes: FxHashSet<ObjectId> = ws.writes().iter().map(|(oid, _)| *oid).collect();
        let v_reads: FxHashSet<ObjectId> = ws.reads().map(|(oid, _)| oid).collect();
        let mut victims = Vec::new();
        let ts = Ts(ser_ts);
        let broadcast = self.policy.broadcast;
        let mut adjustments = 0u64;
        for shard in &self.shards {
            let mut sh = shard.lock();
            for (id, a) in sh.active.iter_mut() {
                if *id == txn || a.doomed.is_some() {
                    continue;
                }
                let reads_hit =
                    !v_writes.is_empty() && a.reads.iter().any(|o| v_writes.contains(o));
                let ww_hit = !v_writes.is_empty() && a.writes.iter().any(|o| v_writes.contains(o));
                let wr_hit = !v_reads.is_empty() && a.writes.iter().any(|o| v_reads.contains(o));
                if broadcast {
                    if reads_hit || ww_hit {
                        a.doomed = Some(RestartReason::BroadcastConflict);
                        victims.push(*id);
                    }
                    continue;
                }
                let mut ok = true;
                let mut touched = false;
                if reads_hit {
                    // A read an object we are overwriting: A saw the old
                    // version, so A serializes before us.
                    ok &= a.interval.before(ts);
                    touched = true;
                }
                if ww_hit {
                    // A's deferred write will overwrite ours: A after us.
                    ok &= a.interval.after(ts);
                    touched = true;
                }
                if wr_hit {
                    // We read committed state that A is about to overwrite; we
                    // did not see A's write, so A serializes after us.
                    ok &= a.interval.after(ts);
                    touched = true;
                }
                if touched {
                    adjustments += 1;
                    if !ok {
                        a.doomed = Some(RestartReason::EmptyInterval);
                        victims.push(*id);
                    }
                }
            }
        }
        self.stats
            .adjustments
            .fetch_add(adjustments, Ordering::Relaxed);
        self.stats
            .victim_restarts
            .fetch_add(victims.len() as u64, Ordering::Relaxed);

        // 5. Install the after-images inside the critical section: the store
        //    always reflects a prefix of the validation order.
        ws.install_into(store, ts);

        let csn = {
            let mut clock = self.clock.lock();
            let csn = clock.next_csn;
            clock.next_csn = csn.next();
            csn
        };
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        if backward {
            self.stats.backward_commits.fetch_add(1, Ordering::Relaxed);
        }
        self.remove(txn);
        ValidationOutcome::Commit {
            ser_ts: ts,
            csn,
            victims,
        }
    }
}

/// Apply the constraints the committed store state imposes on the
/// validating transaction's interval.
fn committed_constraints(
    ws: &Workspace,
    store: &Store,
    iv: &mut TsInterval,
) -> Result<(), RestartReason> {
    for (oid, obs) in ws.reads() {
        // The read must serialize after the version it observed (after the
        // initial load, for objects read at wts 0 or found missing).
        if !iv.after(obs.wts) {
            return Err(RestartReason::EmptyInterval);
        }
        match store.version(oid) {
            // Someone overwrote the object after we read it: we must
            // serialize before that writer. (Classical OCC restarts here;
            // timestamp intervals often save the commit.)
            Some((cur_wts, _)) if cur_wts > obs.wts && !iv.before(cur_wts) => {
                return Err(RestartReason::EmptyInterval);
            }
            Some(_) => {}
            None if obs.existed => {
                // The object was deleted after we read it. The deleter's
                // timestamp is gone with the entry; be conservative.
                return Err(RestartReason::EmptyInterval);
            }
            None => {}
        }
    }
    for (oid, _) in ws.writes() {
        if let Some((wts, rts)) = store.version(*oid) {
            // Our write must come after every committed reader and writer.
            if !(iv.after(wts) && iv.after(rts)) {
                return Err(RestartReason::EmptyInterval);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dati_core() -> OccCore {
        OccCore::new(OccPolicy {
            protocol: Protocol::OccDati,
            broadcast: false,
            eager: false,
            allow_backward: true,
        })
    }

    fn store_with(n: u64) -> Store {
        let s = Store::new();
        for i in 0..n {
            s.load_initial(ObjectId(i), rodain_store::Value::Int(i as i64));
        }
        s
    }

    #[test]
    fn forward_timestamps_advance_by_stride() {
        let core = dati_core();
        let store = store_with(4);
        for k in 1..=3u64 {
            let txn = TxnId(k);
            core.begin(txn, CcPriority(1));
            let mut ws = Workspace::new(txn);
            ws.read(&store, ObjectId(0));
            match core.validate(&ws, &store) {
                ValidationOutcome::Commit { ser_ts, csn, .. } => {
                    assert_eq!(ser_ts, Ts(k * CLOCK_STRIDE));
                    assert_eq!(csn, Csn(k));
                }
                other => panic!("expected commit, got {other:?}"),
            }
        }
    }

    #[test]
    fn inherited_high_timestamps_jump_the_clock_forward() {
        // A promoted mirror (or a recovered node) starts a fresh controller
        // whose clock is 0, over a store whose objects already carry large
        // write timestamps from the previous incarnation. Commits must jump
        // the clock past the inherited timestamps — not land at u64::MAX —
        // so the same object can be written again and again.
        let core = dati_core();
        let store = store_with(2);
        let inherited = Ts(500 * CLOCK_STRIDE);
        store.install(ObjectId(0), rodain_store::Value::Int(7), inherited);

        let mut last_ts = inherited;
        for k in 1..=3u64 {
            let txn = TxnId(k);
            core.begin(txn, CcPriority(1));
            let mut ws = Workspace::new(txn);
            ws.read(&store, ObjectId(0));
            ws.write(ObjectId(0), rodain_store::Value::Int(7 + k as i64));
            match core.validate(&ws, &store) {
                ValidationOutcome::Commit { ser_ts, .. } => {
                    assert!(ser_ts > last_ts, "{ser_ts:?} !> {last_ts:?}");
                    assert!(
                        ser_ts.0 < inherited.0 + 10 * CLOCK_STRIDE,
                        "clock overshot: {ser_ts:?}"
                    );
                    last_ts = ser_ts;
                }
                other => panic!("expected commit, got {other:?}"),
            }
        }
    }

    #[test]
    fn backward_commit_saves_stale_reader() {
        let core = dati_core();
        let store = store_with(4);

        // R reads object 0, then W overwrites object 0 and commits.
        let r = TxnId(1);
        core.begin(r, CcPriority(1));
        let mut ws_r = Workspace::new(r);
        ws_r.read(&store, ObjectId(0));

        let w = TxnId(2);
        core.begin(w, CcPriority(1));
        let mut ws_w = Workspace::new(w);
        ws_w.read(&store, ObjectId(0));
        ws_w.write(ObjectId(0), rodain_store::Value::Int(99));
        let out_w = core.validate(&ws_w, &store);
        let w_ts = match out_w {
            ValidationOutcome::Commit {
                ser_ts, victims, ..
            } => {
                // R's interval was capped, not restarted.
                assert!(victims.is_empty());
                ser_ts
            }
            other => panic!("{other:?}"),
        };

        // R writes a DIFFERENT object and validates: classical OCC would
        // restart it; DATI commits it backward, before W.
        ws_r.write(ObjectId(1), rodain_store::Value::Int(-1));
        match core.validate(&ws_r, &store) {
            ValidationOutcome::Commit { ser_ts, .. } => {
                assert!(ser_ts < w_ts, "stale reader serialized before writer");
            }
            other => panic!("expected backward commit, got {other:?}"),
        }
        assert_eq!(core.stats().backward_commits, 1);
    }

    #[test]
    fn no_backward_policy_restarts_stale_reader() {
        let core = OccCore::new(OccPolicy {
            protocol: Protocol::OccDa,
            broadcast: false,
            eager: false,
            allow_backward: false,
        });
        let store = store_with(4);
        let r = TxnId(1);
        core.begin(r, CcPriority(1));
        let mut ws_r = Workspace::new(r);
        ws_r.read(&store, ObjectId(0));

        let w = TxnId(2);
        core.begin(w, CcPriority(1));
        let mut ws_w = Workspace::new(w);
        ws_w.write(ObjectId(0), rodain_store::Value::Int(99));
        assert!(core.validate(&ws_w, &store).is_commit());

        ws_r.write(ObjectId(1), rodain_store::Value::Int(-1));
        match core.validate(&ws_r, &store) {
            ValidationOutcome::Restart(RestartReason::EmptyInterval) => {}
            other => panic!("expected restart, got {other:?}"),
        }
    }

    #[test]
    fn broadcast_restarts_conflicting_readers() {
        let core = OccCore::new(OccPolicy {
            protocol: Protocol::OccBc,
            broadcast: true,
            eager: false,
            allow_backward: false,
        });
        let store = store_with(4);

        let r = TxnId(1);
        core.begin(r, CcPriority(1));
        let mut ws_r = Workspace::new(r);
        ws_r.read(&store, ObjectId(0));
        // Register the read with the controller (engine does this).
        core.on_read(r, ObjectId(0), Ts::ZERO);

        let w = TxnId(2);
        core.begin(w, CcPriority(1));
        let mut ws_w = Workspace::new(w);
        ws_w.write(ObjectId(0), rodain_store::Value::Int(99));
        match core.validate(&ws_w, &store) {
            ValidationOutcome::Commit { victims, .. } => {
                assert_eq!(victims, vec![r]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(core.doomed(r), Some(RestartReason::BroadcastConflict));
        // The doomed reader's own validation restarts it.
        match core.validate(&ws_r, &store) {
            ValidationOutcome::Restart(RestartReason::BroadcastConflict) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn write_write_conflict_serializes_later_writer_after() {
        let core = dati_core();
        let store = store_with(4);

        // A buffers a write to object 0 and registers it.
        let a = TxnId(1);
        core.begin(a, CcPriority(1));
        core.on_write(a, ObjectId(0), &store);
        let mut ws_a = Workspace::new(a);
        ws_a.write(ObjectId(0), rodain_store::Value::Int(1));

        // V commits a write to object 0 first.
        let v = TxnId(2);
        core.begin(v, CcPriority(1));
        let mut ws_v = Workspace::new(v);
        ws_v.write(ObjectId(0), rodain_store::Value::Int(2));
        let v_ts = match core.validate(&ws_v, &store) {
            ValidationOutcome::Commit {
                ser_ts, victims, ..
            } => {
                assert!(victims.is_empty(), "A is adjusted after V, not doomed");
                ser_ts
            }
            other => panic!("{other:?}"),
        };

        // A validates later: it must serialize after V. The committed-state
        // check (wts of object 0) also forces this.
        match core.validate(&ws_a, &store) {
            ValidationOutcome::Commit { ser_ts, .. } => assert!(ser_ts > v_ts),
            other => panic!("{other:?}"),
        }
        // Final value is A's.
        assert_eq!(
            store.read(ObjectId(0)).unwrap().0,
            rodain_store::Value::Int(1)
        );
    }

    #[test]
    fn squeezed_interval_restarts_victim() {
        let core = dati_core();
        let store = store_with(4);

        // A reads object 0 (so A must precede any writer of 0) and buffers a
        // write to object 1 (so any reader of 1 that validates first pushes
        // A after itself).
        let a = TxnId(1);
        core.begin(a, CcPriority(1));
        core.on_read(a, ObjectId(0), Ts::ZERO);
        core.on_write(a, ObjectId(1), &store);

        // V1 reads object 1 and commits (A must be after V1).
        let v1 = TxnId(2);
        core.begin(v1, CcPriority(1));
        let mut ws1 = Workspace::new(v1);
        ws1.read(&store, ObjectId(1));
        ws1.write(ObjectId(3), rodain_store::Value::Int(3));
        assert!(core.validate(&ws1, &store).is_commit());

        // V2 writes object 0 and commits (A must be before V2). But V2's
        // timestamp is above V1's, and A must also be after V1 … the
        // interval squeezes to the gap between them, which is fine —
        let v2 = TxnId(3);
        core.begin(v2, CcPriority(1));
        let mut ws2 = Workspace::new(v2);
        ws2.write(ObjectId(0), rodain_store::Value::Int(9));
        match core.validate(&ws2, &store) {
            ValidationOutcome::Commit { victims, .. } => assert!(victims.is_empty()),
            other => panic!("{other:?}"),
        }
        // — A commits backward into the gap between ts(V1) and ts(V2).
        let mut ws_a = Workspace::new(a);
        ws_a.note_read(ObjectId(0), Ts::ZERO, true);
        ws_a.write(ObjectId(1), rodain_store::Value::Int(1));
        assert!(core.validate(&ws_a, &store).is_commit());
    }

    #[test]
    fn victim_when_interval_truly_empty() {
        let core = dati_core();
        let store = store_with(4);

        // A reads object 0.
        let a = TxnId(1);
        core.begin(a, CcPriority(1));
        core.on_read(a, ObjectId(0), Ts::ZERO);

        // V1 writes object 0 → A before ts(V1).
        let v1 = TxnId(2);
        core.begin(v1, CcPriority(1));
        let mut ws1 = Workspace::new(v1);
        ws1.write(ObjectId(0), rodain_store::Value::Int(7));
        assert!(core.validate(&ws1, &store).is_commit());

        // A now also reads object 1…
        core.on_read(a, ObjectId(1), Ts::ZERO);
        // …and V2 writes BOTH object 1 (→ A before ts(V2)) and reads — no:
        // make V2 read an object A wrote so A must be AFTER V2, while A must
        // be BEFORE V1 < V2. First A buffers a write:
        core.on_write(a, ObjectId(2), &store);
        let v2 = TxnId(3);
        core.begin(v2, CcPriority(1));
        let mut ws2 = Workspace::new(v2);
        ws2.read(&store, ObjectId(2)); // A's pending write target
        ws2.write(ObjectId(3), rodain_store::Value::Int(1));
        match core.validate(&ws2, &store) {
            ValidationOutcome::Commit { victims, .. } => {
                // A must be before V1 (read-write on 0) and after V2
                // (write-read on 2), but ts(V2) > ts(V1): empty interval.
                assert_eq!(victims, vec![a]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(core.doomed(a), Some(RestartReason::EmptyInterval));
    }

    #[test]
    fn eager_policy_dooms_at_access_time() {
        let core = OccCore::new(OccPolicy {
            protocol: Protocol::OccTi,
            broadcast: false,
            eager: true,
            allow_backward: true,
        });
        let store = store_with(4);

        let a = TxnId(1);
        core.begin(a, CcPriority(1));
        core.on_read(a, ObjectId(0), Ts::ZERO);

        // V commits a write to object 0: A's ub is capped below ts(V).
        let v = TxnId(2);
        core.begin(v, CcPriority(1));
        let mut ws = Workspace::new(v);
        ws.write(ObjectId(0), rodain_store::Value::Int(9));
        let v_ts = match core.validate(&ws, &store) {
            ValidationOutcome::Commit { ser_ts, .. } => ser_ts,
            other => panic!("{other:?}"),
        };

        // Eager: A's next access — a write that must serialize after the
        // new committed version (wts = ts(V)) — is detected immediately.
        match core.on_write(a, ObjectId(0), &store) {
            AccessDecision::Restart(RestartReason::EmptyInterval) => {}
            other => panic!("expected eager restart, got {other:?} (v_ts={v_ts:?})"),
        }
    }

    #[test]
    fn remove_is_idempotent() {
        let core = dati_core();
        core.begin(TxnId(1), CcPriority(1));
        assert_eq!(core.active_count(), 1);
        core.remove(TxnId(1));
        core.remove(TxnId(1));
        assert_eq!(core.active_count(), 0);
    }

    #[test]
    fn read_only_transactions_never_conflict() {
        let core = dati_core();
        let store = store_with(8);
        let mut txns = Vec::new();
        for k in 1..=5u64 {
            let t = TxnId(k);
            core.begin(t, CcPriority(1));
            let mut ws = Workspace::new(t);
            ws.read(&store, ObjectId(k % 8));
            ws.read(&store, ObjectId((k + 1) % 8));
            core.on_read(t, ObjectId(k % 8), Ts::ZERO);
            core.on_read(t, ObjectId((k + 1) % 8), Ts::ZERO);
            txns.push(ws);
        }
        for ws in &txns {
            match core.validate(ws, &store) {
                ValidationOutcome::Commit { victims, .. } => assert!(victims.is_empty()),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(core.stats().commits, 5);
        assert_eq!(core.stats().self_restarts, 0);
    }

    #[test]
    fn eight_thread_hammer_keeps_stats_and_csns_consistent() {
        // Drive the sharded controller from 8 threads mixing contended and
        // private accesses, then check the global invariants the sharding
        // must preserve: every attempt ends in exactly one commit or one
        // self-restart, CSNs come out dense and unique, serialization
        // timestamps never collide, and no entry leaks from any shard.
        use std::sync::Arc;

        const THREADS: u64 = 8;
        const ATTEMPTS: u64 = 300;

        let core = Arc::new(dati_core());
        let store = Arc::new(store_with(8));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let core = Arc::clone(&core);
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut commits = 0u64;
                let mut restarts = 0u64;
                let mut csns = Vec::new();
                let mut ser_ts = Vec::new();
                for i in 0..ATTEMPTS {
                    // Unique TxnIds that still spread across all 16 shards.
                    let txn = TxnId(1 + t + i * THREADS);
                    core.begin(txn, CcPriority(1));
                    let mut ws = Workspace::new(txn);
                    let shared = ObjectId(i % 8);
                    ws.read(&store, shared);
                    core.on_read(txn, shared, Ts::ZERO);
                    if i % 3 == 0 {
                        // Contended write: collides with other threads.
                        ws.write(shared, rodain_store::Value::Int(i as i64));
                        core.on_write(txn, shared, &store);
                    }
                    // Private write: never conflicts across threads.
                    let private = ObjectId(100 + t);
                    ws.write(private, rodain_store::Value::Int(i as i64));
                    core.on_write(txn, private, &store);
                    match core.validate(&ws, &store) {
                        ValidationOutcome::Commit { csn, ser_ts: ts, .. } => {
                            commits += 1;
                            csns.push(csn.0);
                            ser_ts.push(ts.0);
                        }
                        ValidationOutcome::Restart(_) => restarts += 1,
                    }
                }
                (commits, restarts, csns, ser_ts)
            }));
        }

        let mut total_commits = 0u64;
        let mut total_restarts = 0u64;
        let mut all_csns = Vec::new();
        let mut all_ts = Vec::new();
        for h in handles {
            let (c, r, csns, ts) = h.join().unwrap();
            total_commits += c;
            total_restarts += r;
            all_csns.extend(csns);
            all_ts.extend(ts);
        }

        // Every attempt resolved exactly one way and nothing leaked.
        assert_eq!(total_commits + total_restarts, THREADS * ATTEMPTS);
        assert_eq!(core.active_count(), 0);

        let stats = core.stats();
        assert_eq!(stats.commits, total_commits);
        assert_eq!(stats.self_restarts, total_restarts);
        // Every doomed victim eventually restarts itself at validation.
        assert!(stats.victim_restarts <= stats.self_restarts);

        // CSNs are dense: a permutation of 1..=commits.
        all_csns.sort_unstable();
        let expected: Vec<u64> = (1..=total_commits).collect();
        assert_eq!(all_csns, expected);

        // Serialization timestamps are unique across all commits.
        let distinct: std::collections::HashSet<u64> = all_ts.iter().copied().collect();
        assert_eq!(distinct.len() as u64, total_commits);

        // The contended object took plenty of traffic without wedging.
        assert!(total_commits >= THREADS * ATTEMPTS / 2, "{total_commits}");
    }
}
