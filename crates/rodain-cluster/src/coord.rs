//! The networked 2PC coordinator: drives the durable-intent protocol
//! from `DESIGN.md` §11 over peer sockets (`DESIGN.md` §16).
//!
//! The coordinator is a *client* of the cluster — it holds no shard
//! engines. Its persistent state lives entirely on the nodes: the
//! intent record on each participant shard and the decision record on
//! the coordinator shard. If the coordinator process dies at any point,
//! a later cluster-wide resolve pass ([`ClusterCoordinator::resolve_all`])
//! finishes or presumes abort for every in-flight transaction.

use crate::proto::{
    decode_reply, encode_request, ClusterProtoError, ClusterReply, ClusterRequest,
};
use parking_lot::{Mutex, RwLock};
use rodain_net::{NetError, PeerClient};
use rodain_obs::{Histogram, Recorder};
use rodain_shard::{CrashPoint, ShardMap, ShardOp, ShardRouter};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by cluster-wide operations.
#[derive(Debug)]
pub enum ClusterError {
    /// Transport failure talking to a node.
    Net(NetError),
    /// The node answered, but with an application-level error.
    Remote(String),
    /// The node's reply did not decode, or was the wrong kind.
    Proto(ClusterProtoError),
    /// A shard has no owner in the current map.
    NoOwner(usize),
    /// The transaction was presumed aborted (a participant failed to
    /// prepare); no data changed.
    PresumedAbort(String),
    /// An injected [`CrashPoint`] stopped the coordinator mid-protocol
    /// (chaos tests only).
    InjectedCrash(&'static str),
    /// The request was malformed before it ever reached the wire.
    Invalid(&'static str),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Net(e) => write!(f, "network: {e}"),
            ClusterError::Remote(m) => write!(f, "remote: {m}"),
            ClusterError::Proto(e) => write!(f, "protocol: {e}"),
            ClusterError::NoOwner(s) => write!(f, "shard {s} has no owner"),
            ClusterError::PresumedAbort(m) => write!(f, "presumed abort: {m}"),
            ClusterError::InjectedCrash(p) => write!(f, "injected crash at {p}"),
            ClusterError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> ClusterError {
        ClusterError::Net(e)
    }
}

impl From<ClusterProtoError> for ClusterError {
    fn from(e: ClusterProtoError) -> ClusterError {
        ClusterError::Proto(e)
    }
}

/// Receipt for a committed cluster transaction.
#[derive(Clone, Copy, Debug)]
pub struct ClusterReceipt {
    /// CSN of the commit point (single-shard: the data commit;
    /// cross-shard: the decision record's commit on the coordinator
    /// shard).
    pub csn: u64,
    /// Group id of a cross-shard transaction (0 for single-shard).
    pub gid: u64,
    /// Shards the transaction touched.
    pub shards: usize,
}

/// Outcome of a cluster-wide resolve sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResolveReport {
    /// Intents rolled forward (decision record found).
    pub rolled_forward: u64,
    /// Intents presumed aborted (coordinator reachable, no decision).
    pub aborted: u64,
    /// Decision records garbage-collected in the second pass.
    pub decisions_gced: u64,
}

/// A 2PC coordinator and migration driver speaking the peer protocol.
pub struct ClusterCoordinator {
    map: RwLock<ShardMap>,
    router: ShardRouter,
    peers: Mutex<HashMap<String, Arc<PeerClient>>>,
    recorder: Recorder,
    prepare_hist: Histogram,
    next_id: AtomicU64,
    timeout: Duration,
}

impl ClusterCoordinator {
    /// Connect to any node's peer address and adopt the cluster map it
    /// serves.
    pub fn connect(seed_peer_addr: &str) -> Result<ClusterCoordinator, ClusterError> {
        ClusterCoordinator::connect_with_timeout(seed_peer_addr, Duration::from_secs(5))
    }

    /// [`ClusterCoordinator::connect`] with an explicit per-call
    /// timeout.
    pub fn connect_with_timeout(
        seed_peer_addr: &str,
        timeout: Duration,
    ) -> Result<ClusterCoordinator, ClusterError> {
        let recorder = Recorder::new();
        let prepare_hist = recorder.histogram("cluster_2pc_remote_prepare_ns");
        let mut coordinator = ClusterCoordinator {
            map: RwLock::new(ShardMap::single(1, "", seed_peer_addr)),
            router: ShardRouter::new(1),
            peers: Mutex::new(HashMap::new()),
            recorder,
            prepare_hist,
            next_id: AtomicU64::new(1),
            timeout,
        };
        let map = coordinator.fetch_map(seed_peer_addr)?;
        coordinator.router = ShardRouter::new(map.owners.len());
        *coordinator.map.write() = map;
        Ok(coordinator)
    }

    /// The coordinator's current view of the cluster map.
    #[must_use]
    pub fn map(&self) -> ShardMap {
        self.map.read().clone()
    }

    /// Metrics recorder (`cluster_2pc_remote_prepare_ns`).
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    pub(crate) fn adopt_map(&self, map: ShardMap) {
        let mut cur = self.map.write();
        if map.epoch > cur.epoch {
            *cur = map;
        }
    }

    fn peer(&self, addr: &str) -> Arc<PeerClient> {
        let mut peers = self.peers.lock();
        Arc::clone(
            peers
                .entry(addr.to_string())
                .or_insert_with(|| Arc::new(PeerClient::new(addr))),
        )
    }

    /// One correlated request/reply exchange with the node at `addr`.
    ///
    /// An undecodable or mismatched reply also drops the cached
    /// connection: a frame that does not answer this request belongs to
    /// an earlier, abandoned one, and keeping the connection would let
    /// the next call consume another stale reply.
    pub(crate) fn call(
        &self,
        addr: &str,
        request: &ClusterRequest,
    ) -> Result<ClusterReply, ClusterError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = encode_request(id, request);
        let peer = self.peer(addr);
        let raw = peer.call(frame, self.timeout)?;
        let (got_id, reply) = match decode_reply(raw) {
            Ok(decoded) => decoded,
            Err(e) => {
                peer.disconnect();
                return Err(ClusterError::Proto(e));
            }
        };
        if got_id != id {
            peer.disconnect();
            return Err(ClusterError::Proto(ClusterProtoError::Malformed(
                "reply id does not match request",
            )));
        }
        match reply {
            ClusterReply::Err { message } => Err(ClusterError::Remote(message)),
            other => Ok(other),
        }
    }

    pub(crate) fn owner_peer(&self, shard: usize) -> Result<String, ClusterError> {
        self.map
            .read()
            .owner(shard)
            .map(|o| o.peer_addr.clone())
            .ok_or(ClusterError::NoOwner(shard))
    }

    /// Every distinct peer address in the current map.
    #[must_use]
    pub fn peer_addrs(&self) -> Vec<String> {
        let map = self.map.read();
        let mut addrs: Vec<String> = map.owners.iter().map(|o| o.peer_addr.clone()).collect();
        addrs.sort();
        addrs.dedup();
        addrs
    }

    /// Fetch the map one node serves.
    pub fn fetch_map(&self, peer_addr: &str) -> Result<ShardMap, ClusterError> {
        match self.call(peer_addr, &ClusterRequest::FetchMap)? {
            ClusterReply::Map { map } => Ok(map),
            _ => Err(ClusterError::Proto(ClusterProtoError::Malformed(
                "expected Map reply",
            ))),
        }
    }

    /// Push `map` to every address in `addrs` (idempotent; nodes keep
    /// the highest epoch they have seen) and adopt it locally.
    pub fn broadcast_map(&self, map: &ShardMap, addrs: &[String]) -> Result<(), ClusterError> {
        let mut first_err = None;
        for addr in addrs {
            if let Err(e) = self.call(addr, &ClusterRequest::InstallMap { map: map.clone() }) {
                first_err.get_or_insert(e);
            }
        }
        self.adopt_map(map.clone());
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Adopt the freshest map any currently-known node serves (old
    /// owners keep serving the post-cutover map, so a stale coordinator
    /// converges in one sweep).
    pub fn refresh_map(&self) {
        for addr in self.peer_addrs() {
            if let Ok(map) = self.fetch_map(&addr) {
                self.adopt_map(map);
            }
        }
    }

    /// Execute `ops` as one atomic cluster transaction.
    ///
    /// Retries once after a map refresh when the cluster answers with an
    /// application-level error or a presumed abort — both mean no data
    /// changed, so the retry cannot double-apply. Transport failures on
    /// the decision call are NOT retried (the decision may have
    /// committed); [`ClusterCoordinator::resolve_all`] settles those.
    pub fn execute(&self, ops: Vec<ShardOp>) -> Result<ClusterReceipt, ClusterError> {
        match self.execute_with_crash(ops.clone(), CrashPoint::None) {
            Err(ClusterError::Remote(_)) | Err(ClusterError::PresumedAbort(_)) => {
                self.refresh_map();
                self.execute_with_crash(ops, CrashPoint::None)
            }
            other => other,
        }
    }

    /// [`ClusterCoordinator::execute`] with an injected coordinator
    /// crash for recovery tests.
    ///
    /// Protocol (see `DESIGN.md` §16): group ops by shard; single-shard
    /// groups commit directly on the owner. Cross-shard groups write a
    /// durable intent on every participant (*prepare*), then commit a
    /// decision record on the coordinator shard — that commit IS the
    /// atomic commit point — then apply and clean up. Any failure
    /// before the decision is a presumed abort; any crash after it is
    /// rolled forward by resolve.
    pub fn execute_with_crash(
        &self,
        ops: Vec<ShardOp>,
        crash: CrashPoint,
    ) -> Result<ClusterReceipt, ClusterError> {
        if ops.is_empty() {
            return Err(ClusterError::Invalid("empty transaction"));
        }
        let mut groups: Vec<(usize, Vec<ShardOp>)> = Vec::new();
        for op in ops {
            let shard = self.router.route(op.oid());
            match groups.iter_mut().find(|(s, _)| *s == shard) {
                Some((_, group)) => group.push(op),
                None => groups.push((shard, vec![op])),
            }
        }
        if groups.len() == 1 {
            let (shard, ops) = groups.pop().expect("one group");
            let addr = self.owner_peer(shard)?;
            return match self.call(
                &addr,
                &ClusterRequest::Commit {
                    shard: shard as u64,
                    ops,
                },
            )? {
                ClusterReply::Committed { csn } => Ok(ClusterReceipt {
                    csn,
                    gid: 0,
                    shards: 1,
                }),
                _ => Err(ClusterError::Proto(ClusterProtoError::Malformed(
                    "expected Committed reply",
                ))),
            };
        }

        let coordinator_shard = groups[0].0;
        let coord_addr = self.owner_peer(coordinator_shard)?;
        let gid = match self.call(
            &coord_addr,
            &ClusterRequest::AllocGid {
                shard: coordinator_shard as u64,
            },
        )? {
            ClusterReply::Gid { gid } => gid,
            _ => {
                return Err(ClusterError::Proto(ClusterProtoError::Malformed(
                    "expected Gid reply",
                )))
            }
        };

        // Phase 1: durable intents on every participant.
        let mut prepared: Vec<usize> = Vec::new();
        for (shard, group) in &groups {
            let addr = self.owner_peer(*shard)?;
            let started = Instant::now();
            let outcome = self.call(
                &addr,
                &ClusterRequest::Prepare {
                    gid,
                    coordinator_shard: coordinator_shard as u64,
                    shard: *shard as u64,
                    ops: group.clone(),
                },
            );
            self.prepare_hist
                .record(started.elapsed().as_nanos() as u64);
            match outcome {
                Ok(ClusterReply::Prepared) => prepared.push(*shard),
                Ok(_) => {
                    self.abort_prepared(gid, &prepared);
                    return Err(ClusterError::Proto(ClusterProtoError::Malformed(
                        "expected Prepared reply",
                    )));
                }
                Err(e) => {
                    // No decision record exists, so this transaction is
                    // already aborted by presumption — tidy what we can.
                    self.abort_prepared(gid, &prepared);
                    return Err(ClusterError::PresumedAbort(e.to_string()));
                }
            }
        }

        if crash == CrashPoint::AfterPrepare {
            return Err(ClusterError::InjectedCrash("after-prepare"));
        }

        // Commit point: the decision record on the coordinator shard.
        let csn = match self.call(
            &coord_addr,
            &ClusterRequest::Decide {
                shard: coordinator_shard as u64,
                gid,
            },
        ) {
            Ok(ClusterReply::Decided { csn }) => csn,
            Ok(_) => {
                self.abort_prepared(gid, &prepared);
                return Err(ClusterError::Proto(ClusterProtoError::Malformed(
                    "expected Decided reply",
                )));
            }
            Err(e) => {
                // The decision may or may not have committed — do NOT
                // delete intents; resolve will consult the decision
                // record and finish either way.
                return Err(e);
            }
        };
        let receipt = ClusterReceipt {
            csn,
            gid,
            shards: groups.len(),
        };

        if crash == CrashPoint::AfterDecision {
            // Committed but unapplied: resolve rolls it forward.
            return Ok(receipt);
        }

        // Phase 2: apply + cleanup (all best-effort; resolve finishes
        // stragglers).
        for (shard, _) in &groups {
            if let Ok(addr) = self.owner_peer(*shard) {
                let _ = self.call(
                    &addr,
                    &ClusterRequest::Apply {
                        shard: *shard as u64,
                        gid,
                        stamp: csn as i64,
                    },
                );
                let _ = self.call(
                    &addr,
                    &ClusterRequest::Cleanup {
                        shard: *shard as u64,
                        gid,
                        decision: false,
                    },
                );
            }
        }
        let _ = self.call(
            &coord_addr,
            &ClusterRequest::Cleanup {
                shard: coordinator_shard as u64,
                gid,
                decision: true,
            },
        );
        Ok(receipt)
    }

    fn abort_prepared(&self, gid: u64, prepared: &[usize]) {
        for shard in prepared {
            if let Ok(addr) = self.owner_peer(*shard) {
                let _ = self.call(
                    &addr,
                    &ClusterRequest::Cleanup {
                        shard: *shard as u64,
                        gid,
                        decision: false,
                    },
                );
            }
        }
    }

    /// Cluster-wide recovery sweep: every node resolves its pending
    /// intents (consulting decision records over the wire), and only if
    /// *all* nodes succeed does a second pass garbage-collect the
    /// decision records (`DESIGN.md` §16 explains why GC must wait).
    pub fn resolve_all(&self) -> Result<ResolveReport, ClusterError> {
        let addrs = self.peer_addrs();
        let mut report = ResolveReport::default();
        for addr in &addrs {
            match self.call(addr, &ClusterRequest::TriggerResolve)? {
                ClusterReply::Resolved {
                    rolled_forward,
                    aborted,
                } => {
                    report.rolled_forward += rolled_forward;
                    report.aborted += aborted;
                }
                _ => {
                    return Err(ClusterError::Proto(ClusterProtoError::Malformed(
                        "expected Resolved reply",
                    )))
                }
            }
        }
        for addr in &addrs {
            if let ClusterReply::Cleaned { count } =
                self.call(addr, &ClusterRequest::GcDecisions)?
            {
                report.decisions_gced += count;
            }
        }
        Ok(report)
    }
}
