//! The primary↔mirror wire protocol.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rodain_log::{
    decode_value, encode_record_into, encode_value, CodecError, FrameDecoder, LogRecord,
};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Snapshot, Ts, TxnId, VersionedObject};
use std::fmt;

/// Messages exchanged between the Primary and the Mirror node.
///
/// Each message is encoded into one transport frame; the transport supplies
/// ordering and integrity, so no per-message checksum is added on top of the
/// record frames' own CRCs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// A batch of log records in shipping order. The Log Writer "sends the
    /// log records to the Mirror Node as soon as they are generated".
    Records(Vec<LogRecord>),
    /// Immediate acknowledgement of a commit record: "When the Mirror Node
    /// receives a commit record, it immediately sends an acknowledgment
    /// back." Arrival of this message — not any disk write — lets the
    /// primary finish the commit.
    CommitAck {
        /// Transaction whose commit record arrived.
        txn: TxnId,
        /// Its commit sequence number.
        csn: Csn,
    },
    /// Watchdog heartbeat.
    Heartbeat {
        /// Monotone sequence number per sender incarnation.
        seq: u64,
    },
    /// A recovered node announces itself and asks to become the Mirror.
    JoinRequest,
    /// One chunk of the state-transfer snapshot.
    SnapshotChunk {
        /// Chunk index (0-based).
        index: u32,
        /// Total number of chunks.
        total: u32,
        /// The objects in this chunk.
        objects: Vec<(ObjectId, VersionedObject)>,
    },
    /// State transfer complete; the live log stream resumes at `next_csn`.
    SnapshotDone {
        /// First CSN the mirror will receive over the live stream.
        next_csn: Csn,
    },
}

/// Message (de)serialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageError {
    /// Unknown message tag byte.
    UnknownTag(u8),
    /// Structurally invalid body.
    Malformed(&'static str),
    /// An embedded log record failed to decode.
    Record(CodecError),
}

impl fmt::Display for MessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            MessageError::Malformed(what) => write!(f, "malformed message: {what}"),
            MessageError::Record(e) => write!(f, "embedded record: {e}"),
        }
    }
}

impl std::error::Error for MessageError {}

impl From<CodecError> for MessageError {
    fn from(e: CodecError) -> Self {
        MessageError::Record(e)
    }
}

const TAG_RECORDS: u8 = 1;
const TAG_COMMIT_ACK: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_JOIN_REQUEST: u8 = 4;
const TAG_SNAPSHOT_CHUNK: u8 = 5;
const TAG_SNAPSHOT_DONE: u8 = 6;

impl Message {
    /// Encode into a transport frame.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encode into a caller-supplied buffer — the allocation-free variant
    /// of [`Message::encode`]. Record batches are framed with
    /// [`encode_record_into`], so no per-record frame buffer is allocated.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Message::Records(records) => {
                buf.put_u8(TAG_RECORDS);
                buf.put_u32_le(records.len() as u32);
                for r in records {
                    encode_record_into(r, buf);
                }
            }
            Message::CommitAck { txn, csn } => {
                buf.put_u8(TAG_COMMIT_ACK);
                buf.put_u64_le(txn.0);
                buf.put_u64_le(csn.0);
            }
            Message::Heartbeat { seq } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u64_le(*seq);
            }
            Message::JoinRequest => buf.put_u8(TAG_JOIN_REQUEST),
            Message::SnapshotChunk {
                index,
                total,
                objects,
            } => {
                buf.put_u8(TAG_SNAPSHOT_CHUNK);
                buf.put_u32_le(*index);
                buf.put_u32_le(*total);
                buf.put_u32_le(objects.len() as u32);
                for (oid, obj) in objects {
                    buf.put_u64_le(oid.0);
                    buf.put_u64_le(obj.wts.0);
                    buf.put_u64_le(obj.rts.0);
                    encode_value(buf, &obj.value);
                }
            }
            Message::SnapshotDone { next_csn } => {
                buf.put_u8(TAG_SNAPSHOT_DONE);
                buf.put_u64_le(next_csn.0);
            }
        }
    }

    /// Encode a batched `Records` frame from several commit groups without
    /// concatenating (or cloning) them into one vector. Decodes as a
    /// normal [`Message::Records`] holding the concatenation.
    #[must_use]
    pub fn encode_record_groups(groups: &[&[LogRecord]], size_hint: usize) -> Bytes {
        let total: usize = groups.iter().map(|g| g.len()).sum();
        let mut buf = BytesMut::with_capacity(size_hint.max(16));
        buf.put_u8(TAG_RECORDS);
        buf.put_u32_le(total as u32);
        for group in groups {
            for r in *group {
                encode_record_into(r, &mut buf);
            }
        }
        buf.freeze()
    }

    /// Decode a transport frame.
    pub fn decode(mut frame: Bytes) -> Result<Message, MessageError> {
        if frame.remaining() < 1 {
            return Err(MessageError::Malformed("empty frame"));
        }
        let tag = frame.get_u8();
        match tag {
            TAG_RECORDS => {
                if frame.remaining() < 4 {
                    return Err(MessageError::Malformed("records count"));
                }
                let n = frame.get_u32_le() as usize;
                let mut decoder = FrameDecoder::new();
                decoder.feed(&frame);
                let mut records = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    match decoder.next_record()? {
                        Some(r) => records.push(r),
                        None => return Err(MessageError::Malformed("truncated records")),
                    }
                }
                if decoder.buffered() != 0 {
                    return Err(MessageError::Malformed("trailing record bytes"));
                }
                Ok(Message::Records(records))
            }
            TAG_COMMIT_ACK => {
                if frame.remaining() < 16 {
                    return Err(MessageError::Malformed("ack body"));
                }
                Ok(Message::CommitAck {
                    txn: TxnId(frame.get_u64_le()),
                    csn: Csn(frame.get_u64_le()),
                })
            }
            TAG_HEARTBEAT => {
                if frame.remaining() < 8 {
                    return Err(MessageError::Malformed("heartbeat body"));
                }
                Ok(Message::Heartbeat {
                    seq: frame.get_u64_le(),
                })
            }
            TAG_JOIN_REQUEST => Ok(Message::JoinRequest),
            TAG_SNAPSHOT_CHUNK => {
                if frame.remaining() < 12 {
                    return Err(MessageError::Malformed("chunk header"));
                }
                let index = frame.get_u32_le();
                let total = frame.get_u32_le();
                let n = frame.get_u32_le() as usize;
                let mut objects = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    if frame.remaining() < 24 {
                        return Err(MessageError::Malformed("chunk object header"));
                    }
                    let oid = ObjectId(frame.get_u64_le());
                    let wts = Ts(frame.get_u64_le());
                    let rts = Ts(frame.get_u64_le());
                    let value = decode_value(&mut frame)?;
                    objects.push((oid, VersionedObject { value, wts, rts }));
                }
                if frame.has_remaining() {
                    return Err(MessageError::Malformed("trailing chunk bytes"));
                }
                Ok(Message::SnapshotChunk {
                    index,
                    total,
                    objects,
                })
            }
            TAG_SNAPSHOT_DONE => {
                if frame.remaining() < 8 {
                    return Err(MessageError::Malformed("snapshot done body"));
                }
                Ok(Message::SnapshotDone {
                    next_csn: Csn(frame.get_u64_le()),
                })
            }
            other => Err(MessageError::UnknownTag(other)),
        }
    }

    /// Split a snapshot into `SnapshotChunk` messages of at most
    /// `objects_per_chunk` objects (at least one chunk, even when empty,
    /// so the receiver always sees `total`).
    #[must_use]
    pub fn snapshot_chunks(snapshot: &Snapshot, objects_per_chunk: usize) -> Vec<Message> {
        let chunks = if snapshot.is_empty() {
            vec![Snapshot::default()]
        } else {
            snapshot.chunks(objects_per_chunk)
        };
        let total = chunks.len() as u32;
        chunks
            .into_iter()
            .enumerate()
            .map(|(i, c)| Message::SnapshotChunk {
                index: i as u32,
                total,
                objects: c.objects,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_log::{encode_record, Lsn, RecordKind};
    use rodain_store::Value;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Records(vec![
                LogRecord {
                    lsn: Lsn(1),
                    txn: TxnId(1),
                    kind: RecordKind::Write {
                        oid: ObjectId(5),
                        image: Value::Text("hello".into()),
                    },
                },
                LogRecord {
                    lsn: Lsn(2),
                    txn: TxnId(1),
                    kind: RecordKind::Commit {
                        csn: Csn(1),
                        ser_ts: Ts(100),
                        n_writes: 1,
                    },
                },
            ]),
            Message::CommitAck {
                txn: TxnId(9),
                csn: Csn(4),
            },
            Message::Heartbeat { seq: 77 },
            Message::JoinRequest,
            Message::SnapshotChunk {
                index: 2,
                total: 5,
                objects: vec![
                    (
                        ObjectId(1),
                        VersionedObject {
                            value: Value::Int(42),
                            wts: Ts(10),
                            rts: Ts(12),
                        },
                    ),
                    (
                        ObjectId(2),
                        VersionedObject {
                            value: Value::Record(vec![Value::Null, Value::Bytes(vec![1])]),
                            wts: Ts(0),
                            rts: Ts(0),
                        },
                    ),
                ],
            },
            Message::SnapshotDone { next_csn: Csn(123) },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for msg in sample_messages() {
            let frame = msg.encode();
            let got = Message::decode(frame).unwrap();
            assert_eq!(got, msg);
        }
    }

    #[test]
    fn empty_records_batch_roundtrips() {
        let msg = Message::Records(vec![]);
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn encode_into_matches_encode() {
        for msg in sample_messages() {
            let mut buf = BytesMut::new();
            msg.encode_into(&mut buf);
            assert_eq!(&buf.freeze()[..], &msg.encode()[..]);
        }
    }

    #[test]
    fn record_groups_decode_as_concatenated_batch() {
        let Message::Records(records) = &sample_messages()[0] else {
            panic!("first sample is Records");
        };
        let (head, tail) = records.split_at(1);
        let groups: [&[LogRecord]; 3] = [head, tail, &[]];
        let frame = Message::encode_record_groups(&groups, 0);
        assert_eq!(
            Message::decode(frame).unwrap(),
            Message::Records(records.clone())
        );
        // And the batched frame is byte-identical to the monolithic one.
        let frame = Message::encode_record_groups(&[&records[..]], 256);
        assert_eq!(&frame[..], &Message::Records(records.clone()).encode()[..]);
    }

    #[test]
    fn unknown_tag_rejected() {
        let frame = Bytes::from_static(&[0xEE]);
        assert_eq!(Message::decode(frame), Err(MessageError::UnknownTag(0xEE)));
    }

    #[test]
    fn empty_frame_rejected() {
        assert!(matches!(
            Message::decode(Bytes::new()),
            Err(MessageError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_ack_rejected() {
        let mut frame = BytesMut::new();
        frame.put_u8(TAG_COMMIT_ACK);
        frame.put_u32_le(1);
        assert!(matches!(
            Message::decode(frame.freeze()),
            Err(MessageError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_records_rejected() {
        // Claim 2 records, provide 1.
        let rec = LogRecord {
            lsn: Lsn(1),
            txn: TxnId(1),
            kind: RecordKind::Abort,
        };
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_RECORDS);
        buf.put_u32_le(2);
        buf.put_slice(&encode_record(&rec));
        assert!(matches!(
            Message::decode(buf.freeze()),
            Err(MessageError::Malformed("truncated records"))
        ));
    }

    #[test]
    fn snapshot_chunking_covers_all_objects() {
        let store = rodain_store::Store::new();
        for i in 0..25u64 {
            store.load_initial(ObjectId(i), Value::Int(i as i64));
        }
        let snap = store.snapshot();
        let msgs = Message::snapshot_chunks(&snap, 10);
        assert_eq!(msgs.len(), 3);
        let mut seen = 0;
        for (i, m) in msgs.iter().enumerate() {
            match m {
                Message::SnapshotChunk {
                    index,
                    total,
                    objects,
                } => {
                    assert_eq!(*index as usize, i);
                    assert_eq!(*total, 3);
                    seen += objects.len();
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(seen, 25);
    }

    #[test]
    fn empty_snapshot_yields_one_empty_chunk() {
        let msgs = Message::snapshot_chunks(&Snapshot::default(), 10);
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            Message::SnapshotChunk { total, objects, .. } => {
                assert_eq!(*total, 1);
                assert!(objects.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }
}
