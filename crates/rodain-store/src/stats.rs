//! Store usage statistics.

/// Point-in-time store usage statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of live objects.
    pub objects: usize,
    /// Approximate bytes of value payload plus per-object overhead.
    pub approx_bytes: usize,
    /// Number of lock shards.
    pub shards: usize,
    /// Objects in the fullest shard (a skew indicator).
    pub max_shard_objects: usize,
}

impl StoreStats {
    /// Shard balance ratio: fullest shard vs ideal even split.
    /// 1.0 is perfectly even; large values indicate hash skew.
    #[must_use]
    pub fn shard_skew(&self) -> f64 {
        if self.objects == 0 || self.shards == 0 {
            return 1.0;
        }
        let ideal = self.objects as f64 / self.shards as f64;
        self.max_shard_objects as f64 / ideal.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_of_empty_store_is_one() {
        assert_eq!(StoreStats::default().shard_skew(), 1.0);
    }

    #[test]
    fn skew_computation() {
        let stats = StoreStats {
            objects: 100,
            approx_bytes: 0,
            shards: 10,
            max_shard_objects: 20,
        };
        assert!((stats.shard_skew() - 2.0).abs() < 1e-9);
    }
}
