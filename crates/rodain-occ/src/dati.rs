//! OCC-DATI — the paper's concurrency control protocol.

use crate::active::{OccCore, OccPolicy};
use crate::traits::{
    AccessDecision, CcPriority, CcStats, ConcurrencyController, Protocol, RestartReason,
    ValidationOutcome,
};
use rodain_store::{ObjectId, Store, Ts, TxnId, Workspace};

/// Optimistic Concurrency Control with Dynamic Adjustment of serialization
/// order using Timestamp Intervals (Lindström & Raatikainen).
///
/// RODAIN's protocol, combining OCC-DA's dynamic adjustment with OCC-TI's
/// timestamp intervals. All interval work happens at validation — accesses
/// during the read phase only record the read/write sets — and the
/// validating transaction may take a serialization timestamp lying *before*
/// already committed ones, which saves transactions (typically read-only
/// ones that saw a since-overwritten version) that every restart-based
/// protocol would kill.
///
/// ```
/// use rodain_occ::{ConcurrencyController, OccDati, CcPriority};
/// use rodain_store::{Store, Value, Workspace, ObjectId, TxnId};
///
/// let store = Store::new();
/// store.load_initial(ObjectId(1), Value::Int(10));
///
/// let cc = OccDati::new();
/// let txn = TxnId(1);
/// cc.begin(txn, CcPriority(1));
/// let mut ws = Workspace::new(txn);
/// let v = ws.read(&store, ObjectId(1)).unwrap();
/// ws.write(ObjectId(1), Value::Int(v.as_int().unwrap() + 1));
/// assert!(cc.validate(&ws, &store).is_commit());
/// assert_eq!(store.read(ObjectId(1)).unwrap().0, Value::Int(11));
/// ```
pub struct OccDati {
    core: OccCore,
}

impl OccDati {
    /// Create a controller.
    #[must_use]
    pub fn new() -> Self {
        OccDati {
            core: OccCore::new(OccPolicy {
                protocol: Protocol::OccDati,
                broadcast: false,
                eager: false,
                allow_backward: true,
            }),
        }
    }
}

impl Default for OccDati {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrencyController for OccDati {
    fn protocol(&self) -> Protocol {
        self.core.protocol()
    }

    fn begin(&self, txn: TxnId, priority: CcPriority) {
        self.core.begin(txn, priority);
    }

    fn on_read(&self, txn: TxnId, oid: ObjectId, observed_wts: Ts) -> AccessDecision {
        self.core.on_read(txn, oid, observed_wts)
    }

    fn on_write(&self, txn: TxnId, oid: ObjectId, store: &Store) -> AccessDecision {
        self.core.on_write(txn, oid, store)
    }

    fn doomed(&self, txn: TxnId) -> Option<RestartReason> {
        self.core.doomed(txn)
    }

    fn validate(&self, ws: &Workspace, store: &Store) -> ValidationOutcome {
        self.core.validate(ws, store)
    }

    fn remove(&self, txn: TxnId) {
        self.core.remove(txn);
    }

    fn stats(&self) -> CcStats {
        self.core.stats()
    }

    fn active_count(&self) -> usize {
        self.core.active_count()
    }
}
