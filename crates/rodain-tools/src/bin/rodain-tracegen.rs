//! Generate and inspect the "off-line generated test files" that drive
//! RODAIN test sessions.
//!
//! ```text
//! rodain-tracegen generate --out FILE [--count N] [--rate TPS]
//!                 [--write-fraction F] [--objects N] [--seed N]
//!                 [--reads N] [--updates N] [--deadline-jitter J]
//!                 [--hotspot FRACTION:PROBABILITY]
//! rodain-tracegen info <trace-file>
//! ```

use rodain_tools::{tracegen, Args};
use rodain_workload::Trace;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rodain-tracegen generate --out FILE [--count N] [--rate TPS] \
         [--write-fraction F] [--objects N] [--seed N] [--hotspot F:P] …\n  \
         rodain-tracegen info <trace-file>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    match args.positional.first().map(String::as_str) {
        Some("generate") => {
            let Some(out) = args.options.get("out").cloned() else {
                eprintln!("generate requires --out FILE");
                return usage();
            };
            let spec = match tracegen::spec_from_args(&args) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("invalid parameters: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match tracegen::generate_to_file(spec, std::path::Path::new(&out)) {
                Ok(trace) => {
                    println!("wrote {} transactions to {out}", trace.len());
                    let mut stdout = std::io::stdout().lock();
                    let _ = tracegen::describe(&trace, &mut stdout);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("generation failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("info") => {
            let Some(path) = args.positional.get(1) else {
                return usage();
            };
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Trace::read_from(std::io::BufReader::new(file)) {
                Ok(trace) => {
                    let mut stdout = std::io::stdout().lock();
                    let _ = tracegen::describe(&trace, &mut stdout);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
