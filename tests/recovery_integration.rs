//! Durability and failover-chain tests: contingency logging, mirror disk
//! spooling, cold-start recovery, and the full failure cycle of the paper.

use rodain::db::{MirrorLossPolicy, ReplicationMode, Rodain, TxnOptions};
use rodain::log::{
    write_snapshot_file, GroupCommitLog, LogRecord, LogStorage, LogStorageConfig, Lsn, RecordKind,
};
use rodain::net::InProcTransport;
use rodain::node::{
    recover_store_from_disk, recover_store_from_disk_with, recover_with_checkpoint_with,
    MirrorConfig, MirrorExit, MirrorNode, RecoveryOptions,
};
use rodain::occ::Csn;
use rodain::store::{Store, Ts, TxnId};
use rodain::{ObjectId, Value};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rodain-recovery-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_mirror_config() -> MirrorConfig {
    MirrorConfig {
        poll_interval: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(10),
        peer_timeout: Duration::from_millis(100),
        suspect_rounds: 3,
        snapshot_dir: None,
        takeover_workers: 2,
    }
}

#[test]
fn contingency_log_replays_to_identical_state() {
    let dir = tmpdir("contingency");
    let snapshot_before;
    {
        let db = Rodain::builder()
            .workers(4)
            .contingency_log(&dir)
            .build()
            .unwrap();
        for i in 0..100u64 {
            db.load_initial(ObjectId(i), Value::Int(0));
        }
        // Interleaved concurrent updates.
        let db = Arc::new(db);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let oid = ObjectId((t * 29 + i * 3) % 100);
                    let _ = db.execute(TxnOptions::soft_ms(5_000), move |ctx| {
                        let v = ctx.read(oid)?.unwrap().as_int().unwrap();
                        ctx.write(oid, Value::Int(v + 1))?;
                        Ok(None)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        snapshot_before = db.snapshot();
    } // drop: flush + shutdown

    let cold = recover_store_from_disk(&dir).unwrap();
    // Recovered values equal the pre-crash committed values. (The initial
    // zero-valued objects were loaded outside logging, so compare only
    // objects the log touched — i.e. those with non-zero values — plus
    // confirm no phantom objects appeared.)
    for (oid, obj) in &snapshot_before.objects {
        let recovered = cold.store.read(*oid).map(|(v, _)| v);
        if obj.value != Value::Int(0) {
            assert_eq!(recovered, Some(obj.value.clone()), "{oid:?}");
        }
    }
    assert!(cold.stats.committed > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mirror_disk_spool_supports_cold_restart_of_the_pair() {
    // Two-node mode: the mirror spools the reordered log to disk. After
    // BOTH nodes stop, the disk log alone rebuilds the database.
    let dir = tmpdir("mirror-spool");
    let (primary_side, mirror_side) = InProcTransport::pair();
    let storage = LogStorage::open(LogStorageConfig {
        fsync: false,
        ..LogStorageConfig::new(&dir)
    })
    .unwrap();
    let spool = GroupCommitLog::spawn(storage, 64);
    let mirror_store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        mirror_store,
        Arc::new(mirror_side),
        Some(spool),
        fast_mirror_config(),
    );
    let applied = mirror.applied_csn_handle();
    let shutdown = mirror.shutdown_handle();
    let handle = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run()
    });

    {
        let db = Rodain::builder()
            .workers(2)
            .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
            .build()
            .unwrap();
        for i in 0..40u64 {
            db.execute(TxnOptions::firm_ms(2_000), move |ctx| {
                ctx.write(ObjectId(i), Value::Int(i as i64 + 1000))?;
                Ok(None)
            })
            .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while applied.load(Ordering::Acquire) < 40 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    shutdown.store(true, Ordering::Release);
    let (_, report) = handle.join().unwrap();
    assert_eq!(report.txns_applied, 40);

    // Cold start from the mirror's disk log ("even if both nodes fail").
    let cold = recover_store_from_disk(&dir).unwrap();
    assert_eq!(cold.stats.committed, 40);
    assert_eq!(
        cold.store.read(ObjectId(39)).map(|(v, _)| v),
        Some(Value::Int(1039))
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_failure_cycle_mirror_promotes_then_old_primary_rejoins() {
    // The paper's failover story end to end:
    // 1. Primary + Mirror running.
    // 2. Primary dies → mirror promotes to Contingency Primary (its store
    //    is current), serving with sync disk logging.
    // 3. The failed node recovers (from the promoted node's snapshot) and
    //    rejoins as Mirror.
    let dir = tmpdir("failover-chain");
    let (primary_side, mirror_side) = InProcTransport::pair();
    let mirror_store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        mirror_store.clone(),
        Arc::new(mirror_side),
        None,
        fast_mirror_config(),
    );
    let applied = mirror.applied_csn_handle();
    let mirror_thread = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run()
    });

    // Phase 1: normal operation.
    let db = Rodain::builder()
        .workers(2)
        .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .build()
        .unwrap();
    for i in 0..20u64 {
        db.execute(TxnOptions::firm_ms(2_000), move |ctx| {
            ctx.write(ObjectId(i), Value::Int(i as i64))?;
            Ok(None)
        })
        .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while applied.load(Ordering::Acquire) < 20 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(1));
    }

    // Phase 2: primary crashes (we drop the engine; the link closes).
    drop(db);
    let (exit, _) = mirror_thread.join().unwrap();
    assert_eq!(exit, MirrorExit::PrimaryFailed);

    // Promote: build a contingency engine OVER the mirror's store.
    let promoted = Rodain::builder()
        .workers(2)
        .store(mirror_store)
        .contingency_log(&dir)
        .build()
        .unwrap();
    assert_eq!(promoted.replication_mode(), ReplicationMode::Contingency);
    // The promoted node has the full state and keeps serving.
    assert_eq!(promoted.get(ObjectId(7)), Some(Value::Int(7)));
    promoted
        .execute(TxnOptions::firm_ms(2_000), |ctx| {
            ctx.write(ObjectId(100), Value::Int(100))?;
            Ok(None)
        })
        .unwrap();

    // Phase 3: the failed node comes back and rejoins as Mirror.
    let (new_primary_side, new_mirror_side) = InProcTransport::pair();
    let rejoined_store = Arc::new(Store::new());
    let mut rejoined = MirrorNode::new(
        rejoined_store.clone(),
        Arc::new(new_mirror_side),
        None,
        fast_mirror_config(),
    );
    let rejoined_shutdown = rejoined.shutdown_handle();
    let rejoined_thread = std::thread::spawn(move || {
        rejoined.join().unwrap();
        rejoined.run()
    });
    promoted
        .attach_mirror(
            Arc::new(new_primary_side),
            MirrorLossPolicy::ContinueVolatile,
        )
        .unwrap();
    assert_eq!(promoted.replication_mode(), ReplicationMode::Mirrored);

    promoted
        .execute(TxnOptions::firm_ms(2_000), |ctx| {
            ctx.write(ObjectId(101), Value::Int(101))?;
            Ok(None)
        })
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while rejoined_store.read(ObjectId(101)).is_none() {
        assert!(
            Instant::now() < deadline,
            "rejoined mirror missed the live stream"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Snapshot-era state arrived too: both the pre-crash objects and the
    // contingency-era commit.
    assert_eq!(
        rejoined_store.read(ObjectId(7)).map(|(v, _)| v),
        Some(Value::Int(7))
    );
    assert_eq!(
        rejoined_store.read(ObjectId(100)).map(|(v, _)| v),
        Some(Value::Int(100))
    );
    rejoined_shutdown.store(true, Ordering::Release);
    rejoined_thread.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_log_and_accelerates_recovery() {
    let log_dir = tmpdir("ckpt-log");
    let snap_dir = tmpdir("ckpt-snap");
    {
        let db = Rodain::builder()
            .workers(2)
            .contingency_log(&log_dir)
            .build()
            .unwrap();
        // Era 1: 30 commits, then a checkpoint.
        for i in 0..30u64 {
            db.execute(TxnOptions::firm_ms(5_000), move |ctx| {
                ctx.write(ObjectId(i), Value::Int(i as i64))?;
                Ok(None)
            })
            .unwrap();
        }
        let snap_path = db.checkpoint(&snap_dir).unwrap();
        assert!(snap_path.exists());
        // Era 2: 10 more commits after the checkpoint.
        for i in 100..110u64 {
            db.execute(TxnOptions::firm_ms(5_000), move |ctx| {
                ctx.write(ObjectId(i), Value::Int(i as i64))?;
                Ok(None)
            })
            .unwrap();
        }
    }
    // Checkpoint-aware recovery sees both eras.
    let cold = rodain::node::recover_with_checkpoint(&log_dir, &snap_dir).unwrap();
    assert_eq!(
        cold.store.read(ObjectId(5)).map(|(v, _)| v),
        Some(Value::Int(5))
    );
    assert_eq!(
        cold.store.read(ObjectId(105)).map(|(v, _)| v),
        Some(Value::Int(105))
    );
    // The snapshot covered era 1, so even a plain log replay of whatever
    // remains plus the snapshot is complete; and the snapshot alone holds
    // all 30 era-1 objects.
    let (snapshot, upto, _) = rodain::log::read_latest_snapshot(&snap_dir)
        .unwrap()
        .unwrap();
    assert!(upto.0 >= 30);
    assert!(snapshot.len() >= 30);
    let _ = std::fs::remove_dir_all(&log_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

#[test]
fn checkpoint_in_volatile_mode_still_writes_snapshot() {
    let snap_dir = tmpdir("ckpt-volatile");
    let db = Rodain::builder().workers(1).build().unwrap();
    db.execute(TxnOptions::firm_ms(5_000), |ctx| {
        ctx.write(ObjectId(1), Value::Int(42))?;
        Ok(None)
    })
    .unwrap();
    db.checkpoint(&snap_dir).unwrap();
    let (snapshot, _, _) = rodain::log::read_latest_snapshot(&snap_dir)
        .unwrap()
        .unwrap();
    assert_eq!(snapshot.len(), 1);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

#[test]
fn rejoining_mirror_persists_join_snapshot_for_full_recovery() {
    // A mirror that joins AFTER the primary already holds data only sees
    // post-join commits on its log spool. With `snapshot_dir` set, the
    // join snapshot is persisted too, so snapshot + log tail covers the
    // full database even though the log alone does not.
    let log_dir = tmpdir("join-snap-log");
    let snap_dir = tmpdir("join-snap-ckpt");

    let db = Rodain::builder().workers(2).build().unwrap();
    for i in 0..50u64 {
        db.load_initial(ObjectId(i), Value::Int(i as i64));
    }
    db.execute(TxnOptions::firm_ms(2_000), |ctx| {
        ctx.write(ObjectId(0), Value::Int(-1))?;
        Ok(None)
    })
    .unwrap();

    // Mirror joins late, with disk spool + snapshot persistence.
    let (primary_side, mirror_side) = InProcTransport::pair();
    let storage = LogStorage::open(LogStorageConfig {
        fsync: false,
        ..LogStorageConfig::new(&log_dir)
    })
    .unwrap();
    let spool = GroupCommitLog::spawn(storage, 64);
    let mirror_store = Arc::new(Store::new());
    let mut config = fast_mirror_config();
    config.snapshot_dir = Some(snap_dir.clone());
    let mut mirror = MirrorNode::new(mirror_store, Arc::new(mirror_side), Some(spool), config);
    let applied = mirror.applied_csn_handle();
    let shutdown = mirror.shutdown_handle();
    let handle = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run()
    });
    db.attach_mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .unwrap();

    // Post-join commits stream live.
    db.execute(TxnOptions::firm_ms(2_000), |ctx| {
        ctx.write(ObjectId(100), Value::Int(100))?;
        Ok(None)
    })
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while applied.load(Ordering::Acquire) < 2 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(1));
    }
    let expected = db.snapshot();
    drop(db);
    shutdown.store(true, Ordering::Release);
    handle.join().unwrap();

    // Log alone misses the pre-join state…
    let log_only = rodain::node::recover_store_from_disk(&log_dir).unwrap();
    assert_eq!(
        log_only.store.read(ObjectId(5)),
        None,
        "log alone cannot know era 1"
    );
    // …snapshot + log recovers everything.
    let full = rodain::node::recover_with_checkpoint(&log_dir, &snap_dir).unwrap();
    assert_eq!(full.store.snapshot(), expected);
    assert_eq!(
        full.store.read(ObjectId(0)).map(|(v, _)| v),
        Some(Value::Int(-1))
    );
    assert_eq!(
        full.store.read(ObjectId(100)).map(|(v, _)| v),
        Some(Value::Int(100))
    );
    let _ = std::fs::remove_dir_all(&log_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

#[test]
fn torn_disk_tail_only_loses_the_in_flight_transaction() {
    let dir = tmpdir("torn-tail");
    {
        let db = Rodain::builder()
            .workers(1)
            .contingency_log(&dir)
            .build()
            .unwrap();
        for i in 0..5u64 {
            db.execute(TxnOptions::firm_ms(2_000), move |ctx| {
                ctx.write(ObjectId(i), Value::Int(i as i64))?;
                Ok(None)
            })
            .unwrap();
        }
    }
    // Corrupt the tail of the newest segment (simulated crash mid-write).
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    let last = segments.last().unwrap();
    let data = std::fs::read(last).unwrap();
    std::fs::write(last, &data[..data.len().saturating_sub(7)]).unwrap();

    let cold = recover_store_from_disk(&dir).unwrap();
    assert!(cold.torn_tail);
    // At most the final transaction is lost; everything earlier survives.
    assert!(cold.stats.committed >= 4);
    assert_eq!(
        cold.store.read(ObjectId(0)).map(|(v, _)| v),
        Some(Value::Int(0))
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- replay edge cases for partitioned recovery (DESIGN.md §13) ----

/// One committed transaction as an appendable record group.
fn committed_group(first_lsn: u64, txn: u64, csn: u64, writes: &[(u64, i64)]) -> Vec<LogRecord> {
    let mut group = Vec::with_capacity(writes.len() + 1);
    let mut lsn = first_lsn;
    for &(oid, val) in writes {
        group.push(LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Write {
                oid: ObjectId(oid),
                image: Value::Int(val),
            },
        });
        lsn += 1;
    }
    group.push(LogRecord {
        lsn: Lsn(lsn),
        txn: TxnId(txn),
        kind: RecordKind::Commit {
            csn: Csn(csn),
            ser_ts: Ts(csn * 10),
            n_writes: writes.len() as u32,
        },
    });
    group
}

#[test]
fn empty_log_recovers_to_an_empty_store() {
    let dir = tmpdir("empty-log");
    // An opened-then-dropped log leaves a single header-only segment.
    drop(
        LogStorage::open(LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        })
        .unwrap(),
    );
    for workers in [1usize, 4] {
        let cold =
            recover_store_from_disk_with(&dir, &RecoveryOptions::with_workers(workers)).unwrap();
        assert_eq!(cold.stats.committed, 0);
        assert_eq!(cold.store.len(), 0);
        assert!(!cold.torn_tail);
        assert_eq!(cold.torn_tail_bytes, 0);
        assert!(cold.segments_scanned >= 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn log_ending_exactly_at_a_segment_boundary_replays_cleanly() {
    let dir = tmpdir("seg-boundary");
    {
        // Tiny segments force rotation mid-stream.
        let mut storage = LogStorage::open(LogStorageConfig {
            fsync: false,
            segment_bytes: 256,
            ..LogStorageConfig::new(&dir)
        })
        .unwrap();
        for t in 1..=40u64 {
            storage
                .append_batch(&committed_group(t * 10, t, t, &[(t, t as i64)]))
                .unwrap();
        }
        storage.flush().unwrap();
    }
    // A rotation that crashed before its first append leaves a header-only
    // trailing segment: the record stream ends exactly at a segment
    // boundary. Reopening the directory creates exactly that.
    drop(
        LogStorage::open(LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        })
        .unwrap(),
    );
    let segments = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "rodainlog")
        })
        .count();
    assert!(segments >= 3, "expected rotation, got {segments} segments");

    for workers in [1usize, 4] {
        let cold =
            recover_store_from_disk_with(&dir, &RecoveryOptions::with_workers(workers)).unwrap();
        assert_eq!(cold.stats.committed, 40, "workers {workers}");
        assert!(!cold.torn_tail, "a boundary-aligned end is not a torn tail");
        assert_eq!(cold.segments_scanned, segments as u64);
        for t in 1..=40u64 {
            assert_eq!(
                cold.store.read(ObjectId(t)).map(|(v, _)| v),
                Some(Value::Int(t as i64)),
                "workers {workers}, object {t}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_csn_groups_replay_idempotently() {
    // A retried batch append (e.g. after a transient disk error) can land a
    // whole committed transaction twice, same CSN. Replay must apply the
    // duplicate without erroring and converge to the same state.
    let dir = tmpdir("dup-csn");
    {
        let mut storage = LogStorage::open(LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        })
        .unwrap();
        storage
            .append_batch(&committed_group(1, 1, 1, &[(1, 10), (2, 20)]))
            .unwrap();
        let retried = committed_group(10, 2, 2, &[(1, 11), (3, 30)]);
        storage.append_batch(&retried).unwrap();
        storage.append_batch(&retried).unwrap();
        storage.flush().unwrap();
    }
    for workers in [1usize, 4] {
        let cold =
            recover_store_from_disk_with(&dir, &RecoveryOptions::with_workers(workers)).unwrap();
        // The duplicate counts as a replayed commit; the state is as if it
        // committed once.
        assert_eq!(cold.stats.committed, 3, "workers {workers}");
        assert_eq!(cold.store.len(), 3);
        for (oid, want) in [(1u64, 11i64), (2, 20), (3, 30)] {
            assert_eq!(
                cold.store.read(ObjectId(oid)).map(|(v, _)| v),
                Some(Value::Int(want)),
                "workers {workers}, object {oid}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retained_pre_checkpoint_segments_reapply_idempotently() {
    // `checkpoint_truncates_log_and_accelerates_recovery` covers the pruned
    // case; here NOTHING is truncated after the checkpoint, so recovery
    // replays the whole log — including commits the snapshot already holds
    // — over the restored state. That overlap must be harmless.
    let log_dir = tmpdir("retained-log");
    let snap_dir = tmpdir("retained-snap");
    {
        let mut storage = LogStorage::open(LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&log_dir)
        })
        .unwrap();
        for t in 1..=30u64 {
            storage
                .append_batch(&committed_group(t * 10, t, t, &[(t, t as i64)]))
                .unwrap();
        }
        storage.flush().unwrap();
    }
    // Snapshot of the state as of CSN 20.
    let halfway = Store::new();
    for t in 1..=20u64 {
        halfway.install(ObjectId(t), Value::Int(t as i64), Ts(t * 10));
    }
    write_snapshot_file(&snap_dir, &halfway.snapshot(), Csn(20)).unwrap();

    for workers in [1usize, 4] {
        let cold = recover_with_checkpoint_with(
            &log_dir,
            &snap_dir,
            &RecoveryOptions::with_workers(workers),
        )
        .unwrap();
        // Every commit replays (the log was never pruned)...
        assert_eq!(cold.stats.committed, 30, "workers {workers}");
        // ...and re-applying the snapshot-era prefix changed nothing.
        assert_eq!(cold.store.len(), 30);
        for t in 1..=30u64 {
            assert_eq!(
                cold.store.read(ObjectId(t)).map(|(v, _)| v),
                Some(Value::Int(t as i64)),
                "workers {workers}, object {t}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&log_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}
