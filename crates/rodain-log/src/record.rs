//! Redo log records.

use rodain_occ::Csn;
use rodain_store::{ObjectId, Ts, TxnId, Value};
use std::fmt;

/// Log sequence number: position of a record in the primary's shipping
/// order. Dense and monotone per node incarnation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The first LSN assigned by a fresh log writer.
    pub const FIRST: Lsn = Lsn(1);

    /// The next LSN.
    #[must_use]
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn#{}", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The payload of a log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RecordKind {
    /// A redo after-image: transaction `txn` set `oid` to `image`
    /// (generated during the write phase; paper §3: "transaction
    /// identification, data item identification and an after image").
    Write {
        /// Updated object.
        oid: ObjectId,
        /// The after-image. [`Value::Null`] encodes a deletion.
        image: Value,
    },
    /// The transaction committed. The mirror acknowledges this record; its
    /// arrival — not the disk write — gates the primary's commit.
    Commit {
        /// Dense commit sequence number (true validation order).
        csn: Csn,
        /// Serialization timestamp the after-images are installed at.
        ser_ts: Ts,
        /// Number of `Write` records belonging to this transaction; lets
        /// the mirror detect gaps in a transaction's record group.
        n_writes: u32,
    },
    /// The transaction aborted after shipping some write records; the
    /// mirror discards its pending group.
    Abort,
    /// Checkpoint marker: everything with CSN < `upto` is reflected in the
    /// snapshot named by `snapshot_id` (extension; enables log truncation).
    Checkpoint {
        /// First CSN *not* covered by the checkpoint.
        upto: Csn,
        /// Identifier of the snapshot file the checkpoint refers to.
        snapshot_id: u64,
    },
}

impl RecordKind {
    /// Short tag for diagnostics.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            RecordKind::Write { .. } => "write",
            RecordKind::Commit { .. } => "commit",
            RecordKind::Abort => "abort",
            RecordKind::Checkpoint { .. } => "checkpoint",
        }
    }
}

/// One redo log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogRecord {
    /// Shipping-order sequence number.
    pub lsn: Lsn,
    /// Owning transaction. Checkpoint records use [`TxnId`] 0.
    pub txn: TxnId,
    /// Payload.
    pub kind: RecordKind,
}

impl LogRecord {
    /// Approximate encoded size in bytes (for log-volume accounting and
    /// simulation of transfer times).
    #[must_use]
    pub fn approx_size(&self) -> usize {
        let body = match &self.kind {
            RecordKind::Write { image, .. } => 8 + 8 + image.approx_size() + 4,
            RecordKind::Commit { .. } => 8 + 8 + 4,
            RecordKind::Abort => 0,
            RecordKind::Checkpoint { .. } => 16,
        };
        // lsn + txn + tag + frame header (len + crc).
        8 + 8 + 1 + 8 + body
    }

    /// Whether this is a commit record.
    #[must_use]
    pub fn is_commit(&self) -> bool {
        matches!(self.kind, RecordKind::Commit { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ordering() {
        assert!(Lsn::FIRST < Lsn::FIRST.next());
        assert_eq!(format!("{:?}", Lsn(7)), "lsn#7");
    }

    #[test]
    fn record_predicates() {
        let commit = LogRecord {
            lsn: Lsn(1),
            txn: TxnId(1),
            kind: RecordKind::Commit {
                csn: Csn(1),
                ser_ts: Ts(1),
                n_writes: 0,
            },
        };
        assert!(commit.is_commit());
        assert_eq!(commit.kind.tag(), "commit");
        let write = LogRecord {
            lsn: Lsn(2),
            txn: TxnId(1),
            kind: RecordKind::Write {
                oid: ObjectId(1),
                image: Value::Int(1),
            },
        };
        assert!(!write.is_commit());
        assert!(write.approx_size() > commit.approx_size() - 16);
    }
}
