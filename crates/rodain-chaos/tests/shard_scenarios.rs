//! Seeded shard-kill chaos scenarios run in CI.
//!
//! Reproduce any failing seed with:
//! `CHAOS_SEED=<seed> cargo test -p rodain-chaos --test shard_scenarios`

use rodain_chaos::{ShardKillConfig, ShardKillHarness};

#[test]
fn shard_kill_suite_honors_chaos_seed() {
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(raw) => vec![raw
            .trim()
            .parse()
            .expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => vec![1, 7, 1945],
    };
    for seed in seeds {
        let verdict = ShardKillHarness::new(ShardKillConfig::default()).run(seed);
        assert!(
            verdict.passed(),
            "seed {seed} violated shard-kill invariants\n{}",
            verdict.render()
        );
        // Availability accounting: the kill cost exactly the commits
        // routed to the victim while it was detached — nothing else.
        assert_eq!(
            verdict.acked + verdict.refused,
            verdict.attempts,
            "{}",
            verdict.render()
        );
    }
}

#[test]
fn shard_kill_is_byte_for_byte_reproducible() {
    let seed = 0x00C0_FFEE;
    let a = ShardKillHarness::new(ShardKillConfig::default()).run(seed);
    let b = ShardKillHarness::new(ShardKillConfig::default()).run(seed);
    assert!(a.passed(), "{}", a.render());
    assert_eq!(
        a.render(),
        b.render(),
        "same seed, same config: the verdict must be byte-identical"
    );
}

#[test]
fn larger_cluster_survives_a_kill_on_every_seedable_victim() {
    // Eight shards, seeds chosen so several distinct victims are hit; on
    // every one the survivors keep committing and no acked work is lost.
    for seed in 0..6u64 {
        let config = ShardKillConfig {
            shards: 8,
            objects: 64,
            before: 20,
            outage: 64,
            after: 20,
            workers_per_shard: 1,
            ..ShardKillConfig::default()
        };
        let verdict = ShardKillHarness::new(config).run(seed);
        assert!(verdict.passed(), "seed {seed}\n{}", verdict.render());
        assert!(
            verdict.refused > 0,
            "seed {seed}: outage refused nothing\n{}",
            verdict.render()
        );
    }
}
