//! Single-pass log replay — sequential and hash-partitioned parallel.
//!
//! ## Partitioned replay
//!
//! Because the stored log is already reordered by true validation order
//! (paper §3), REDO is a single forward pass. That pass parallelizes
//! cleanly: after-images for different objects commute as long as each
//! *object's* images are installed in log order. [`replay_frames_into`]
//! therefore routes every write frame to one of N worker streams by
//! `ObjectId::partition` — the exact hash the shard router uses — and each
//! worker installs its partition's images in the order received. Per-object
//! order is preserved by per-worker FIFO; cross-partition ordering is *not*
//! enforced per record. The only global coordinate is a **CSN watermark**:
//! the dispatcher periodically broadcasts the commit sequence number it has
//! fully dispatched, each worker acknowledges it once its queue has drained
//! past it, and `min` over workers is the CSN through which the rebuilt
//! state is complete. Readers that need a consistent prefix (metrics,
//! chaos invariants, the takeover barrier) wait on the watermark instead
//! of serializing every record.

use crate::codec::{decode_record, peek_envelope, FrameEnvelope};
use crate::record::{LogRecord, RecordKind};
use crate::reorder::{CommittedTxn, ReorderError};
use bytes::Bytes;
use rodain_occ::Csn;
use rodain_store::{ObjectId, Store, Ts, TxnId, Value};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Replay workers are identified by bits of a `u64` involvement mask.
const MAX_REPLAY_WORKERS: usize = 64;
/// Ops buffered per worker before a channel send.
const OP_BATCH: usize = 512;
/// Batches a worker channel holds before the dispatcher blocks.
const CHANNEL_DEPTH: usize = 8;
/// Watermark broadcast cadence, in commit records.
const ADVANCE_EVERY: u64 = 1024;

/// Replay statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records scanned.
    pub records: u64,
    /// Committed transactions applied.
    pub committed: u64,
    /// Transactions whose writes were discarded for lack of a commit record
    /// (the in-flight tail at failure time).
    pub discarded: u64,
    /// After-images installed.
    pub images: u64,
    /// The highest CSN applied ([`Csn`] 0 when nothing committed).
    pub max_csn: Csn,
    /// The highest serialization timestamp applied.
    pub max_ser_ts: Ts,
    /// The CSN through which *every* replay partition had applied when the
    /// pass ended. Equals [`RecoveryStats::max_csn`] after a completed
    /// replay; lower only when a crash point stopped the pass early.
    pub watermark: Csn,
}

/// Replay failures.
#[derive(Debug)]
pub enum RecoveryError {
    /// Reading a record failed (I/O or mid-log corruption).
    Io(std::io::Error),
    /// The log stream itself is inconsistent.
    Stream(ReorderError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "log read failed: {e}"),
            RecoveryError::Stream(e) => write!(f, "inconsistent log stream: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// Tuning and fault-injection knobs for a replay pass.
#[derive(Clone, Copy, Debug)]
pub struct ReplayOptions {
    /// Partition worker streams. `1` replays inline on the calling thread;
    /// higher values spawn that many decode/install workers (capped at 64).
    pub workers: usize,
    /// Chaos crash point: stop dispatching after this many commit records,
    /// simulating the recovering process dying mid-replay. The store is
    /// left partially rebuilt — a subsequent *full* replay must converge to
    /// the same state as an uninterrupted one.
    pub stop_after_commits: Option<u64>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            workers: 1,
            stop_after_commits: None,
        }
    }
}

impl ReplayOptions {
    /// Options for `workers` partition streams.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        ReplayOptions {
            workers,
            ..ReplayOptions::default()
        }
    }
}

fn invalid_data(detail: impl fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.to_string())
}

/// Rebuild database state by replaying `records` into `store`.
///
/// Because the mirror reorders the log by true validation order before
/// storing it, recovery "can simply pass the log once from the beginning to
/// the end omitting only the transactions that do not have a commit record
/// in the log" (paper §3). The same pass also handles a Contingency-mode
/// log (written in generation order): write records are buffered per
/// transaction and applied only when the commit record appears.
///
/// Commit records are applied in the order encountered, regardless of CSN
/// gaps — a checkpoint-truncated log legitimately starts mid-stream, and a
/// transaction missing its commit record is exactly the in-flight tail the
/// paper says to discard.
pub fn replay_into(
    store: &Store,
    records: impl IntoIterator<Item = std::io::Result<LogRecord>>,
) -> Result<RecoveryStats, RecoveryError> {
    sequential_replay(store, records, None)
}

fn sequential_replay(
    store: &Store,
    records: impl IntoIterator<Item = std::io::Result<LogRecord>>,
    stop_after_commits: Option<u64>,
) -> Result<RecoveryStats, RecoveryError> {
    let mut stats = RecoveryStats::default();
    let mut pending: HashMap<TxnId, Vec<(ObjectId, Value)>> = HashMap::new();
    for item in records {
        let record = item?;
        stats.records += 1;
        match record.kind {
            RecordKind::Write { oid, image } => {
                pending.entry(record.txn).or_default().push((oid, image));
            }
            RecordKind::Commit {
                csn,
                ser_ts,
                n_writes,
            } => {
                let writes = pending.remove(&record.txn).unwrap_or_default();
                if writes.len() as u32 != n_writes {
                    return Err(RecoveryError::Stream(ReorderError::MissingWrites {
                        txn: record.txn,
                        expected: n_writes,
                        got: writes.len() as u32,
                    }));
                }
                stats.committed += 1;
                stats.max_csn = stats.max_csn.max(csn);
                stats.max_ser_ts = stats.max_ser_ts.max(ser_ts);
                for (oid, image) in writes {
                    store.install(oid, image, ser_ts);
                    stats.images += 1;
                }
                if stop_after_commits.is_some_and(|limit| stats.committed >= limit) {
                    break;
                }
            }
            RecordKind::Abort => {
                pending.remove(&record.txn);
            }
            RecordKind::Checkpoint { .. } => {}
        }
    }
    stats.discarded = pending.len() as u64;
    stats.watermark = stats.max_csn;
    Ok(stats)
}

/// One unit of work shipped to a partition worker. Per-worker channels are
/// FIFO, which is the only ordering guarantee partitioned replay needs:
/// every op touching a given object flows through the object's one owner.
#[derive(Clone)]
enum Op {
    /// A raw, checksum-verified write frame; the worker pays for the value
    /// decode (the expensive part) off the dispatcher's critical path.
    RawWrite { txn: TxnId, payload: Bytes },
    /// An already-decoded after-image of a committed transaction (the
    /// mirror-takeover path, where the reorder buffer decoded upstream).
    Install {
        oid: ObjectId,
        image: Value,
        ser_ts: Ts,
    },
    /// Commit reached: install the transaction's buffered writes.
    Apply { txn: TxnId, ser_ts: Ts },
    /// Abort: discard the transaction's buffered writes.
    Drop { txn: TxnId },
    /// Watermark broadcast: everything at or below `csn` that concerns
    /// this worker precedes this op in its queue.
    Advance { csn: Csn },
}

fn worker_loop(
    store: &Store,
    rx: Receiver<Vec<Op>>,
    applied: &AtomicU64,
) -> Result<u64, RecoveryError> {
    let mut images = 0u64;
    let mut pending: HashMap<TxnId, Vec<(ObjectId, Value)>> = HashMap::new();
    for batch in rx {
        for op in batch {
            match op {
                Op::RawWrite { txn, payload } => {
                    let record =
                        decode_record(payload).map_err(|e| RecoveryError::Io(invalid_data(e)))?;
                    match record.kind {
                        RecordKind::Write { oid, image } => {
                            pending.entry(txn).or_default().push((oid, image));
                        }
                        _ => {
                            return Err(RecoveryError::Io(invalid_data(
                                "non-write frame routed to a partition worker",
                            )))
                        }
                    }
                }
                Op::Install { oid, image, ser_ts } => {
                    store.install(oid, image, ser_ts);
                    images += 1;
                }
                Op::Apply { txn, ser_ts } => {
                    if let Some(writes) = pending.remove(&txn) {
                        for (oid, image) in writes {
                            store.install(oid, image, ser_ts);
                            images += 1;
                        }
                    }
                }
                Op::Drop { txn } => {
                    pending.remove(&txn);
                }
                Op::Advance { csn } => {
                    applied.fetch_max(csn.0, Ordering::AcqRel);
                }
            }
        }
    }
    Ok(images)
}

/// Routes batched ops to the partition workers, tolerating workers that
/// exited early on an error (their channel send fails; the error itself is
/// collected at join time).
struct Dispatcher {
    senders: Vec<SyncSender<Vec<Op>>>,
    bufs: Vec<Vec<Op>>,
    dead: Vec<bool>,
}

impl Dispatcher {
    fn new(senders: Vec<SyncSender<Vec<Op>>>) -> Self {
        let n = senders.len();
        Dispatcher {
            senders,
            bufs: (0..n).map(|_| Vec::with_capacity(OP_BATCH)).collect(),
            dead: vec![false; n],
        }
    }

    fn push(&mut self, worker: usize, op: Op) {
        if self.dead[worker] {
            return;
        }
        self.bufs[worker].push(op);
        if self.bufs[worker].len() >= OP_BATCH {
            self.flush_one(worker);
        }
    }

    fn broadcast(&mut self, op: &Op) {
        for worker in 0..self.senders.len() {
            self.push(worker, op.clone());
        }
    }

    fn flush_one(&mut self, worker: usize) {
        if self.dead[worker] || self.bufs[worker].is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.bufs[worker], Vec::with_capacity(OP_BATCH));
        if self.senders[worker].send(batch).is_err() {
            self.dead[worker] = true;
        }
    }

    fn flush_all(&mut self) {
        for worker in 0..self.senders.len() {
            self.flush_one(worker);
        }
    }
}

struct WorkerPool {
    dispatcher: Dispatcher,
    handles: Vec<JoinHandle<Result<u64, RecoveryError>>>,
    applied: Vec<Arc<AtomicU64>>,
}

impl WorkerPool {
    fn spawn(store: &Arc<Store>, workers: usize) -> WorkerPool {
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let mut applied = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<Op>>(CHANNEL_DEPTH);
            let store = Arc::clone(store);
            let wm = Arc::new(AtomicU64::new(0));
            let wm_worker = Arc::clone(&wm);
            let handle = std::thread::Builder::new()
                .name(format!("rodain-replay-{i}"))
                .spawn(move || worker_loop(&store, rx, &wm_worker))
                .expect("spawn replay worker");
            senders.push(tx);
            handles.push(handle);
            applied.push(wm);
        }
        WorkerPool {
            dispatcher: Dispatcher::new(senders),
            handles,
            applied,
        }
    }

    /// Flush, close the channels, join the workers. Returns the summed
    /// image count and the watermark (min applied CSN over workers), or the
    /// first worker error.
    fn finish(self) -> Result<(u64, Csn), RecoveryError> {
        let WorkerPool {
            mut dispatcher,
            handles,
            applied,
        } = self;
        dispatcher.flush_all();
        drop(dispatcher); // closes every channel; workers drain and exit
        let mut images = 0u64;
        let mut first_err = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(n)) => images += n,
                Ok(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(RecoveryError::Io(invalid_data("replay worker panicked")));
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let watermark = Csn(applied
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .min()
            .unwrap_or(0));
        Ok((images, watermark))
    }
}

/// Rebuild database state from raw checksum-verified frame payloads (see
/// `LogStorage::scan_dir_frames`), partitioned across
/// [`ReplayOptions::workers`] streams by object-id hash.
///
/// With `workers == 1` this is exactly [`replay_into`] (inline, no
/// threads). With more, the calling thread becomes the dispatcher: it peeks
/// each frame's envelope (fixed-offset fields — no value decode), tracks
/// per-transaction write counts and the set of involved partitions, and
/// ships raw write frames to their owning worker. Workers do the expensive
/// value decode and install. Semantics — commit-gated application,
/// discarded in-flight tail, [`ReorderError::MissingWrites`] on
/// inconsistent groups — are identical to the sequential pass, and so is
/// the resulting store state.
pub fn replay_frames_into(
    store: &Arc<Store>,
    frames: impl IntoIterator<Item = io::Result<Bytes>>,
    opts: ReplayOptions,
) -> Result<RecoveryStats, RecoveryError> {
    let workers = opts.workers.clamp(1, MAX_REPLAY_WORKERS);
    if workers <= 1 {
        let records = frames
            .into_iter()
            .map(|item| item.and_then(|payload| decode_record(payload).map_err(invalid_data)));
        return sequential_replay(store, records, opts.stop_after_commits);
    }

    let mut pool = WorkerPool::spawn(store, workers);
    let mut stats = RecoveryStats::default();
    // Per-transaction write count and involved-worker bitmask.
    let mut txns: HashMap<TxnId, (u32, u64)> = HashMap::new();
    let mut failure: Option<RecoveryError> = None;
    let mut commits_since_advance = 0u64;
    let mut stopped_early = false;

    for item in frames {
        let payload = match item {
            Ok(p) => p,
            Err(e) => {
                failure = Some(RecoveryError::Io(e));
                break;
            }
        };
        stats.records += 1;
        let envelope = match peek_envelope(&payload) {
            Ok(env) => env,
            Err(e) => {
                failure = Some(RecoveryError::Io(invalid_data(e)));
                break;
            }
        };
        match envelope {
            FrameEnvelope::Write { txn, oid } => {
                let worker = oid.partition(workers);
                let entry = txns.entry(txn).or_insert((0, 0));
                entry.0 += 1;
                entry.1 |= 1 << worker;
                pool.dispatcher.push(worker, Op::RawWrite { txn, payload });
            }
            FrameEnvelope::Commit {
                txn,
                csn,
                ser_ts,
                n_writes,
            } => {
                let (count, mask) = txns.remove(&txn).unwrap_or((0, 0));
                if count != n_writes {
                    failure = Some(RecoveryError::Stream(ReorderError::MissingWrites {
                        txn,
                        expected: n_writes,
                        got: count,
                    }));
                    break;
                }
                stats.committed += 1;
                stats.max_csn = stats.max_csn.max(csn);
                stats.max_ser_ts = stats.max_ser_ts.max(ser_ts);
                let mut remaining = mask;
                while remaining != 0 {
                    let worker = remaining.trailing_zeros() as usize;
                    remaining &= remaining - 1;
                    pool.dispatcher.push(worker, Op::Apply { txn, ser_ts });
                }
                commits_since_advance += 1;
                if opts
                    .stop_after_commits
                    .is_some_and(|limit| stats.committed >= limit)
                {
                    stopped_early = true;
                    break;
                }
                if commits_since_advance >= ADVANCE_EVERY {
                    commits_since_advance = 0;
                    pool.dispatcher.broadcast(&Op::Advance { csn });
                }
            }
            FrameEnvelope::Abort { txn } => {
                if let Some((_, mask)) = txns.remove(&txn) {
                    let mut remaining = mask;
                    while remaining != 0 {
                        let worker = remaining.trailing_zeros() as usize;
                        remaining &= remaining - 1;
                        pool.dispatcher.push(worker, Op::Drop { txn });
                    }
                }
            }
            FrameEnvelope::Checkpoint => {}
        }
    }

    stats.discarded = txns.len() as u64;
    if failure.is_none() && !stopped_early {
        // Completed pass: everything dispatched is at or below max_csn.
        pool.dispatcher
            .broadcast(&Op::Advance { csn: stats.max_csn });
    }
    let joined = pool.finish();
    if let Some(e) = failure {
        return Err(e);
    }
    let (images, watermark) = joined?;
    stats.images = images;
    stats.watermark = watermark;
    Ok(stats)
}

/// Statistics of a [`PartitionedApplier`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplierStats {
    /// Committed transactions applied.
    pub txns: u64,
    /// After-images installed.
    pub images: u64,
    /// Highest CSN applied.
    pub max_csn: Csn,
}

enum ApplierInner {
    Inline,
    Threaded(WorkerPool),
}

/// Partitioned application of already-decoded committed transactions — the
/// mirror-takeover flush path, where the reorder buffer holds fully decoded
/// [`CommittedTxn`]s rather than raw frames.
///
/// Writes route to workers by the same object-id hash as
/// [`replay_frames_into`]; [`PartitionedApplier::finish`] is the barrier
/// that makes the drained backlog fully visible before the takeover is
/// announced. With `workers == 1` everything applies inline.
pub struct PartitionedApplier {
    inner: ApplierInner,
    store: Arc<Store>,
    workers: usize,
    stats: ApplierStats,
}

impl PartitionedApplier {
    /// An applier over `workers` partition streams (capped at 64).
    #[must_use]
    pub fn new(store: &Arc<Store>, workers: usize) -> PartitionedApplier {
        let workers = workers.clamp(1, MAX_REPLAY_WORKERS);
        let inner = if workers <= 1 {
            ApplierInner::Inline
        } else {
            ApplierInner::Threaded(WorkerPool::spawn(store, workers))
        };
        PartitionedApplier {
            inner,
            store: Arc::clone(store),
            workers,
            stats: ApplierStats::default(),
        }
    }

    /// Number of partition streams.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queue one committed transaction's after-images for installation.
    pub fn apply(&mut self, txn: &CommittedTxn) {
        self.stats.txns += 1;
        self.stats.max_csn = self.stats.max_csn.max(txn.csn);
        match &mut self.inner {
            ApplierInner::Inline => {
                for (oid, image) in &txn.writes {
                    self.store.install(*oid, image.clone(), txn.ser_ts);
                    self.stats.images += 1;
                }
            }
            ApplierInner::Threaded(pool) => {
                for (oid, image) in &txn.writes {
                    let worker = oid.partition(self.workers);
                    pool.dispatcher.push(
                        worker,
                        Op::Install {
                            oid: *oid,
                            image: image.clone(),
                            ser_ts: txn.ser_ts,
                        },
                    );
                }
            }
        }
    }

    /// Barrier: flush every stream, wait for all installs, return totals.
    pub fn finish(self) -> Result<ApplierStats, RecoveryError> {
        let mut stats = self.stats;
        match self.inner {
            ApplierInner::Inline => Ok(stats),
            ApplierInner::Threaded(mut pool) => {
                pool.dispatcher
                    .broadcast(&Op::Advance { csn: stats.max_csn });
                let (images, _watermark) = pool.finish()?;
                stats.images = images;
                Ok(stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_record;
    use crate::record::Lsn;
    use rodain_store::{ObjectId, TxnId, Value};

    fn write(lsn: u64, txn: u64, oid: u64, v: i64) -> std::io::Result<LogRecord> {
        Ok(LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Write {
                oid: ObjectId(oid),
                image: Value::Int(v),
            },
        })
    }

    fn commit(lsn: u64, txn: u64, csn: u64, n: u32) -> std::io::Result<LogRecord> {
        Ok(LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Commit {
                csn: Csn(csn),
                ser_ts: Ts(csn * 10),
                n_writes: n,
            },
        })
    }

    fn frames_of(records: &[std::io::Result<LogRecord>]) -> Vec<io::Result<Bytes>> {
        records
            .iter()
            .map(|r| {
                let rec = r.as_ref().expect("test records are Ok");
                let frame = encode_record(rec);
                // Strip the 8-byte frame header: replay consumes payloads.
                Ok(frame.slice(8..))
            })
            .collect()
    }

    #[test]
    fn committed_writes_are_applied() {
        let store = Store::new();
        let stats = replay_into(
            &store,
            vec![write(1, 1, 100, 7), write(2, 1, 101, 8), commit(3, 1, 1, 2)],
        )
        .unwrap();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.images, 2);
        assert_eq!(stats.watermark, Csn(1));
        assert_eq!(store.read(ObjectId(100)).unwrap().0, Value::Int(7));
        assert_eq!(store.read(ObjectId(100)).unwrap().1, Ts(10));
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let store = Store::new();
        let stats = replay_into(
            &store,
            vec![
                write(1, 1, 100, 7),
                commit(2, 1, 1, 1),
                write(3, 2, 200, 9), // txn 2 never committed
            ],
        )
        .unwrap();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.discarded, 1);
        assert_eq!(store.read(ObjectId(200)), None);
    }

    #[test]
    fn replay_is_idempotent() {
        let store = Store::new();
        let records = || {
            vec![
                write(1, 1, 100, 7),
                commit(2, 1, 1, 1),
                write(3, 2, 100, 8),
                commit(4, 2, 2, 1),
            ]
        };
        replay_into(&store, records()).unwrap();
        let snap1 = store.snapshot();
        replay_into(&store, records()).unwrap();
        assert_eq!(store.snapshot(), snap1);
        assert_eq!(store.read(ObjectId(100)).unwrap().0, Value::Int(8));
    }

    #[test]
    fn truncated_log_starting_midstream_replays() {
        // A checkpoint-truncated log legitimately starts at csn 5.
        let store = Store::new();
        let stats = replay_into(
            &store,
            vec![write(10, 5, 1, 1), commit(11, 5, 5, 1), commit(12, 6, 6, 0)],
        )
        .unwrap();
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.max_csn, Csn(6));
    }

    #[test]
    fn io_error_propagates() {
        let store = Store::new();
        let err: std::io::Result<LogRecord> = Err(std::io::Error::other("boom"));
        assert!(matches!(
            replay_into(&store, vec![err]),
            Err(RecoveryError::Io(_))
        ));
    }

    #[test]
    fn empty_log_recovers_empty_state() {
        let store = Store::new();
        let stats = replay_into(&store, Vec::new()).unwrap();
        assert_eq!(stats, RecoveryStats::default());
        assert!(store.is_empty());
    }

    /// A mixed log for equivalence tests: multi-write transactions spread
    /// over many objects, interleaved aborts, a commit-less tail, repeated
    /// updates of the same object across CSNs.
    fn mixed_log(txns: u64, objects: u64) -> Vec<std::io::Result<LogRecord>> {
        let mut records = Vec::new();
        let mut lsn = 0u64;
        for t in 1..=txns {
            let writes = 1 + (t % 4);
            for w in 0..writes {
                lsn += 1;
                let oid = (t * 7 + w * 13) % objects;
                records.push(write(lsn, t, oid, (t * 100 + w) as i64));
            }
            lsn += 1;
            if t % 11 == 0 {
                // Aborted transaction: writes never applied.
                records.push(Ok(LogRecord {
                    lsn: Lsn(lsn),
                    txn: TxnId(t),
                    kind: RecordKind::Abort,
                }));
            } else {
                records.push(commit(lsn, t, t, writes as u32));
            }
        }
        // In-flight tail: writes without a commit.
        records.push(write(lsn + 1, txns + 1, 3, -1));
        records.push(write(lsn + 2, txns + 1, 5, -2));
        records
    }

    #[test]
    fn partitioned_replay_matches_sequential() {
        let records = mixed_log(200, 31);
        let sequential = Store::new();
        let seq_stats = replay_into(&sequential, mixed_log(200, 31)).unwrap();
        for workers in [2usize, 4, 8] {
            let parallel = Arc::new(Store::new());
            let par_stats = replay_frames_into(
                &parallel,
                frames_of(&records),
                ReplayOptions::with_workers(workers),
            )
            .unwrap();
            assert_eq!(par_stats, seq_stats, "stats diverged at {workers} workers");
            assert_eq!(
                parallel.snapshot(),
                sequential.snapshot(),
                "state diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn partitioned_replay_single_worker_is_sequential() {
        let records = mixed_log(50, 11);
        let a = Arc::new(Store::new());
        let stats = replay_frames_into(&a, frames_of(&records), ReplayOptions::default()).unwrap();
        let b = Store::new();
        let seq = replay_into(&b, mixed_log(50, 11)).unwrap();
        assert_eq!(stats, seq);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn partitioned_replay_detects_missing_writes() {
        let records = vec![write(1, 1, 100, 7), commit(2, 1, 1, 2)]; // claims 2 writes
        let store = Arc::new(Store::new());
        match replay_frames_into(&store, frames_of(&records), ReplayOptions::with_workers(4)) {
            Err(RecoveryError::Stream(ReorderError::MissingWrites { expected, got, .. })) => {
                assert_eq!((expected, got), (2, 1));
            }
            other => panic!("expected MissingWrites, got {other:?}"),
        }
    }

    #[test]
    fn partitioned_replay_duplicate_csn_is_idempotent() {
        // The same committed group appears twice (e.g. a respooled mirror
        // stream): both replays install at the same ser_ts, the second is
        // a no-op for state.
        let records = vec![
            write(1, 1, 100, 7),
            commit(2, 1, 5, 1),
            write(3, 2, 100, 7),
            commit(4, 2, 5, 1),
        ];
        let store = Arc::new(Store::new());
        let stats = replay_frames_into(&store, frames_of(&records), ReplayOptions::with_workers(2))
            .unwrap();
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.watermark, Csn(5));
        assert_eq!(store.read(ObjectId(100)).unwrap().0, Value::Int(7));
        assert_eq!(store.read(ObjectId(100)).unwrap().1, Ts(50));
    }

    #[test]
    fn crash_point_stops_early_and_rerun_converges() {
        let records = mixed_log(100, 17);
        let crashed = Arc::new(Store::new());
        let stats = replay_frames_into(
            &crashed,
            frames_of(&records),
            ReplayOptions {
                workers: 4,
                stop_after_commits: Some(20),
            },
        )
        .unwrap();
        assert_eq!(stats.committed, 20);
        assert!(stats.watermark <= stats.max_csn);
        // The interrupted store is a subset; a full re-replay from scratch
        // converges to the uninterrupted state.
        let full = Arc::new(Store::new());
        replay_frames_into(&full, frames_of(&records), ReplayOptions::with_workers(4)).unwrap();
        let reference = Store::new();
        replay_into(&reference, mixed_log(100, 17)).unwrap();
        assert_eq!(full.snapshot(), reference.snapshot());
    }

    #[test]
    fn partitioned_applier_matches_inline_apply() {
        let mk_txn = |t: u64| CommittedTxn {
            txn: TxnId(t),
            csn: Csn(t),
            ser_ts: Ts(t * 10),
            writes: (0..(1 + t % 3))
                .map(|w| (ObjectId((t * 5 + w * 3) % 23), Value::Int((t + w) as i64)))
                .collect(),
            commit_lsn: Lsn(t * 10),
        };
        let inline = Arc::new(Store::new());
        let mut a = PartitionedApplier::new(&inline, 1);
        for t in 1..=60 {
            a.apply(&mk_txn(t));
        }
        let inline_stats = a.finish().unwrap();
        let threaded = Arc::new(Store::new());
        let mut b = PartitionedApplier::new(&threaded, 4);
        for t in 1..=60 {
            b.apply(&mk_txn(t));
        }
        let threaded_stats = b.finish().unwrap();
        assert_eq!(inline_stats, threaded_stats);
        assert_eq!(inline.snapshot(), threaded.snapshot());
        assert_eq!(threaded_stats.max_csn, Csn(60));
    }
}
