//! Durability invariant checking.
//!
//! The harness workload is a stream of single-object increments, which
//! makes the durability argument a counting argument. For every object:
//!
//! * `acked` — increments whose commit the engine *acknowledged* to the
//!   driver. The availability contract covers exactly these.
//! * `attempts` — increments the driver submitted, acknowledged or not.
//!
//! Because the engine installs after-images at validation (before the
//! durability gate), a commit that *failed* its gate may still be visible
//! in the store — so the check is one-sided on both ends: the stored
//! counter must be at least every acknowledged increment (no acked commit
//! lost) and at most every attempted one (no phantom updates).

use rodain_store::{ObjectId, Store, Value};

/// Per-object ledger of attempted and acknowledged increments.
pub struct Ledger {
    acked: Vec<u64>,
    attempts: Vec<u64>,
}

impl Ledger {
    /// A ledger over objects `0..objects`, all counters zero.
    #[must_use]
    pub fn new(objects: u64) -> Ledger {
        Ledger {
            acked: vec![0; objects as usize],
            attempts: vec![0; objects as usize],
        }
    }

    /// Record that an increment of object `slot` was submitted.
    pub fn record_attempt(&mut self, slot: u64) {
        self.attempts[slot as usize] += 1;
    }

    /// Record that the engine acknowledged the commit of an increment of
    /// object `slot`.
    pub fn record_ack(&mut self, slot: u64) {
        self.acked[slot as usize] += 1;
    }

    /// Total acknowledged commits.
    #[must_use]
    pub fn acked_total(&self) -> u64 {
        self.acked.iter().sum()
    }

    /// Total submitted commits.
    #[must_use]
    pub fn attempts_total(&self) -> u64 {
        self.attempts.iter().sum()
    }

    /// Check the durability invariants against `store` (the serving
    /// node's database at quiescence). Returns one message per violation;
    /// empty means the store is consistent with the ledger.
    #[must_use]
    pub fn check_store(&self, store: &Store, label: &str) -> Vec<String> {
        let mut violations = Vec::new();
        for (i, (&acked, &attempts)) in self.acked.iter().zip(&self.attempts).enumerate() {
            let value = match store.read(ObjectId(i as u64)) {
                Some((Value::Int(v), _)) => v,
                Some((other, _)) => {
                    violations.push(format!(
                        "{label}: object {i} holds non-integer value {other:?}"
                    ));
                    continue;
                }
                None => {
                    violations.push(format!("{label}: object {i} missing from the store"));
                    continue;
                }
            };
            if value < 0 || (value as u64) < acked {
                violations.push(format!(
                    "{label}: object {i} lost acked commits (stored {value}, acked {acked})"
                ));
            }
            if value > 0 && value as u64 > attempts {
                violations.push(format!(
                    "{label}: object {i} has phantom updates (stored {value}, attempted {attempts})"
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(values: &[i64]) -> Store {
        let store = Store::new();
        for (i, &v) in values.iter().enumerate() {
            store.load_initial(ObjectId(i as u64), Value::Int(v));
        }
        store
    }

    #[test]
    fn consistent_store_passes() {
        let mut ledger = Ledger::new(2);
        for _ in 0..3 {
            ledger.record_attempt(0);
            ledger.record_ack(0);
        }
        ledger.record_attempt(1); // unacked attempt may or may not land
        let store = store_with(&[3, 1]);
        assert!(ledger.check_store(&store, "t").is_empty());
        let store = store_with(&[3, 0]);
        assert!(ledger.check_store(&store, "t").is_empty());
        assert_eq!(ledger.acked_total(), 3);
        assert_eq!(ledger.attempts_total(), 4);
    }

    #[test]
    fn lost_ack_is_reported() {
        let mut ledger = Ledger::new(1);
        ledger.record_attempt(0);
        ledger.record_ack(0);
        let store = store_with(&[0]);
        let violations = ledger.check_store(&store, "t");
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("lost acked commits"));
    }

    #[test]
    fn phantom_update_is_reported() {
        let mut ledger = Ledger::new(1);
        ledger.record_attempt(0);
        let store = store_with(&[2]);
        let violations = ledger.check_store(&store, "t");
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("phantom"));
    }

    #[test]
    fn missing_object_is_reported() {
        let ledger = Ledger::new(2);
        let store = store_with(&[0]); // object 1 absent
        let violations = ledger.check_store(&store, "t");
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("missing"));
    }
}
