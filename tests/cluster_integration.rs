//! Multi-process cluster integration: two `cluster_node` processes on
//! loopback, a networked 2PC coordinator driving mixed traffic, and an
//! online shard migration mid-run.
//!
//! Invariants checked:
//! - money conservation across cross-shard transfers spanning the
//!   migration (2PC atomicity over the wire),
//! - zero acked-commit loss on the migrating shard (every acknowledged
//!   increment survives the move),
//! - client convergence: a client with a pre-migration map reaches the
//!   new owner via `WrongShard` redirects and ends on a newer epoch.
//!
//! The test skips (passes vacuously) when the `cluster_node` binary is
//! not present; CI builds it first and points `RODAIN_CLUSTER_NODE_BIN`
//! at it.

use rodain::cluster::harness::{node_binary, NodeProcess, NodeProcessConfig};
use rodain::cluster::{ClusterClient, ClusterCoordinator, ShardMap, ShardOwner};
use rodain::shard::{ShardOp, ShardRouter};
use rodain::workload::NumberTranslationDb;
use rodain::{ObjectId, Value};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 4;
const BALANCES: u64 = 32;
const SEED_AMOUNT: i64 = 100;
/// A dedicated counter object used for the zero-acked-loss check.
const COUNTER_BASE: u64 = 1_000;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rodain-cluster-it-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn owner_of(node: &NodeProcess) -> ShardOwner {
    ShardOwner {
        client_addr: node.client_addr.clone(),
        peer_addr: node.peer_addr.clone(),
    }
}

/// The deployment map: A seats shards 0 and 1, B seats 2 and 3.
fn deployment_map(a: &NodeProcess, b: &NodeProcess) -> ShardMap {
    ShardMap {
        epoch: 2,
        owners: vec![owner_of(a), owner_of(a), owner_of(b), owner_of(b)],
    }
}

fn int_outcome(outcome: rodain::server::Outcome) -> Option<i64> {
    match outcome {
        rodain::server::Outcome::Ok(value) => value.as_int(),
        _ => None,
    }
}

#[test]
fn migration_under_mixed_traffic_conserves_money() {
    let Some(bin) = node_binary() else {
        eprintln!("cluster_node binary not found; skipping multi-process test");
        return;
    };
    let dir_a = scratch_dir("a");
    let dir_b = scratch_dir("b");
    let node_a = NodeProcess::spawn(&bin, &NodeProcessConfig::new(SHARDS, vec![0, 1], &dir_a))
        .expect("spawn node A");
    let node_b = NodeProcess::spawn(&bin, &NodeProcessConfig::new(SHARDS, vec![2, 3], &dir_b))
        .expect("spawn node B");

    let coordinator =
        ClusterCoordinator::connect(&node_a.peer_addr).expect("connect coordinator");
    let map = deployment_map(&node_a, &node_b);
    let addrs = vec![node_a.peer_addr.clone(), node_b.peer_addr.clone()];
    coordinator.broadcast_map(&map, &addrs).expect("install map");
    assert_eq!(coordinator.map().epoch, 2);

    // Find an object that routes to the shard we will migrate (1) for
    // the acked-loss counter, then seed all balances.
    let router = ShardRouter::new(SHARDS);
    let counter_oid = (COUNTER_BASE..COUNTER_BASE + 64)
        .map(ObjectId)
        .find(|oid| router.route(*oid) == 1)
        .expect("an oid routing to shard 1");
    for n in 0..BALANCES {
        coordinator
            .execute(vec![ShardOp::Put {
                oid: ObjectId(n),
                value: Value::Int(SEED_AMOUNT),
            }])
            .expect("seed balance");
    }
    coordinator
        .execute(vec![ShardOp::Put {
            oid: counter_oid,
            value: Value::Int(0),
        }])
        .expect("seed counter");

    // A client that learns the pre-migration map now, so its view is
    // stale after the cutover and it must converge via redirects.
    let mut stale_client =
        ClusterClient::connect(&node_a.client_addr, NumberTranslationDb::new(1_024))
            .expect("connect client");
    assert_eq!(stale_client.map().epoch, 2);

    // Mixed traffic from a second coordinator while the shard moves:
    // cross-shard transfers (conserve money) and single-shard increments
    // on the migrating shard (count every ack).
    let traffic = {
        let peer = node_a.peer_addr.clone();
        std::thread::spawn(move || {
            let coordinator = ClusterCoordinator::connect(&peer).expect("traffic coordinator");
            let mut acked_transfers = 0u64;
            let mut acked_increments = 0u64;
            for round in 0..120u64 {
                let from = ObjectId(round % BALANCES);
                let to = ObjectId((round + 17) % BALANCES);
                if from != to {
                    let transfer = vec![
                        ShardOp::Add {
                            oid: from,
                            delta: -1,
                        },
                        ShardOp::Add { oid: to, delta: 1 },
                    ];
                    if coordinator.execute(transfer).is_ok() {
                        acked_transfers += 1;
                    }
                }
                if coordinator
                    .execute(vec![ShardOp::Add {
                        oid: counter_oid,
                        delta: 1,
                    }])
                    .is_ok()
                {
                    acked_increments += 1;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            (acked_transfers, acked_increments)
        })
    };

    // A coordinator whose map predates the migration: it must converge
    // on the new placement through refresh-and-retry.
    let stale_coord =
        ClusterCoordinator::connect(&node_a.peer_addr).expect("stale coordinator");
    assert_eq!(stale_coord.map().epoch, 2);

    // Let traffic get going, then move shard 1 from A to B, live.
    std::thread::sleep(Duration::from_millis(40));
    let report = coordinator
        .migrate_shard(1, owner_of(&node_b))
        .expect("migrate shard 1");
    assert_eq!(report.shard, 1);
    assert_eq!(report.final_epoch, 3);
    assert_eq!(
        coordinator.map().owner(1).expect("owner").peer_addr,
        node_b.peer_addr,
        "shard 1 must now belong to node B"
    );

    // The stale coordinator's next write to the moved shard hits the old
    // owner, gets refused, refreshes, and lands on node B.
    stale_coord
        .execute(vec![ShardOp::Add {
            oid: counter_oid,
            delta: 0,
        }])
        .expect("stale coordinator converges after migration");
    assert!(stale_coord.map().epoch >= 3);

    let (acked_transfers, acked_increments) = traffic.join().expect("traffic thread");
    // In-doubt leftovers from transfers racing the cutover window are
    // finished (or presumed aborted) before auditing.
    coordinator.resolve_all().expect("resolve");

    // Audit through the stale client: it must converge on the new
    // placement via WrongShard redirects.
    let mut total = 0i64;
    for n in 0..BALANCES {
        let value = int_outcome(stale_client.get(ObjectId(n)).expect("get balance"))
            .expect("balance is an int");
        total += value;
    }
    assert_eq!(
        total,
        BALANCES as i64 * SEED_AMOUNT,
        "cross-shard transfers must conserve money across the migration \
         ({acked_transfers} transfers acked)"
    );
    let counter = int_outcome(stale_client.get(counter_oid).expect("get counter"))
        .expect("counter is an int");
    assert!(
        counter >= acked_increments as i64,
        "acked increments lost in migration: counter {counter} < acked {acked_increments}"
    );
    assert!(
        stale_client.map().epoch >= 3,
        "client must have converged on the post-migration map"
    );
    assert!(acked_increments > 0, "no traffic was acked during the run");

    node_a.quit();
    node_b.quit();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn cluster_map_is_served_and_redirects_count() {
    let Some(bin) = node_binary() else {
        eprintln!("cluster_node binary not found; skipping multi-process test");
        return;
    };
    let dir_a = scratch_dir("ra");
    let dir_b = scratch_dir("rb");
    let node_a = NodeProcess::spawn(&bin, &NodeProcessConfig::new(2, vec![0], &dir_a))
        .expect("spawn node A");
    let node_b = NodeProcess::spawn(&bin, &NodeProcessConfig::new(2, vec![1], &dir_b))
        .expect("spawn node B");
    let coordinator =
        ClusterCoordinator::connect(&node_a.peer_addr).expect("connect coordinator");
    let map = ShardMap {
        epoch: 2,
        owners: vec![owner_of(&node_a), owner_of(&node_b)],
    };
    let addrs = vec![node_a.peer_addr.clone(), node_b.peer_addr.clone()];
    coordinator.broadcast_map(&map, &addrs).expect("install map");

    // A raw (map-oblivious) client pointed at node A: requests whose
    // anchor lives on node B are answered WrongShard, not served.
    let mut raw = rodain::server::Client::connect(&node_a.client_addr).expect("connect raw");
    let router = ShardRouter::new(2);
    let foreign = (0..64)
        .map(ObjectId)
        .find(|oid| router.route(*oid) == 1)
        .expect("oid on shard 1");
    match raw.get(foreign, 0).expect("get") {
        rodain::server::Outcome::WrongShard { epoch } => assert_eq!(epoch, 2),
        other => panic!("expected WrongShard, got {other:?}"),
    }

    // The routing client resolves the same read against node B.
    let mut routed = ClusterClient::connect(&node_a.client_addr, NumberTranslationDb::new(64))
        .expect("connect routed");
    routed
        .put(foreign, Value::Int(7))
        .expect("routed put succeeds");
    assert_eq!(
        int_outcome(routed.get(foreign).expect("routed get")),
        Some(7)
    );

    node_a.quit();
    node_b.quit();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Sharing a coordinator across threads is part of the API contract.
#[allow(dead_code)]
fn coordinator_is_shareable(c: Arc<ClusterCoordinator>) -> impl Send + Sync {
    c
}
