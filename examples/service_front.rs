//! The full RODAIN node as a network service: the paper's Fig. 1 front to
//! back — User Request Interpreter (TCP) → engine → log shipping to a
//! Mirror Node — driven by TCP clients issuing number translations.
//!
//! Run with: `cargo run --release --example service_front`

use rodain::db::{MirrorLossPolicy, Rodain};
use rodain::net::InProcTransport;
use rodain::node::{MirrorConfig, MirrorNode};
use rodain::server::{Client, Outcome, Server};
use rodain::store::Store;
use rodain::workload::NumberTranslationDb;
use rodain::Value;
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // Mirror node (hot stand-by) over an in-process link.
    let (primary_side, mirror_side) = InProcTransport::pair();
    let mirror_store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        mirror_store.clone(),
        Arc::new(mirror_side),
        None,
        MirrorConfig::default(),
    );
    let applied = mirror.applied_csn_handle();
    let shutdown = mirror.shutdown_handle();
    let mirror_thread = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run()
    });

    // Primary engine + schema.
    let db = Arc::new(
        Rodain::builder()
            .workers(4)
            .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
            .build()
            .unwrap(),
    );
    let schema = NumberTranslationDb::new(10_000);
    schema.populate(&db.store());

    // The User Request Interpreter.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = Server::new(Arc::clone(&db), schema)
        .start(listener)
        .unwrap();
    println!("number-translation service listening on {}", server.addr());

    // Drive it with a few concurrent clients.
    let started = Instant::now();
    let addr = server.addr();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut translated = 0u64;
            for i in 0..500u64 {
                let number = (t * 2_503 + i * 13) % 10_000;
                match client.translate(number, 50).unwrap() {
                    Outcome::Ok(Value::Text(_)) => translated += 1,
                    Outcome::MissDeadline | Outcome::Overloaded => {}
                    other => panic!("unexpected outcome {other:?}"),
                }
                if i % 10 == 0 {
                    let _ = client
                        .provision(number, format!("+358-40-{i:07}"), 150)
                        .unwrap();
                }
            }
            translated
        }));
    }
    let translated: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = started.elapsed();
    println!(
        "4 clients: {translated} translations (+200 provisions) in {elapsed:?} \
         ({:.0} req/s through the full stack)",
        2_200.0 / elapsed.as_secs_f64()
    );
    println!("front-end stats: {:?}", server.stats());

    // Every provision reached the hot stand-by.
    let target = db.stats().committed;
    let deadline = Instant::now() + Duration::from_secs(5);
    while applied.load(Ordering::Acquire) < target && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    println!(
        "mirror applied csn {} of {} engine commits — hot stand-by is current",
        applied.load(Ordering::Acquire),
        target
    );

    server.shutdown();
    shutdown.store(true, Ordering::Release);
    let _ = mirror_thread.join();
}
