//! The discrete-event simulation engine.
//!
//! One simulated node pair executes a [`Trace`] under a [`SimConfig`].
//! Transactions run against a real [`Store`] with a real concurrency
//! controller and the real scheduler policies; only time is virtual.
//!
//! CPU model: `HardwareModel::cpus` processors (default one — the
//! prototype's Pentium Pro) executing transactions in *steps* — one data
//! access per step, plus a final
//! validation/log-generation step. Scheduling decisions (EDF order,
//! preemption, non-real-time reservation) are taken at step boundaries.
//! While a transaction waits for its commit gate (mirror acknowledgement or
//! disk flush) it holds an active-transaction slot but not the CPU — the
//! interaction that lets a slow commit path starve admission, which is
//! exactly how the paper's single-node disk configuration degrades.

use crate::config::{DiskMode, LoggingMode, SimConfig, TakeoverKind};
use crate::metrics::{LatencyStats, SimMetrics};
use rodain_occ::{
    make_controller, AccessDecision, CcPriority, ConcurrencyController, Protocol, RestartReason,
    ValidationOutcome,
};
use rodain_sched::{ActiveSet, Admission, OverloadManager, ReadyQueue, TaskMeta, TxnClass};
use rodain_store::{Store, TxnId, Value, Workspace};
use rodain_workload::{NumberTranslationDb, Trace, TxnKind, TxnRequest};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// Retry delay for a 2PL lock wait (ns).
const BLOCK_RETRY_NS: u64 = 200_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Queued,
    Running,
    CommitWait,
}

struct SimTxn {
    req: TxnRequest,
    meta: TaskMeta,
    /// Next access index; `== objects.len()` means the validation step.
    step: usize,
    restarts: u32,
    phase: Phase,
    ws: Workspace,
    evicted: bool,
    commit_submitted_at: u64,
    /// Log records this transaction's commit group will contain.
    records: u64,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    Arrival(usize),
    StepDone(TxnId),
    Requeue(TxnId),
    CommitAck(TxnId),
    DiskFlushDone,
    MirrorFlushDone,
    PrimaryFails,
    ServiceRestored,
}

struct QueueEntry {
    time: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (Reverse(self.time), Reverse(self.seq)).cmp(&(Reverse(other.time), Reverse(other.seq)))
    }
}

/// One simulated session. Create with [`Simulation::new`], run with
/// [`Simulation::run`].
pub struct Simulation {
    cfg: SimConfig,
    trace: Trace,
    db: NumberTranslationDb,
    store: Store,
    cc: Arc<dyn ConcurrencyController>,
    ready: ReadyQueue,
    active: ActiveSet,
    overload: OverloadManager,
    txns: HashMap<TxnId, SimTxn>,
    events: BinaryHeap<QueueEntry>,
    event_seq: u64,
    clock: u64,
    running: std::collections::HashSet<TxnId>,
    // Primary synchronous disk (single-node mode).
    disk_queue: VecDeque<Vec<TxnId>>,
    disk_inflight: Option<Vec<TxnId>>,
    disk_pending: Vec<TxnId>,
    // Mirror asynchronous spool (two-node, disk on).
    mirror_spool: VecDeque<u64>,
    mirror_busy: bool,
    // Failure injection state.
    down: bool,
    failed: bool,
    // Accumulators.
    response_samples: Vec<u64>,
    commit_wait_samples: Vec<u64>,
    non_rt_response_samples: Vec<u64>,
    metrics: SimMetrics,
}

impl Simulation {
    /// Build a session: populate the database, pre-schedule arrivals.
    #[must_use]
    pub fn new(cfg: SimConfig, trace: Trace, db_objects: u64) -> Self {
        let db = NumberTranslationDb::new(db_objects);
        let store = Store::new();
        db.populate(&store);
        let cc = make_controller(cfg.protocol);
        let mut sim = Simulation {
            ready: ReadyQueue::new(cfg.reservation),
            overload: OverloadManager::new(cfg.overload),
            cc,
            cfg,
            db,
            store,
            active: ActiveSet::new(),
            txns: HashMap::new(),
            events: BinaryHeap::with_capacity(trace.len() * 2 + 16),
            event_seq: 0,
            clock: 0,
            running: std::collections::HashSet::new(),
            disk_queue: VecDeque::new(),
            disk_inflight: None,
            disk_pending: Vec::new(),
            mirror_spool: VecDeque::new(),
            mirror_busy: false,
            down: false,
            failed: false,
            response_samples: Vec::with_capacity(trace.len()),
            commit_wait_samples: Vec::with_capacity(trace.len()),
            non_rt_response_samples: Vec::new(),
            metrics: SimMetrics::default(),
            trace,
        };
        sim.metrics.offered = sim.trace.len() as u64;
        sim.metrics.offered_non_rt = sim
            .trace
            .requests
            .iter()
            .filter(|r| r.kind == TxnKind::NonRealTime)
            .count() as u64;
        let arrivals: Vec<(usize, u64)> = sim
            .trace
            .requests
            .iter()
            .enumerate()
            .map(|(idx, req)| (idx, req.arrival_ns))
            .collect();
        for (idx, at) in arrivals {
            sim.push_event(at, Event::Arrival(idx));
        }
        if let Some(failure) = sim.cfg.failure {
            sim.push_event(failure.fail_at_ns, Event::PrimaryFails);
        }
        sim
    }

    fn push_event(&mut self, time: u64, event: Event) {
        self.event_seq += 1;
        self.events.push(QueueEntry {
            time,
            seq: self.event_seq,
            event,
        });
    }

    /// Run to completion and return the session metrics.
    #[must_use]
    pub fn run(mut self) -> SimMetrics {
        while let Some(entry) = self.events.pop() {
            debug_assert!(entry.time >= self.clock, "time went backwards");
            self.clock = entry.time;
            self.handle(entry.event);
        }
        self.metrics.sim_end_ns = self.clock;
        self.metrics.cc = self.cc.stats();
        self.metrics.response =
            LatencyStats::from_samples(std::mem::take(&mut self.response_samples));
        self.metrics.commit_wait =
            LatencyStats::from_samples(std::mem::take(&mut self.commit_wait_samples));
        self.metrics.non_rt_response =
            LatencyStats::from_samples(std::mem::take(&mut self.non_rt_response_samples));
        self.metrics
    }

    /// Read-only access to the simulated database (state checks in tests).
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Arrival(idx) => self.on_arrival(idx),
            Event::StepDone(txn) => self.on_step_done(txn),
            Event::Requeue(txn) => self.on_requeue(txn),
            Event::CommitAck(txn) => self.on_commit_ack(txn),
            Event::DiskFlushDone => self.on_disk_flush_done(),
            Event::MirrorFlushDone => self.on_mirror_flush_done(),
            Event::PrimaryFails => self.on_primary_fails(),
            Event::ServiceRestored => self.on_service_restored(),
        }
    }

    // ----- arrivals & admission ------------------------------------------

    fn on_arrival(&mut self, idx: usize) {
        if self.down {
            self.metrics.missed_unavailable += 1;
            return;
        }
        let req = self.trace.requests[idx].clone();
        let txn_id = TxnId(req.seq + 1);
        let meta = self.task_meta(&req);

        match self.overload.admit(self.clock, &meta, &self.active) {
            Admission::Reject => {
                self.metrics.missed_admission += 1;
                return;
            }
            Admission::AcceptEvicting(victim) => {
                let victim_phase = self.txns.get(&victim).map(|t| t.phase);
                if victim_phase == Some(Phase::CommitWait) {
                    // A committing transaction cannot be rolled back
                    // (deferred write already installed); reject the
                    // arrival instead.
                    self.metrics.missed_admission += 1;
                    return;
                }
                self.evict(victim);
            }
            Admission::Accept => {}
        }

        let priority = CcPriority(meta.deadline.unwrap_or(u64::MAX));
        self.cc.begin(txn_id, priority);
        self.active.insert(meta);
        self.txns.insert(
            txn_id,
            SimTxn {
                req,
                meta,
                step: 0,
                restarts: 0,
                phase: Phase::Queued,
                ws: Workspace::new(txn_id),
                evicted: false,
                commit_submitted_at: 0,
                records: 0,
            },
        );
        self.ready.push(meta);
        self.try_dispatch();
    }

    fn task_meta(&self, req: &TxnRequest) -> TaskMeta {
        let txn_id = TxnId(req.seq + 1);
        let reads = req.objects.len() as u64;
        let writes = if req.is_update() { reads } else { 0 };
        let eager = matches!(self.cfg.protocol, Protocol::OccTi | Protocol::TwoPlHp);
        let est = self.cfg.hardware.read_phase_ns(reads, writes, eager)
            + self.cfg.hardware.validate_phase_ns(writes + 1);
        match req.kind {
            TxnKind::ReadOnly | TxnKind::Update => TaskMeta::firm(
                txn_id,
                req.arrival_ns,
                req.relative_deadline_ns.unwrap_or(u64::MAX / 2),
                est,
            ),
            TxnKind::NonRealTime => TaskMeta::non_real_time(txn_id, req.arrival_ns, est),
        }
    }

    fn evict(&mut self, victim: TxnId) {
        if let Some(t) = self.txns.get_mut(&victim) {
            t.evicted = true;
            match t.phase {
                Phase::Queued => {
                    // Still in the ready queue; it aborts when popped.
                }
                Phase::Running => {
                    // Aborts at its next step boundary.
                }
                Phase::CommitWait => unreachable!("checked by caller"),
            }
        }
        // Slot frees immediately so the arrival can take it.
        self.active.remove(victim);
    }

    // ----- CPU dispatch ----------------------------------------------------

    fn try_dispatch(&mut self) {
        if self.down {
            return;
        }
        let cpus = self.cfg.hardware.cpus.max(1);
        let mut expired = Vec::new();
        while self.running.len() < cpus {
            let Some(task) = self.ready.pop(self.clock, &mut expired) else {
                break;
            };
            for meta in expired.drain(..) {
                self.finish_abort_deadline(meta.txn);
            }
            let Some(txn) = self.txns.get_mut(&task.txn) else {
                continue; // already finished (evicted & cleaned up)
            };
            if txn.evicted {
                let id = task.txn;
                self.finish_abort(id, AbortClass::Evicted);
                continue;
            }
            if let Some(reason) = self.cc.doomed(task.txn) {
                self.handle_restart(task.txn, reason);
                continue;
            }
            txn.phase = Phase::Running;
            let id = task.txn;
            self.running.insert(id);
            self.execute_step(id);
        }
        for meta in expired.drain(..) {
            self.finish_abort_deadline(meta.txn);
        }
    }

    /// Perform the access of the current step (data touch + CC hooks), then
    /// schedule its CPU burst.
    fn execute_step(&mut self, id: TxnId) {
        let (step, n_accesses, is_update, seq) = {
            let t = self.txns.get(&id).expect("running txn");
            (t.step, t.req.objects.len(), t.req.is_update(), t.req.seq)
        };
        let hw = self.cfg.hardware;
        let eager = matches!(self.cfg.protocol, Protocol::OccTi | Protocol::TwoPlHp);

        if step < n_accesses {
            let object = {
                let t = self.txns.get(&id).expect("txn");
                self.db.object_id(t.req.objects[step])
            };
            // CC hook first (2PL takes its lock here), then the data touch.
            let observed = self
                .store
                .version(object)
                .map(|(w, _)| w)
                .unwrap_or_default();
            match self.cc.on_read(id, object, observed) {
                AccessDecision::Proceed => {}
                AccessDecision::Restart(reason) => {
                    self.running.remove(&id);
                    self.handle_restart(id, reason);
                    self.try_dispatch();
                    return;
                }
                AccessDecision::Block { .. } => {
                    self.block_and_retry(id);
                    return;
                }
            }
            let value = {
                let t = self.txns.get_mut(&id).expect("txn");
                t.ws.read(&self.store, object)
            };
            let mut cost = hw.cpu_per_read_ns;
            if is_update {
                match self.cc.on_write(id, object, &self.store) {
                    AccessDecision::Proceed => {}
                    AccessDecision::Restart(reason) => {
                        self.running.remove(&id);
                        self.handle_restart(id, reason);
                        self.try_dispatch();
                        return;
                    }
                    AccessDecision::Block { .. } => {
                        self.block_and_retry(id);
                        return;
                    }
                }
                let new_value = self.db.updated_record(&value.unwrap_or(Value::Null), seq);
                let t = self.txns.get_mut(&id).expect("txn");
                t.ws.write(object, new_value);
                cost += hw.cpu_per_write_ns;
            }
            if eager {
                cost += hw.cc_access_overhead_ns * if is_update { 2 } else { 1 };
            }
            cost += hw.cpu_txn_base_ns / (n_accesses as u64 + 1);
            self.ready.account_busy(cost);
            self.push_event(self.clock + cost, Event::StepDone(id));
        } else {
            // Validation + log-generation step. The "No logs" reference
            // configuration generates no records at all, which is exactly
            // the overhead Fig 3 isolates.
            let records = {
                let t = self.txns.get_mut(&id).expect("txn");
                t.records = t.ws.write_count() as u64 + 1;
                t.records
            };
            let mut cost = match self.cfg.mode {
                LoggingMode::NoLogs => hw.validate_phase_ns(0),
                _ => hw.validate_phase_ns(records),
            };
            cost += hw.cpu_txn_base_ns / (n_accesses as u64 + 1);
            self.ready.account_busy(cost);
            self.push_event(self.clock + cost, Event::StepDone(id));
        }
    }

    fn block_and_retry(&mut self, id: TxnId) {
        // 2PL lock wait: yield the CPU and retry the same access later.
        self.running.remove(&id);
        if let Some(t) = self.txns.get_mut(&id) {
            t.phase = Phase::Queued;
        }
        self.push_event(self.clock + BLOCK_RETRY_NS, Event::Requeue(id));
        self.try_dispatch();
    }

    fn on_requeue(&mut self, id: TxnId) {
        let Some(t) = self.txns.get(&id) else {
            return;
        };
        self.ready.push(t.meta);
        self.try_dispatch();
    }

    fn on_step_done(&mut self, id: TxnId) {
        if !self.running.remove(&id) {
            // Stale completion: a failure wiped the CPU between this
            // event being scheduled and fired, and on_primary_fails
            // already accounted the transaction.
            self.try_dispatch();
            return;
        }

        let Some(t) = self.txns.get_mut(&id) else {
            self.try_dispatch();
            return;
        };
        if self.down {
            // Failure hit while this step was on the CPU; on_primary_fails
            // already accounted the transaction.
            return;
        }
        if t.evicted {
            self.finish_abort(id, AbortClass::Evicted);
            self.try_dispatch();
            return;
        }
        if t.meta.class == TxnClass::Firm && t.meta.expired(self.clock) {
            self.finish_abort_deadline(id);
            self.try_dispatch();
            return;
        }
        if let Some(reason) = self.cc.doomed(id) {
            self.handle_restart(id, reason);
            self.try_dispatch();
            return;
        }

        let n_accesses = t.req.objects.len();
        if t.step < n_accesses {
            t.step += 1;
        } else {
            // Validation step finished: validate atomically.
            self.validate(id);
            self.try_dispatch();
            return;
        }

        // Preemption at step boundaries: a more urgent ready transaction
        // takes the CPU; this one re-queues with its progress kept.
        let my_key = t.meta.priority_key();
        if self
            .ready
            .earliest_rt_deadline()
            .is_some_and(|d| d < my_key)
        {
            t.phase = Phase::Queued;
            let meta = t.meta;
            self.ready.push(meta);
            self.try_dispatch();
            return;
        }

        self.running.insert(id);
        self.execute_step(id);
    }

    // ----- validation & commit paths --------------------------------------

    fn validate(&mut self, id: TxnId) {
        let outcome = {
            let t = self.txns.get(&id).expect("txn at validation");
            self.cc.validate(&t.ws, &self.store)
        };
        match outcome {
            ValidationOutcome::Commit { victims, .. } => {
                // Victims discover their doom at their next step boundary
                // or dispatch; nothing to do here beyond bookkeeping
                // (the controller already marked them).
                let _ = victims;
                let records = self.txns.get(&id).map(|t| t.records).unwrap_or(1);
                if self.cfg.mode != LoggingMode::NoLogs {
                    self.metrics.log_records += records;
                    // Approximate frame bytes: header 25 + image ~40/write.
                    self.metrics.log_bytes += 33 + (records - 1) * 65;
                }
                self.submit_commit(id, records);
            }
            ValidationOutcome::Restart(reason) => {
                self.handle_restart(id, reason);
            }
        }
    }

    fn submit_commit(&mut self, id: TxnId, records: u64) {
        let hw = self.cfg.hardware;
        {
            let t = self.txns.get_mut(&id).expect("txn");
            t.phase = Phase::CommitWait;
            t.commit_submitted_at = self.clock;
        }
        match self.cfg.mode {
            LoggingMode::NoLogs => self.complete_commit(id),
            LoggingMode::SingleNode {
                disk: DiskMode::Off,
            } => {
                // Log handled (records generated, buffered) but no flush.
                self.complete_commit(id);
            }
            LoggingMode::SingleNode { disk: DiskMode::On } => {
                self.disk_pending.push(id);
                self.maybe_start_disk_flush();
            }
            LoggingMode::TwoNode { disk } => {
                let mut delay = hw.net_rtt_ns + hw.mirror_ingest_per_record_ns * records;
                if disk == DiskMode::On {
                    // Backpressure: acks slow down once the mirror's spool
                    // overflows its buffer.
                    let cap = hw.mirror_disk_queue_cap as u64;
                    let backlog = self.mirror_spool.len() as u64;
                    if backlog > cap {
                        let overflow_batches =
                            (backlog - cap) / hw.mirror_disk_max_batch.max(1) as u64 + 1;
                        delay += overflow_batches * hw.disk_flush_ns;
                    }
                }
                self.push_event(self.clock + delay, Event::CommitAck(id));
            }
        }
    }

    fn maybe_start_disk_flush(&mut self) {
        if self.disk_inflight.is_some() {
            return;
        }
        // Coalesce whatever is waiting, up to the batch limit.
        let batch_limit = self.cfg.hardware.disk_max_batch.max(1);
        while !self.disk_pending.is_empty() && self.disk_queue.len() < usize::MAX {
            let take = self.disk_pending.len().min(batch_limit);
            let batch: Vec<TxnId> = self.disk_pending.drain(..take).collect();
            self.disk_queue.push_back(batch);
            if self.disk_pending.is_empty() {
                break;
            }
        }
        if let Some(batch) = self.disk_queue.pop_front() {
            self.disk_inflight = Some(batch);
            self.push_event(
                self.clock + self.cfg.hardware.disk_flush_ns,
                Event::DiskFlushDone,
            );
        }
    }

    fn on_disk_flush_done(&mut self) {
        self.metrics.disk_flushes += 1;
        if let Some(batch) = self.disk_inflight.take() {
            for id in batch {
                self.complete_commit(id);
            }
        }
        if !self.disk_queue.is_empty() || !self.disk_pending.is_empty() {
            self.maybe_start_disk_flush();
        }
    }

    fn on_commit_ack(&mut self, id: TxnId) {
        if self.down {
            return; // the ack never reached the failed primary
        }
        let records = self.txns.get(&id).map(|t| t.records).unwrap_or(1);
        if let LoggingMode::TwoNode { disk: DiskMode::On } = self.cfg.mode {
            self.mirror_spool.push_back(records);
            self.metrics.mirror_backlog_max = self
                .metrics
                .mirror_backlog_max
                .max(self.mirror_spool.len() as u64);
            if !self.mirror_busy {
                self.mirror_busy = true;
                self.push_event(
                    self.clock + self.cfg.hardware.disk_flush_ns,
                    Event::MirrorFlushDone,
                );
            }
        }
        self.complete_commit(id);
    }

    fn on_mirror_flush_done(&mut self) {
        let batch = self.cfg.hardware.mirror_disk_max_batch.max(1);
        for _ in 0..batch {
            if self.mirror_spool.pop_front().is_none() {
                break;
            }
        }
        if self.mirror_spool.is_empty() {
            self.mirror_busy = false;
        } else {
            self.push_event(
                self.clock + self.cfg.hardware.disk_flush_ns,
                Event::MirrorFlushDone,
            );
        }
    }

    fn complete_commit(&mut self, id: TxnId) {
        let Some(t) = self.txns.remove(&id) else {
            return;
        };
        self.active.remove(id);
        self.metrics.committed += 1;
        if t.req.kind == TxnKind::NonRealTime {
            self.metrics.committed_non_rt += 1;
            self.non_rt_response_samples
                .push(self.clock.saturating_sub(t.meta.arrival));
        }
        self.response_samples
            .push(self.clock.saturating_sub(t.meta.arrival));
        self.commit_wait_samples
            .push(self.clock.saturating_sub(t.commit_submitted_at));
        if t.meta.expired(self.clock) {
            self.metrics.late_commits += 1;
        }
        if self.cfg.failure.is_some() {
            if !self.failed {
                self.metrics.last_commit_before_failure_ns = Some(self.clock);
            } else if self.metrics.first_commit_after_failure_ns.is_none() {
                self.metrics.first_commit_after_failure_ns = Some(self.clock);
            }
        }
        self.metrics.restarts += t.restarts as u64;
    }

    // ----- aborts & restarts ----------------------------------------------

    fn handle_restart(&mut self, id: TxnId, reason: RestartReason) {
        let hw = self.cfg.hardware;
        let eager = matches!(self.cfg.protocol, Protocol::OccTi | Protocol::TwoPlHp);
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        t.restarts += 1;
        t.ws.reset();
        t.step = 0;
        t.phase = Phase::Queued;
        self.metrics.restarts += 1;

        // Enough slack for a full re-execution?
        let reads = t.req.objects.len() as u64;
        let writes = if t.req.is_update() { reads } else { 0 };
        let min_exec = hw.read_phase_ns(reads, writes, eager) + hw.validate_phase_ns(writes + 1);
        let fits = match t.meta.deadline {
            Some(d) if t.meta.class == TxnClass::Firm => self.clock + min_exec <= d,
            _ => true,
        };
        if !fits {
            let class = match reason {
                RestartReason::EmptyInterval
                | RestartReason::BroadcastConflict
                | RestartReason::Wounded => AbortClass::Conflict,
                RestartReason::Stale => AbortClass::Conflict,
            };
            self.finish_abort(id, class);
            return;
        }
        let meta = t.meta;
        let priority = CcPriority(meta.deadline.unwrap_or(u64::MAX));
        self.cc.begin(id, priority);
        self.ready.push(meta);
    }

    fn finish_abort_deadline(&mut self, id: TxnId) {
        self.overload.record_miss(self.clock);
        self.finish_abort(id, AbortClass::Deadline);
    }

    fn finish_abort(&mut self, id: TxnId, class: AbortClass) {
        if let Some(t) = self.txns.remove(&id) {
            self.metrics.restarts += 0;
            let _ = t;
        }
        self.active.remove(id);
        self.cc.remove(id);
        match class {
            AbortClass::Deadline => self.metrics.missed_deadline += 1,
            AbortClass::Conflict => self.metrics.missed_conflict += 1,
            AbortClass::Evicted => self.metrics.missed_evicted += 1,
            AbortClass::Unavailable => self.metrics.missed_unavailable += 1,
        }
    }

    // ----- failure injection ----------------------------------------------

    fn on_primary_fails(&mut self) {
        let failure = self.cfg.failure.expect("failure injected");
        self.down = true;
        self.failed = true;

        // Every in-flight transaction is lost with the node's main memory.
        let in_flight: Vec<TxnId> = self.txns.keys().copied().collect();
        for id in in_flight {
            self.finish_abort(id, AbortClass::Unavailable);
        }
        self.ready.clear();
        self.active.clear();
        self.running.clear();
        self.disk_queue.clear();
        self.disk_pending.clear();
        self.disk_inflight = None;

        let restore_delay = match failure.takeover {
            TakeoverKind::MirrorTakeover => failure.detection_ns + failure.takeover_cost_ns,
            TakeoverKind::DiskRecovery => {
                failure.detection_ns
                    + failure.reboot_ns
                    + failure.replay_per_record_ns * self.metrics.log_records
            }
        };
        self.push_event(self.clock + restore_delay, Event::ServiceRestored);
    }

    fn on_service_restored(&mut self) {
        self.down = false;
        // The survivor (or the rebooted node) runs alone: Contingency mode
        // with synchronous disk logging.
        self.cfg.mode = LoggingMode::SingleNode { disk: DiskMode::On };
        // A fresh controller: the failed node's in-memory CC state is gone.
        self.cc = make_controller(self.cfg.protocol);
    }
}

enum AbortClass {
    Deadline,
    Conflict,
    Evicted,
    Unavailable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FailureInjection;
    use rodain_workload::{TraceGenerator, WorkloadSpec};

    fn small_spec(rate: f64, wr: f64) -> WorkloadSpec {
        WorkloadSpec {
            count: 2_000,
            db_objects: 3_000,
            arrival_rate_tps: rate,
            write_fraction: wr,
            ..WorkloadSpec::default()
        }
    }

    fn run(cfg: SimConfig, spec: WorkloadSpec) -> SimMetrics {
        let trace = TraceGenerator::new(spec.clone()).generate();
        Simulation::new(cfg, trace, spec.db_objects).run()
    }

    #[test]
    fn light_load_commits_everything() {
        let m = run(SimConfig::two_node(DiskMode::On), small_spec(50.0, 0.2));
        assert_eq!(m.offered, 2_000);
        assert!(
            m.miss_ratio() < 0.01,
            "light load should commit (miss {})",
            m.miss_ratio()
        );
        assert!(m.committed >= 1_980);
        assert!(m.response.p95_ns > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(SimConfig::two_node(DiskMode::On), small_spec(150.0, 0.5));
        let b = run(SimConfig::two_node(DiskMode::On), small_spec(150.0, 0.5));
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.missed_deadline, b.missed_deadline);
        assert_eq!(a.missed_admission, b.missed_admission);
        assert_eq!(a.response.p95_ns, b.response.p95_ns);
    }

    #[test]
    fn overload_saturates_with_admission_aborts() {
        let m = run(SimConfig::two_node(DiskMode::Off), small_spec(450.0, 0.2));
        assert!(
            m.miss_ratio() > 0.25,
            "450 tps must overload a ~290 tps CPU (miss {})",
            m.miss_ratio()
        );
        // The paper: "most of the unsuccessfully executed (=missed)
        // transactions are due to abortions by overload manager".
        assert!(
            m.missed_admission > m.missed_deadline,
            "admission {} vs deadline {}",
            m.missed_admission,
            m.missed_deadline
        );
    }

    #[test]
    fn single_node_sync_disk_collapses_much_earlier() {
        let disk = run(SimConfig::single_node(DiskMode::On), small_spec(200.0, 0.5));
        let two = run(SimConfig::two_node(DiskMode::On), small_spec(200.0, 0.5));
        assert!(
            disk.miss_ratio() > two.miss_ratio() + 0.2,
            "disk {} vs mirror {}",
            disk.miss_ratio(),
            two.miss_ratio()
        );
        assert!(disk.disk_flushes > 0);
        assert!(two.disk_flushes == 0);
    }

    #[test]
    fn no_logs_close_to_single_node_no_disk() {
        let nologs = run(SimConfig::no_logs(), small_spec(200.0, 0.2));
        let nodisk = run(
            SimConfig::single_node(DiskMode::Off),
            small_spec(200.0, 0.2),
        );
        // "The results from this optimal situation do not differ much from
        // the results of Node with logging turned off."
        assert!((nologs.miss_ratio() - nodisk.miss_ratio()).abs() < 0.05);
    }

    #[test]
    fn commit_wait_reflects_the_commit_path() {
        let spec = small_spec(50.0, 0.2);
        let nologs = run(SimConfig::no_logs(), spec.clone());
        let two = run(SimConfig::two_node(DiskMode::Off), spec.clone());
        let disk = run(SimConfig::single_node(DiskMode::On), spec);
        assert_eq!(nologs.commit_wait.p50_ns, 0);
        // Two-node: about one RTT.
        assert!(two.commit_wait.p50_ns >= 800_000);
        assert!(two.commit_wait.p50_ns < 3_000_000);
        // Sync disk: about one flush.
        assert!(disk.commit_wait.p50_ns >= 10_000_000);
    }

    #[test]
    fn database_state_reflects_committed_updates() {
        let spec = WorkloadSpec {
            count: 500,
            db_objects: 100,
            arrival_rate_tps: 50.0,
            write_fraction: 1.0,
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec.clone()).generate();
        let sim = Simulation::new(SimConfig::two_node(DiskMode::Off), trace, spec.db_objects);
        // Count is checked through translation counters after the run.
        let metrics = {
            let store_probe: Vec<u64> = Vec::new();
            let _ = store_probe;
            sim.run()
        };
        assert!(metrics.committed > 450);
        assert!(metrics.log_records >= metrics.committed);
    }

    #[test]
    fn takeover_beats_disk_recovery() {
        let spec = WorkloadSpec {
            count: 6_000,
            arrival_rate_tps: 100.0,
            write_fraction: 0.2,
            db_objects: 3_000,
            ..WorkloadSpec::default()
        };
        let mut takeover_cfg = SimConfig::two_node(DiskMode::On);
        takeover_cfg.failure = Some(FailureInjection {
            fail_at_ns: 20_000_000_000,
            takeover: TakeoverKind::MirrorTakeover,
            ..FailureInjection::default()
        });
        let mut recovery_cfg = SimConfig::single_node(DiskMode::On);
        recovery_cfg.failure = Some(FailureInjection {
            fail_at_ns: 20_000_000_000,
            takeover: TakeoverKind::DiskRecovery,
            ..FailureInjection::default()
        });
        let spec2 = WorkloadSpec {
            arrival_rate_tps: 60.0,
            ..spec.clone()
        };
        let takeover = run(takeover_cfg, spec2.clone());
        let recovery = run(recovery_cfg, spec2);
        let t_gap = takeover.unavailability_ns().expect("takeover gap");
        let r_gap = recovery.unavailability_ns().expect("recovery gap");
        assert!(
            t_gap * 5 < r_gap,
            "takeover {} ns should be far below disk recovery {} ns",
            t_gap,
            r_gap
        );
        assert!(takeover.missed_unavailable < recovery.missed_unavailable);
    }

    #[test]
    fn conflicts_appear_under_hotspot_contention() {
        let spec = WorkloadSpec {
            count: 4_000,
            db_objects: 2_000,
            arrival_rate_tps: 220.0,
            write_fraction: 0.8,
            access: rodain_workload::AccessPattern::Hotspot {
                hot_fraction: 0.005,
                hot_probability: 0.8,
            },
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec.clone()).generate();
        let m = Simulation::new(SimConfig::two_node(DiskMode::Off), trace, spec.db_objects).run();
        assert!(
            m.restarts > 0 || m.missed_conflict > 0 || m.cc.adjustments > 0,
            "hotspot contention should exercise the controller: {:?}",
            m.cc
        );
    }

    #[test]
    fn non_rt_transactions_complete_via_reservation() {
        let spec = WorkloadSpec {
            count: 3_000,
            arrival_rate_tps: 240.0,
            write_fraction: 0.1,
            non_rt_fraction: 0.05,
            db_objects: 3_000,
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec.clone()).generate();
        let m = Simulation::new(SimConfig::two_node(DiskMode::Off), trace, spec.db_objects).run();
        // Non-RT work is ~5 % of 3 000 ≈ 150 txns; the reservation must let
        // a good share of them through even under high RT load.
        assert!(m.committed > 0);
        assert!(m.miss_ratio() < 0.6);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::config::{FailureInjection, SimConfig, TakeoverKind};
    use crate::metrics::SimMetrics;
    use rodain_workload::{TraceGenerator, WorkloadSpec};

    fn run_with_failure(fail_at_ns: u64, kind: TakeoverKind) -> SimMetrics {
        run_with_failure_count(fail_at_ns, kind, 1_500)
    }

    fn run_with_failure_count(fail_at_ns: u64, kind: TakeoverKind, count: u64) -> SimMetrics {
        let spec = WorkloadSpec {
            count,
            db_objects: 2_000,
            arrival_rate_tps: 100.0,
            write_fraction: 0.2,
            ..WorkloadSpec::default()
        };
        let mut cfg = SimConfig::two_node(DiskMode::On);
        cfg.failure = Some(FailureInjection {
            fail_at_ns,
            takeover: kind,
            ..FailureInjection::default()
        });
        let trace = TraceGenerator::new(spec.clone()).generate();
        Simulation::new(cfg, trace, spec.db_objects).run()
    }

    #[test]
    fn failure_before_any_arrival_still_recovers() {
        // The primary dies at t=0: everything before restoration is
        // unavailable; service resumes in contingency mode.
        let m = run_with_failure(0, TakeoverKind::MirrorTakeover);
        assert!(m.missed_unavailable > 0);
        assert!(m.committed > 0, "service must resume after takeover");
        assert!(m.last_commit_before_failure_ns.is_none());
        assert!(m.first_commit_after_failure_ns.is_some());
        assert_eq!(m.committed + m.missed(), m.offered);
    }

    #[test]
    fn failure_after_last_arrival_changes_nothing_but_accounting() {
        // 1 500 txns at 100 tps span ~15 s; fail at t=100 s.
        let m = run_with_failure(100_000_000_000, TakeoverKind::MirrorTakeover);
        assert_eq!(m.missed_unavailable, 0);
        assert!(m.miss_ratio() < 0.02);
        // No commit happens after the failure: no takeover window exists.
        assert!(m.first_commit_after_failure_ns.is_none());
    }

    #[test]
    fn disk_recovery_downtime_scales_with_log_volume() {
        // 4 000 txns at 100 tps span ~40 s: both failures leave time for
        // service to resume (reboot + replay ≈ 20+ s) before the session
        // ends, so both unavailability windows are observable.
        let early = run_with_failure_count(5_000_000_000, TakeoverKind::DiskRecovery, 4_000);
        let late = run_with_failure_count(14_000_000_000, TakeoverKind::DiskRecovery, 4_000);
        let early_gap = early.unavailability_ns().expect("early gap");
        let late_gap = late.unavailability_ns().expect("late gap");
        // More committed log records before the crash ⇒ longer replay.
        assert!(
            late_gap > early_gap,
            "late {late_gap} should exceed early {early_gap}"
        );
    }

    #[test]
    fn accounting_always_balances() {
        for fail_at in [0, 3_000_000_000, 8_000_000_000, 100_000_000_000] {
            for kind in [TakeoverKind::MirrorTakeover, TakeoverKind::DiskRecovery] {
                let m = run_with_failure(fail_at, kind);
                assert_eq!(
                    m.committed + m.missed(),
                    m.offered,
                    "unaccounted transactions at fail_at={fail_at} {kind:?}"
                );
            }
        }
    }
}
