//! The sharded main-memory store.

use crate::object::VersionedObject;
use crate::snapshot::Snapshot;
use crate::stats::StoreStats;
use crate::types::{ObjectId, Ts, Value};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of lock shards.
///
/// Transactions in the RODAIN workloads touch a handful of objects out of
/// tens of thousands, so shard contention is negligible already at a modest
/// shard count.
pub const DEFAULT_SHARDS: usize = 64;

/// The main-memory object store.
///
/// Objects live in `shards.len()` independent hash maps, each behind its own
/// reader-writer lock. Read phases of transactions only take shared locks;
/// the write phase (installation of after-images) takes exclusive locks on
/// the touched shards one object at a time — the *atomicity* of installation
/// with respect to validation is provided by the concurrency controller's
/// validation critical section, not by the store.
pub struct Store {
    shards: Vec<RwLock<HashMap<ObjectId, VersionedObject>>>,
    /// Number of objects currently present (excludes tombstoned ones).
    len: AtomicU64,
}

impl Store {
    /// Create an empty store with [`DEFAULT_SHARDS`] shards.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Create an empty store with a specific shard count (must be > 0).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "store must have at least one shard");
        Store {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            len: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(&self, oid: ObjectId) -> &RwLock<HashMap<ObjectId, VersionedObject>> {
        // Multiplicative hash; ObjectIds are often dense small integers.
        let h = oid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (h >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Number of objects present.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed) as usize
    }

    /// Whether the store holds no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load an object during initial database population (timestamp zero).
    pub fn load_initial(&self, oid: ObjectId, value: Value) {
        self.install(oid, value, Ts::ZERO);
    }

    /// Read the committed value and its write timestamp.
    #[must_use]
    pub fn read(&self, oid: ObjectId) -> Option<(Value, Ts)> {
        let shard = self.shard_of(oid).read();
        shard.get(&oid).map(|o| (o.value.clone(), o.wts))
    }

    /// Read only the version metadata (cheaper than [`Store::read`] for
    /// validation-time checks).
    #[must_use]
    pub fn version(&self, oid: ObjectId) -> Option<(Ts, Ts)> {
        let shard = self.shard_of(oid).read();
        shard.get(&oid).map(|o| (o.wts, o.rts))
    }

    /// Install a committed after-image at timestamp `ts`.
    ///
    /// Installing [`Value::Null`] removes the object (tombstone semantics).
    /// Called during the write phase of a committing transaction and by the
    /// mirror node when applying the reordered log stream.
    pub fn install(&self, oid: ObjectId, value: Value, ts: Ts) {
        let mut shard = self.shard_of(oid).write();
        if value.is_null() {
            if shard.remove(&oid).is_some() {
                self.len.fetch_sub(1, Ordering::Relaxed);
            }
            return;
        }
        match shard.get_mut(&oid) {
            Some(obj) => {
                obj.value = value;
                if ts > obj.wts {
                    obj.wts = ts;
                }
                if ts > obj.rts {
                    obj.rts = ts;
                }
            }
            None => {
                shard.insert(oid, VersionedObject::installed(value, ts));
                self.len.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record that a transaction committing at `ts` read `oid`.
    ///
    /// Updates the read timestamp so later writers serialize after the
    /// reader. No-op if the object has since been deleted.
    pub fn note_committed_read(&self, oid: ObjectId, ts: Ts) {
        let mut shard = self.shard_of(oid).write();
        if let Some(obj) = shard.get_mut(&oid) {
            obj.note_committed_read(ts);
        }
    }

    /// Extract a consistent full-database snapshot.
    ///
    /// The caller must ensure no installation is concurrent with the
    /// extraction (the engine takes snapshots inside the validation critical
    /// section or while the node is not serving transactions, e.g. during
    /// mirror state transfer).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut objects = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.read();
            for (oid, obj) in shard.iter() {
                objects.push((*oid, obj.clone()));
            }
        }
        objects.sort_unstable_by_key(|(oid, _)| *oid);
        Snapshot { objects }
    }

    /// Extract a **fuzzy** full-database snapshot without pausing writers.
    ///
    /// Each shard is copied under its own read lock, one shard at a time,
    /// so installs into other shards (and into this shard before/after the
    /// copy) proceed concurrently — the checkpointer's copy-on-scan. The
    /// result is *not* CSN-consistent: an object may carry a value
    /// installed after the scan began. It is a valid checkpoint image only
    /// together with a redo tail covering every commit at or above the
    /// chosen boundary CSN: replaying that tail over the fuzzy image
    /// converges to the true state because [`Store::install`] is
    /// timestamp-monotone and idempotent at equal timestamps (the
    /// consistency argument is spelled out in DESIGN.md §15).
    #[must_use]
    pub fn fuzzy_snapshot(&self) -> Snapshot {
        let mut objects = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.read();
            for (oid, obj) in shard.iter() {
                objects.push((*oid, obj.clone()));
            }
        }
        objects.sort_unstable_by_key(|(oid, _)| *oid);
        Snapshot { objects }
    }

    /// Replace the entire contents of the store with a snapshot.
    pub fn restore(&self, snapshot: &Snapshot) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.len.store(0, Ordering::Relaxed);
        for (oid, obj) in &snapshot.objects {
            let mut shard = self.shard_of(*oid).write();
            if shard.insert(*oid, obj.clone()).is_none() {
                self.len.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Remove every object.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.len.store(0, Ordering::Relaxed);
    }

    /// The largest write timestamp present in the store.
    ///
    /// After restoring a mirror from a snapshot this tells the catch-up
    /// protocol where the log stream must resume.
    #[must_use]
    pub fn max_wts(&self) -> Ts {
        let mut max = Ts::ZERO;
        for shard in &self.shards {
            let shard = shard.read();
            for obj in shard.values() {
                if obj.wts > max {
                    max = obj.wts;
                }
            }
        }
        max
    }

    /// Gather usage statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            objects: 0,
            approx_bytes: 0,
            shards: self.shards.len(),
            max_shard_objects: 0,
        };
        for shard in &self.shards {
            let shard = shard.read();
            stats.objects += shard.len();
            stats.max_shard_objects = stats.max_shard_objects.max(shard.len());
            stats.approx_bytes += shard
                .values()
                .map(|o| o.value.approx_size() + 24)
                .sum::<usize>();
        }
        stats
    }

    /// Visit every object (read-locked shard at a time).
    pub fn for_each(&self, mut f: impl FnMut(ObjectId, &VersionedObject)) {
        for shard in &self.shards {
            let shard = shard.read();
            for (oid, obj) in shard.iter() {
                f(*oid, obj);
            }
        }
    }
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("objects", &self.len())
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_install() {
        let store = Store::new();
        store.load_initial(ObjectId(1), Value::Int(10));
        assert_eq!(store.read(ObjectId(1)), Some((Value::Int(10), Ts::ZERO)));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn missing_object_reads_none() {
        let store = Store::new();
        assert_eq!(store.read(ObjectId(404)), None);
        assert_eq!(store.version(ObjectId(404)), None);
    }

    #[test]
    fn install_bumps_timestamps_monotonically() {
        let store = Store::new();
        store.load_initial(ObjectId(1), Value::Int(0));
        store.install(ObjectId(1), Value::Int(1), Ts(5));
        assert_eq!(store.version(ObjectId(1)), Some((Ts(5), Ts(5))));
        // An out-of-order (lower-ts) install updates the value but never
        // rewinds version metadata.
        store.install(ObjectId(1), Value::Int(2), Ts(3));
        let (wts, rts) = store.version(ObjectId(1)).unwrap();
        assert_eq!(wts, Ts(5));
        assert_eq!(rts, Ts(5));
    }

    #[test]
    fn null_install_deletes() {
        let store = Store::new();
        store.load_initial(ObjectId(1), Value::Int(0));
        assert_eq!(store.len(), 1);
        store.install(ObjectId(1), Value::Null, Ts(2));
        assert_eq!(store.read(ObjectId(1)), None);
        assert_eq!(store.len(), 0);
        // Deleting a missing object is a no-op.
        store.install(ObjectId(1), Value::Null, Ts(3));
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn note_committed_read_updates_rts() {
        let store = Store::new();
        store.load_initial(ObjectId(7), Value::Int(0));
        store.note_committed_read(ObjectId(7), Ts(9));
        assert_eq!(store.version(ObjectId(7)), Some((Ts::ZERO, Ts(9))));
        // Reading a deleted object must not panic.
        store.note_committed_read(ObjectId(404), Ts(10));
    }

    #[test]
    fn snapshot_roundtrip() {
        let store = Store::with_shards(4);
        for i in 0..100u64 {
            store.load_initial(ObjectId(i), Value::Int(i as i64));
        }
        store.install(ObjectId(5), Value::Int(-5), Ts(12));
        let snap = store.snapshot();
        assert_eq!(snap.objects.len(), 100);

        let other = Store::with_shards(8);
        other.load_initial(ObjectId(999), Value::Int(0));
        other.restore(&snap);
        assert_eq!(other.len(), 100);
        assert_eq!(other.read(ObjectId(5)), Some((Value::Int(-5), Ts(12))));
        assert_eq!(other.read(ObjectId(999)), None);
        assert_eq!(other.max_wts(), Ts(12));
    }

    #[test]
    fn snapshot_is_sorted_by_object_id() {
        let store = Store::new();
        for i in (0..50u64).rev() {
            store.load_initial(ObjectId(i), Value::Int(0));
        }
        let snap = store.snapshot();
        for w in snap.objects.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn stats_counts_objects() {
        let store = Store::with_shards(2);
        for i in 0..10u64 {
            store.load_initial(ObjectId(i), Value::Text("x".repeat(10)));
        }
        let stats = store.stats();
        assert_eq!(stats.objects, 10);
        assert_eq!(stats.shards, 2);
        assert!(stats.approx_bytes >= 10 * 10);
        assert!(stats.max_shard_objects <= 10);
    }

    #[test]
    fn clear_empties_store() {
        let store = Store::new();
        store.load_initial(ObjectId(1), Value::Int(1));
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn for_each_visits_all() {
        let store = Store::with_shards(3);
        for i in 0..25u64 {
            store.load_initial(ObjectId(i), Value::Int(i as i64));
        }
        let mut seen = 0usize;
        store.for_each(|_, _| seen += 1);
        assert_eq!(seen, 25);
    }

    #[test]
    fn concurrent_reads_and_installs() {
        use std::sync::Arc;
        let store = Arc::new(Store::new());
        for i in 0..1000u64 {
            store.load_initial(ObjectId(i), Value::Int(0));
        }
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let oid = ObjectId((i * 7 + t) % 1000);
                    if i % 3 == 0 {
                        store.install(oid, Value::Int(i as i64), Ts(i + 1));
                    } else {
                        let _ = store.read(oid);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1000);
    }
}
