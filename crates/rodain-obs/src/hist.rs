//! Lock-free log-linear histogram.
//!
//! Layout (HdrHistogram-style): values `0..16` map one-to-one onto the
//! first 16 buckets; every later power-of-two range is split into 16
//! linear sub-buckets, so a recorded value is over-estimated by at most
//! one sub-bucket width — a relative error of `1/16 = 6.25 %`. The table
//! covers the full `u64` range in [`BUCKETS`] fixed slots, so recording is
//! a handful of relaxed atomic RMWs and never allocates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Linear sub-buckets per power-of-two octave.
const SUB_BUCKETS: usize = 16;

/// Total bucket count: 16 exact low buckets + 16 per octave for
/// exponents 4..=63.
pub(crate) const BUCKETS: usize = SUB_BUCKETS + (64 - 4) * SUB_BUCKETS;

/// Bucket index for `value`.
fn index_of(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros() as usize; // 4..=63
    let sub = ((value >> (exp - 4)) & 0xF) as usize;
    SUB_BUCKETS + (exp - 4) * SUB_BUCKETS + sub
}

/// Inclusive lower bound of bucket `i`.
fn lower_bound(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let j = i - SUB_BUCKETS;
    let exp = 4 + j / SUB_BUCKETS;
    let sub = (j % SUB_BUCKETS) as u64;
    (1u64 << exp) + sub * (1u64 << (exp - 4))
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
fn upper_bound(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        lower_bound(i + 1) - 1
    }
}

struct Inner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A cloneable, lock-free latency/value histogram.
///
/// All recording operations use relaxed atomics: readers taking a
/// [`HistogramSnapshot`] mid-record may see a count that is one ahead of
/// the bucket increments (or vice versa) — an acceptable imprecision for
/// monitoring, in exchange for a record path with no fences or locks.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh histogram with every bucket at zero.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            inner: Arc::new(Inner {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let inner = &self.inner;
        inner.buckets[index_of(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record the elapsed time of `since` in nanoseconds (saturating at
    /// `u64::MAX`).
    pub fn record_elapsed(&self, since: std::time::Instant) {
        let ns = u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.record(ns);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        let mut buckets = Vec::new();
        for (i, b) in inner.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c != 0 {
                buckets.push((i as u32, c));
            }
        }
        let count = inner.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                inner.min.load(Ordering::Relaxed)
            },
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`] at one instant. Only non-empty
/// buckets are retained, sorted by bucket index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)` pairs for every non-empty bucket.
    buckets: Vec<(u32, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0.0, 1.0]`: an upper bound on the
    /// true quantile with ≤ 6.25 % relative error, clamped into
    /// `[min, max]`. Returns 0 when the histogram is empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return upper_bound(i as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold `other` into this snapshot: bucket counts add, `count`/`sum`
    /// accumulate, and the min/max envelope widens. Both snapshots must
    /// come from this crate's histograms (same bucket layout), which the
    /// types already guarantee.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        merged.push((ia, ca));
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((ib, cb));
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                },
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        let was_empty = self.count == 0;
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = if was_empty {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
    }

    /// Iterate `(inclusive upper bound, cumulative count)` over the
    /// non-empty buckets in ascending value order — the shape Prometheus
    /// exposition wants.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cum = 0u64;
        self.buckets.iter().map(move |&(i, c)| {
            cum += c;
            (upper_bound(i as usize), cum)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        // Every bucket's lower bound must be one past the previous upper
        // bound, with no gaps or overlaps.
        for i in 1..BUCKETS {
            assert_eq!(
                lower_bound(i),
                upper_bound(i - 1) + 1,
                "gap between buckets {} and {}",
                i - 1,
                i
            );
        }
        assert_eq!(upper_bound(BUCKETS - 1), u64::MAX);
        // And index_of must agree with the bounds.
        for &v in &[
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            1000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = index_of(v);
            assert!(
                lower_bound(i) <= v && v <= upper_bound(i),
                "value {v} bucket {i}"
            );
        }
    }

    #[test]
    fn relative_error_within_one_sixteenth() {
        let h = Histogram::new();
        for v in [100u64, 999, 5_000, 123_456, 9_999_999] {
            h.record(v);
        }
        let snap = h.snapshot();
        // p100 over-estimates by at most one sub-bucket width, then clamps
        // to the observed max.
        assert_eq!(snap.percentile(1.0), 9_999_999);
        let h2 = Histogram::new();
        for v in 1..=1_000u64 {
            h2.record(v);
        }
        let s = h2.snapshot();
        for &(q, true_v) in &[(0.5, 500u64), (0.95, 950), (0.99, 990)] {
            let got = s.percentile(q);
            let err = got.abs_diff(true_v) as f64 / true_v as f64;
            assert!(err <= 1.0 / 16.0, "q={q} got={got} true={true_v}");
        }
    }

    #[test]
    fn zero_samples_snapshot_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.percentile(0.5), 0);
        assert_eq!(snap.cumulative_buckets().count(), 0);
    }

    #[test]
    fn top_bucket_saturation() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.percentile(1.0), u64::MAX);
        // All three land in the final bucket; the cumulative view must
        // report the +Inf-adjacent bound without overflowing.
        let buckets: Vec<_> = snap.cumulative_buckets().collect();
        assert_eq!(buckets, vec![(u64::MAX, 3)]);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        let threads = 8;
        let per_thread = 10_000u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    h.record(t * per_thread + i);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, threads * per_thread);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, threads * per_thread - 1);
        let total: u64 = snap.cumulative_buckets().last().map(|(_, c)| c).unwrap();
        assert_eq!(total, threads * per_thread);
    }

    #[test]
    fn record_elapsed_measures_forward_time() {
        let h = Histogram::new();
        let start = std::time::Instant::now();
        h.record_elapsed(start);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
    }
}
