//! Property-based tests of the cluster peer protocol: every request and
//! reply — 2PC, placement, migration — round-trips losslessly, any
//! truncation is rejected rather than misparsed, and foreign version
//! bytes are refused before anything else is inspected.

use proptest::prelude::*;
use rodain_cluster::proto::{
    decode_reply, decode_request, encode_reply, encode_request, ClusterProtoError, ClusterReply,
    ClusterRequest, TailCommit, CLUSTER_PROTOCOL_VERSION,
};
use rodain_net::Bytes;
use rodain_shard::{ShardMap, ShardOp, ShardOwner};
use rodain_store::{ObjectId, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[a-z0-9+-]{0,24}".prop_map(Value::Text),
        prop::collection::vec(any::<u8>(), 0..24).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(2, 12, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::Record)
    })
}

fn op_strategy() -> impl Strategy<Value = ShardOp> {
    prop_oneof![
        (any::<u64>(), any::<i64>()).prop_map(|(oid, delta)| ShardOp::Add {
            oid: ObjectId(oid),
            delta,
        }),
        (any::<u64>(), value_strategy()).prop_map(|(oid, value)| ShardOp::Put {
            oid: ObjectId(oid),
            value,
        }),
    ]
}

fn ops_strategy() -> impl Strategy<Value = Vec<ShardOp>> {
    prop::collection::vec(op_strategy(), 0..5)
}

fn map_strategy() -> impl Strategy<Value = ShardMap> {
    (
        any::<u64>(),
        prop::collection::vec(("[a-z0-9.:]{1,20}", "[a-z0-9.:]{1,20}"), 1..5),
    )
        .prop_map(|(epoch, owners)| ShardMap {
            epoch,
            owners: owners
                .into_iter()
                .map(|(client_addr, peer_addr)| ShardOwner {
                    client_addr,
                    peer_addr,
                })
                .collect(),
        })
}

fn tail_strategy() -> impl Strategy<Value = Vec<TailCommit>> {
    prop::collection::vec(
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec((any::<u64>(), value_strategy()), 0..4),
        )
            .prop_map(|(csn, ser_ts, writes)| TailCommit {
                csn,
                ser_ts,
                writes: writes
                    .into_iter()
                    .map(|(oid, value)| (ObjectId(oid), value))
                    .collect(),
            }),
        0..4,
    )
}

fn request_strategy() -> impl Strategy<Value = ClusterRequest> {
    prop_oneof![
        Just(ClusterRequest::FetchMap),
        map_strategy().prop_map(|map| ClusterRequest::InstallMap { map }),
        any::<u64>().prop_map(|shard| ClusterRequest::AllocGid { shard }),
        (any::<u64>(), any::<u64>(), any::<u64>(), ops_strategy()).prop_map(
            |(gid, coordinator_shard, shard, ops)| ClusterRequest::Prepare {
                gid,
                coordinator_shard,
                shard,
                ops,
            }
        ),
        (any::<u64>(), any::<u64>())
            .prop_map(|(shard, gid)| ClusterRequest::Decide { shard, gid }),
        (any::<u64>(), any::<u64>(), any::<i64>())
            .prop_map(|(shard, gid, stamp)| ClusterRequest::Apply { shard, gid, stamp }),
        (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(shard, gid, decision)| {
            ClusterRequest::Cleanup {
                shard,
                gid,
                decision,
            }
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(shard, gid)| ClusterRequest::QueryDecision { shard, gid }),
        Just(ClusterRequest::TriggerResolve),
        Just(ClusterRequest::GcDecisions),
        (any::<u64>(), ops_strategy()).prop_map(|(shard, ops)| ClusterRequest::Commit {
            shard,
            ops
        }),
        any::<u64>().prop_map(|shard| ClusterRequest::MigrateSnapshot { shard }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(shard, after)| ClusterRequest::MigrateTail { shard, after }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(shard, after)| ClusterRequest::MigrateSeal { shard, after }),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..48)
        )
            .prop_map(|(shard, upto, snapshot)| ClusterRequest::InstallStaged {
                shard,
                upto,
                snapshot,
            }),
        (any::<u64>(), tail_strategy())
            .prop_map(|(shard, commits)| ClusterRequest::ApplyTail { shard, commits }),
        (any::<u64>(), map_strategy())
            .prop_map(|(shard, map)| ClusterRequest::Activate { shard, map }),
    ]
}

fn reply_strategy() -> impl Strategy<Value = ClusterReply> {
    prop_oneof![
        map_strategy().prop_map(|map| ClusterReply::Map { map }),
        any::<u64>().prop_map(|gid| ClusterReply::Gid { gid }),
        Just(ClusterReply::Prepared),
        any::<u64>().prop_map(|csn| ClusterReply::Decided { csn }),
        Just(ClusterReply::Ack),
        any::<bool>().prop_map(|decided| ClusterReply::Decision { decided }),
        (any::<u64>(), any::<u64>()).prop_map(|(rolled_forward, aborted)| {
            ClusterReply::Resolved {
                rolled_forward,
                aborted,
            }
        }),
        any::<u64>().prop_map(|count| ClusterReply::Cleaned { count }),
        any::<u64>().prop_map(|csn| ClusterReply::Committed { csn }),
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(upto, snapshot)| ClusterReply::Snapshot { upto, snapshot }),
        tail_strategy().prop_map(|commits| ClusterReply::Tail { commits }),
        "[ -~]{0,48}".prop_map(|message| ClusterReply::Err { message }),
    ]
}

proptest! {
    /// Every cluster request — placement, 2PC and migration messages —
    /// round-trips through encode/decode with its correlation id intact.
    #[test]
    fn requests_roundtrip(id in any::<u64>(), request in request_strategy()) {
        let decoded = decode_request(encode_request(id, &request)).unwrap();
        prop_assert_eq!(decoded, (id, request));
    }

    /// Every reply round-trips unchanged.
    #[test]
    fn replies_roundtrip(id in any::<u64>(), reply in reply_strategy()) {
        let decoded = decode_reply(encode_reply(id, &reply)).unwrap();
        prop_assert_eq!(decoded, (id, reply));
    }

    /// Truncating an encoded request at any point is an error — never a
    /// silent misparse into some other message.
    #[test]
    fn truncated_requests_are_rejected(
        id in any::<u64>(),
        request in request_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let encoded = encode_request(id, &request);
        let cut = cut.index(encoded.len());
        prop_assert!(decode_request(encoded.slice(..cut)).is_err());
    }

    /// Same for replies.
    #[test]
    fn truncated_replies_are_rejected(
        id in any::<u64>(),
        reply in reply_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let encoded = encode_reply(id, &reply);
        let cut = cut.index(encoded.len());
        prop_assert!(decode_reply(encoded.slice(..cut)).is_err());
    }

    /// A frame led by any byte other than the cluster protocol version
    /// fails with `Version` before anything else is inspected.
    #[test]
    fn foreign_versions_are_refused(
        version in any::<u8>().prop_map(|v| if v == CLUSTER_PROTOCOL_VERSION { !v } else { v }),
        body in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let mut frame = vec![version];
        frame.extend_from_slice(&body);
        let frame = Bytes::from(frame);
        prop_assert_eq!(
            decode_request(frame.clone()),
            Err(ClusterProtoError::Version { got: version })
        );
        prop_assert_eq!(
            decode_reply(frame),
            Err(ClusterProtoError::Version { got: version })
        );
    }
}
