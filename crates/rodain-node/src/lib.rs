//! # rodain-node — node roles, watchdog, failover and recovery
//!
//! A "RODAIN Node" in the paper is a *pair* of database nodes: the
//! **Primary Node** executes all transactions, the **Mirror Node** (hot
//! stand-by) maintains a copy of the main-memory database from the shipped
//! transaction log and stores that log on disk. This crate implements the
//! distributed-system half of that design:
//!
//! * [`Message`] — the wire protocol between the two nodes (log records,
//!   commit acknowledgements, heartbeats, snapshot transfer for rejoin);
//! * [`NodeRole`] / [`RoleMachine`] — the failover state machine: the
//!   mirror promotes when the primary fails, a node running alone is a
//!   *Contingency Primary* that must log synchronously to disk, and a
//!   recovered node **always rejoins as Mirror** ("This solution avoids the
//!   need to switch the database processing responsibilities");
//! * [`FailureDetector`] — heartbeat bookkeeping for the Watchdog
//!   subsystem of Fig. 1;
//! * [`MirrorNode`] — the complete mirror service loop: receive → reorder →
//!   acknowledge commit records → apply to the database copy → append the
//!   reordered log to disk asynchronously;
//! * [`recover_store_from_disk`] — cold-start recovery: a single forward
//!   pass over the stored log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod message;
mod mirror;
mod recovery;
mod role;

pub use detector::{DetectorVerdict, FailureDetector};
pub use message::{Message, MessageError};
pub use mirror::{MirrorConfig, MirrorExit, MirrorNode, MirrorReport};
pub use recovery::{
    default_workers, recover_store_from_disk, recover_store_from_disk_with,
    recover_with_checkpoint, recover_with_checkpoint_with, ColdStart, RecoveryOptions,
};
pub use role::{NodeRole, RoleError, RoleEvent, RoleMachine};
