//! # rodain-sched — real-time transaction scheduling
//!
//! RODAIN schedules transactions with a **modified Earliest Deadline First**
//! policy (paper §2):
//!
//! > "A modified version of the traditional Earliest Deadline First (EDF)
//! > scheduling is used for transaction scheduling. The modification is
//! > needed to support a small number of non-realtime transactions that are
//! > executed simultaneously with the real-time transactions."
//!
//! Three mechanisms live here, all purely algorithmic (no threads, no
//! clocks — time is a parameter), so the same code drives both the real
//! engine and the discrete-event simulator:
//!
//! * [`ReadyQueue`] — EDF ordering of firm/soft real-time transactions, with
//!   a demand-based *reservation* of a fixed fraction of execution time for
//!   non-real-time transactions so they cannot starve;
//! * [`OverloadManager`] — the paper's overload handling: the number of
//!   active transactions is limited, an arriving lower-priority transaction
//!   is aborted when the limit is reached, and the number of missed
//!   deadlines within an observation period drives the limit;
//! * [`ActiveSet`] — bookkeeping of admitted transactions used by eviction
//!   decisions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod edf;
mod overload;

pub use class::{Nanos, TaskMeta, TxnClass};
pub use edf::{ReadyQueue, ReservationConfig};
pub use overload::{ActiveSet, Admission, OverloadConfig, OverloadManager};
