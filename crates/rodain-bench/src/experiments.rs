//! Shared experiment drivers (one function per figure/panel/ablation).

use crate::report::{ms, pct, Table};
use rodain_occ::Protocol;
use rodain_sim::{
    run_repetitions, run_session, DiskMode, FailureInjection, HardwareModel, SimConfig,
    TakeoverKind,
};
use rodain_workload::{AccessPattern, WorkloadSpec};

/// Measurement-protocol options shared by every experiment binary.
#[derive(Clone, Copy, Debug)]
pub struct SweepOptions {
    /// Repetitions per data point (paper: "repeated at least 20 times").
    pub reps: u32,
    /// Transactions per session (paper: 10 000).
    pub count: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            reps: 20,
            count: 10_000,
        }
    }
}

impl SweepOptions {
    /// Parse `--quick`, `--reps N`, `--count N` from process args.
    #[must_use]
    pub fn from_args() -> SweepOptions {
        let mut opts = SweepOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    opts.reps = 3;
                    opts.count = 2_000;
                }
                "--reps" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.reps = v;
                        i += 1;
                    }
                }
                "--count" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.count = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    fn spec(&self, rate: f64, write_fraction: f64) -> WorkloadSpec {
        WorkloadSpec {
            count: self.count,
            arrival_rate_tps: rate,
            write_fraction,
            ..WorkloadSpec::default()
        }
    }
}

/// Arrival rates swept in the figures (tps).
pub const RATE_SWEEP: [f64; 10] = [
    50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 500.0,
];

/// Fig 2(a): miss ratio vs arrival rate with **true log writes**, write
/// ratio 50 %. Series: transient mode (single node, synchronous disk) vs
/// normal mode (primary + mirror).
#[must_use]
pub fn fig2_panel_a(opts: SweepOptions) -> Table {
    let mut table = Table::new(
        format!(
            "Fig 2(a) — miss ratio vs arrival rate, write ratio 50%, true log writes \
             ({} reps × {} txns)",
            opts.reps, opts.count
        ),
        &["tps", "1-node-disk miss%", "2-node-disk miss%"],
    );
    for rate in RATE_SWEEP {
        let spec = opts.spec(rate, 0.5);
        let one = run_repetitions(&SimConfig::single_node(DiskMode::On), &spec, opts.reps);
        let two = run_repetitions(&SimConfig::two_node(DiskMode::On), &spec, opts.reps);
        table.push(vec![
            format!("{rate:.0}"),
            pct(one.miss_ratio_mean),
            pct(two.miss_ratio_mean),
        ]);
    }
    table
}

/// Fig 2(b): miss ratio vs **write fraction** at 300 tps, true log writes.
#[must_use]
pub fn fig2_panel_b(opts: SweepOptions) -> Table {
    let mut table = Table::new(
        format!(
            "Fig 2(b) — miss ratio vs write fraction, 300 tps, true log writes \
             ({} reps × {} txns)",
            opts.reps, opts.count
        ),
        &["write fraction", "1-node-disk miss%", "2-node-disk miss%"],
    );
    for wf in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let spec = opts.spec(300.0, wf);
        let one = run_repetitions(&SimConfig::single_node(DiskMode::On), &spec, opts.reps);
        let two = run_repetitions(&SimConfig::two_node(DiskMode::On), &spec, opts.reps);
        table.push(vec![
            format!("{wf:.1}"),
            pct(one.miss_ratio_mean),
            pct(two.miss_ratio_mean),
        ]);
    }
    table
}

/// Fig 3(a)–(c): miss ratio vs arrival rate with disk writing **off**;
/// series: No-logs (optimal), single node, two nodes.
#[must_use]
pub fn fig3(write_ratio: f64, opts: SweepOptions) -> Table {
    let mut table = Table::new(
        format!(
            "Fig 3 — miss ratio vs arrival rate, write ratio {:.0}%, disk off \
             ({} reps × {} txns)",
            write_ratio * 100.0,
            opts.reps,
            opts.count
        ),
        &["tps", "no-logs miss%", "1-node miss%", "2-node miss%"],
    );
    for rate in RATE_SWEEP {
        let spec = opts.spec(rate, write_ratio);
        let nologs = run_repetitions(&SimConfig::no_logs(), &spec, opts.reps);
        let one = run_repetitions(&SimConfig::single_node(DiskMode::Off), &spec, opts.reps);
        let two = run_repetitions(&SimConfig::two_node(DiskMode::Off), &spec, opts.reps);
        table.push(vec![
            format!("{rate:.0}"),
            pct(nologs.miss_ratio_mean),
            pct(one.miss_ratio_mean),
            pct(two.miss_ratio_mean),
        ]);
    }
    table
}

/// TAKEOVER: unavailability after a primary failure — hot-standby takeover
/// vs reboot + disk-log replay ("the Mirror Node can almost
/// instantaneously serve incoming requests … the database would be down
/// much longer").
#[must_use]
pub fn takeover(opts: SweepOptions) -> Table {
    let mut table = Table::new(
        "TAKEOVER — service unavailability after a primary failure at t=30s, 100 tps",
        &[
            "recovery strategy",
            "unavailability (ms)",
            "txns lost to downtime",
            "miss% overall",
        ],
    );
    // Long enough that the failure lands mid-session.
    let spec = WorkloadSpec {
        count: opts.count.max(6_000),
        arrival_rate_tps: 100.0,
        write_fraction: 0.2,
        ..WorkloadSpec::default()
    };
    for (name, kind, base) in [
        (
            "mirror takeover",
            TakeoverKind::MirrorTakeover,
            SimConfig::two_node(DiskMode::On),
        ),
        (
            "disk recovery",
            TakeoverKind::DiskRecovery,
            SimConfig::single_node(DiskMode::On),
        ),
    ] {
        let mut cfg = base;
        cfg.failure = Some(FailureInjection {
            fail_at_ns: 30_000_000_000,
            takeover: kind,
            ..FailureInjection::default()
        });
        let metrics = run_session(&cfg, &spec);
        table.push(vec![
            name.into(),
            ms(metrics.unavailability_ns().unwrap_or(0) as f64),
            metrics.missed_unavailable.to_string(),
            pct(metrics.miss_ratio()),
        ]);
    }
    table
}

/// SATURATION: the knee at 200–300 tps and the abort-reason breakdown
/// ("most of the unsuccessfully executed transactions are due to
/// abortions by overload manager").
#[must_use]
pub fn saturation(opts: SweepOptions) -> Table {
    let mut table = Table::new(
        format!(
            "SATURATION — abort-reason breakdown vs arrival rate, 2-node disk-off, \
             write ratio 20% ({} reps × {} txns)",
            opts.reps, opts.count
        ),
        &[
            "tps",
            "miss%",
            "admission%",
            "deadline%",
            "conflict%",
            "restarts/txn",
        ],
    );
    for rate in RATE_SWEEP {
        let spec = opts.spec(rate, 0.2);
        let agg = run_repetitions(&SimConfig::two_node(DiskMode::Off), &spec, opts.reps);
        table.push(vec![
            format!("{rate:.0}"),
            pct(agg.miss_ratio_mean),
            pct(agg.admission_share),
            pct(agg.deadline_share),
            pct(agg.conflict_share),
            format!("{:.3}", agg.restart_rate),
        ]);
    }
    table
}

/// CCABLATE: the protocol family under hotspot contention — what OCC-DATI's
/// dynamic adjustment buys over restart-based validation.
#[must_use]
pub fn cc_ablation(opts: SweepOptions) -> Table {
    let mut table = Table::new(
        format!(
            "CCABLATE — protocols under hotspot contention, 2 CPUs, 250 tps, write ratio 80% \
             ({} reps × {} txns)",
            opts.reps, opts.count
        ),
        &[
            "protocol",
            "miss%",
            "conflict%",
            "restarts/txn",
            "backward commits",
            "commit-wait p50 (ms)",
            "commit-wait p95 (ms)",
            "commit-wait p99 (ms)",
        ],
    );
    for protocol in Protocol::ALL {
        let spec = WorkloadSpec {
            count: opts.count,
            arrival_rate_tps: 250.0,
            write_fraction: 0.8,
            db_objects: 10_000,
            access: AccessPattern::Hotspot {
                hot_fraction: 0.002,
                hot_probability: 0.7,
            },
            // Jittered deadlines let EDF preempt update transactions with
            // one another; without cross-preemption a single-CPU node never
            // interleaves conflicting read phases (see DESIGN.md §5).
            deadline_jitter: 0.6,
            ..WorkloadSpec::default()
        };
        let mut cfg = SimConfig::two_node(DiskMode::Off);
        cfg.protocol = protocol;
        cfg.hardware.cpus = 2; // see the multi-CPU note in the table title
                               // Backward commits are per-session counters; sample one session for
                               // them alongside the aggregate.
        let sample = run_session(&cfg, &spec);
        let agg = run_repetitions(&cfg, &spec, opts.reps);
        table.push(vec![
            protocol.name().into(),
            pct(agg.miss_ratio_mean),
            pct(agg.conflict_share),
            format!("{:.3}", agg.restart_rate),
            sample.cc.backward_commits.to_string(),
            ms(agg.commit_wait_p50_ns),
            ms(agg.commit_wait_p95_ns),
            ms(agg.commit_wait_p99_ns),
        ]);
    }
    table
}

/// COMMITPATH: commit-latency breakdown per configuration, and the
/// group-commit ablation (the prototype flushed one transaction per disk
/// rotation; batching rescues much of the single-node configuration).
#[must_use]
pub fn commit_path(opts: SweepOptions) -> Table {
    let mut table = Table::new(
        format!(
            "COMMITPATH — commit-wait and miss ratio by commit path, 150 tps, \
             write ratio 50% ({} reps × {} txns)",
            opts.reps, opts.count
        ),
        &[
            "configuration",
            "commit-wait p50 (ms)",
            "commit-wait p95 (ms)",
            "commit-wait p99 (ms)",
            "response p50 (ms)",
            "response p95 (ms)",
            "response p99 (ms)",
            "miss%",
        ],
    );
    let spec = opts.spec(150.0, 0.5);
    let mut configs: Vec<(String, SimConfig)> = vec![
        ("no-logs".into(), SimConfig::no_logs()),
        (
            "2-node (mirror ack)".into(),
            SimConfig::two_node(DiskMode::On),
        ),
        (
            "1-node disk, batch=1 (prototype)".into(),
            SimConfig::single_node(DiskMode::On),
        ),
    ];
    for batch in [4usize, 16] {
        let mut cfg = SimConfig::single_node(DiskMode::On);
        cfg.hardware = HardwareModel {
            disk_max_batch: batch,
            ..HardwareModel::default()
        };
        configs.push((format!("1-node disk, group commit batch={batch}"), cfg));
    }
    for (name, cfg) in configs {
        let agg = run_repetitions(&cfg, &spec, opts.reps);
        table.push(vec![
            name,
            ms(agg.commit_wait_p50_ns),
            ms(agg.commit_wait_p95_ns),
            ms(agg.commit_wait_p99_ns),
            ms(agg.response_p50_ns),
            ms(agg.response_p95_ns),
            ms(agg.response_p99_ns),
            pct(agg.miss_ratio_mean),
        ]);
    }
    table
}

/// OVERLOAD: ablation of the active-transaction limit (the prototype's 50).
/// Sweeps the limit at an overloaded arrival rate and reports how misses
/// redistribute between admission rejections and deadline expiries, and
/// what happens to response tails.
#[must_use]
pub fn overload_limit(opts: SweepOptions) -> Table {
    let mut table = Table::new(
        format!(
            "OVERLOAD — active-transaction limit ablation, 400 tps, write ratio 20%, \
             2-node disk-off ({} reps × {} txns)",
            opts.reps, opts.count
        ),
        &[
            "active limit",
            "miss%",
            "admission%",
            "deadline%",
            "response p95 (ms)",
        ],
    );
    for limit in [5usize, 10, 25, 50, 100, 500] {
        let spec = opts.spec(400.0, 0.2);
        let mut cfg = SimConfig::two_node(DiskMode::Off);
        cfg.overload = rodain_sched::OverloadConfig {
            base_limit: limit,
            min_limit: (limit / 5).max(1),
            ..rodain_sched::OverloadConfig::default()
        };
        let agg = run_repetitions(&cfg, &spec, opts.reps);
        table.push(vec![
            limit.to_string(),
            pct(agg.miss_ratio_mean),
            pct(agg.admission_share),
            pct(agg.deadline_share),
            ms(agg.response_p95_ns),
        ]);
    }
    table
}

/// RESERVATION: ablation of the modified-EDF's non-real-time reservation.
/// Under heavy real-time load, plain EDF starves non-real-time maintenance
/// transactions; the demand-based reservation keeps them flowing at a
/// bounded cost to real-time misses.
#[must_use]
pub fn reservation(opts: SweepOptions) -> Table {
    let mut table = Table::new(
        format!(
            "RESERVATION — non-real-time reservation ablation, 285 tps incl. 5% non-RT, \
             2-node disk-off ({} reps × {} txns)",
            opts.reps, opts.count
        ),
        &[
            "reserved fraction",
            "non-RT completion%",
            "non-RT response p95 (ms)",
            "RT miss%",
            "overall miss%",
        ],
    );
    for fraction in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let spec = WorkloadSpec {
            count: opts.count,
            arrival_rate_tps: 285.0, // utilization ~0.97: long busy periods
            write_fraction: 0.2,
            non_rt_fraction: 0.05,
            ..WorkloadSpec::default()
        };
        let mut cfg = SimConfig::two_node(DiskMode::Off);
        cfg.reservation = rodain_sched::ReservationConfig {
            fraction,
            ..rodain_sched::ReservationConfig::default()
        };
        // Per-class counters are session-level; aggregate manually.
        let mut non_rt_completion = 0.0;
        let mut non_rt_p95 = 0.0;
        let mut rt_missed = 0.0;
        let mut overall = 0.0;
        for rep in 0..opts.reps {
            let rep_spec = WorkloadSpec {
                seed: spec
                    .seed
                    .wrapping_add(u64::from(rep).wrapping_mul(0x9E37_79B9)),
                ..spec.clone()
            };
            let m = run_session(&cfg, &rep_spec);
            non_rt_completion += m.non_rt_completion();
            non_rt_p95 += m.non_rt_response.p95_ns as f64;
            let rt_offered = (m.offered - m.offered_non_rt).max(1);
            let rt_miss =
                (m.missed() - (m.offered_non_rt - m.committed_non_rt)) as f64 / rt_offered as f64;
            rt_missed += rt_miss;
            overall += m.miss_ratio();
        }
        let n = f64::from(opts.reps.max(1));
        table.push(vec![
            format!("{fraction:.2}"),
            pct(non_rt_completion / n),
            ms(non_rt_p95 / n),
            pct(rt_missed / n),
            pct(overall / n),
        ]);
    }
    table
}

/// REALENGINE: the saturation sweep of Fig 3, on the *real threaded engine*
/// instead of the simulator — same code paths, wall-clock time, modern
/// hardware. The knee moves from ~300 tps (simulated Pentium Pro) to
/// wherever this machine saturates; the shape (flat, knee, overload-manager
/// dominated) must match.
#[must_use]
pub fn real_engine(opts: SweepOptions) -> Table {
    use rodain_db::{Rodain, TxnError, TxnOptions};
    use rodain_workload::{NumberTranslationDb, TraceGenerator};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // Capacity calibration uses a fixed burst; the paced points below use
    // a fixed *duration* instead of a fixed count — at 10^5 tps a
    // count-based session lasts milliseconds and one scheduling hiccup
    // dominates the measurement.
    let calibration_count = opts.count.clamp(2_000, 20_000);
    const POINT_SECONDS: f64 = 2.0;
    let schema = NumberTranslationDb::new(30_000);

    // Calibrate: unpaced burst throughput with the admission limit lifted
    // gives this machine's capacity.
    let capacity_tps = {
        let db = Arc::new(
            Rodain::builder()
                .workers(4)
                .overload(rodain_sched::OverloadConfig {
                    base_limit: 100_000,
                    min_limit: 100_000,
                    ..rodain_sched::OverloadConfig::default()
                })
                .build()
                .expect("engine"),
        );
        schema.populate(&db.store());
        let started = Instant::now();
        let pending: Vec<_> = (0..calibration_count)
            .map(|i| {
                db.submit(TxnOptions::soft_ms(60_000), move |ctx| {
                    let oid = NumberTranslationDb::new(30_000).object_id(i * 7);
                    ctx.read(oid)?;
                    Ok(None)
                })
            })
            .collect();
        for fut in pending {
            let _ = fut.wait();
        }
        calibration_count as f64 / started.elapsed().as_secs_f64()
    };

    let mut table = Table::new(
        format!(
            "REALENGINE — miss ratio vs offered rate on the threaded engine \
             (measured capacity ≈ {capacity_tps:.0} tps, {POINT_SECONDS} s of load per point, \
             write ratio 20%, firm deadlines 50/150 ms, \
             active limit scaled to the paper's 165 ms of buffered work)"
        ),
        &[
            "offered (× capacity)",
            "offered tps",
            "miss%",
            "admission%",
            "deadline%",
            "response p50 (ms)",
            "response p95 (ms)",
            "response p99 (ms)",
        ],
    );

    // The prototype's 50-slot limit buffered ~165 ms of work (50 × 3.3 ms
    // per transaction) against 50/150 ms deadlines. Keep that *time* ratio
    // on this machine: slots = 165 ms × capacity. A literal 50 would be
    // ~1 ms of buffer — smaller than ordinary OS scheduling jitter — and
    // admission noise would swamp the curve.
    let scaled_limit = ((0.165 * capacity_tps) as usize).max(50);

    for fraction in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        let rate = capacity_tps * fraction;
        let point_count = ((rate * POINT_SECONDS) as u64).clamp(2_000, 500_000);
        let spec = WorkloadSpec {
            count: point_count,
            arrival_rate_tps: rate,
            write_fraction: 0.2,
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec).generate();
        let db = Arc::new(
            Rodain::builder()
                .workers(4)
                .overload(rodain_sched::OverloadConfig {
                    base_limit: scaled_limit,
                    min_limit: scaled_limit / 5,
                    ..rodain_sched::OverloadConfig::default()
                })
                .build()
                .expect("engine"),
        );
        schema.populate(&db.store());
        let started = Instant::now();
        let mut pending = Vec::with_capacity(trace.len());
        for request in &trace.requests {
            // Spin-pace: sleep() granularity is too coarse at these rates.
            let target = Duration::from_nanos(request.arrival_ns);
            while started.elapsed() < target {
                std::hint::spin_loop();
            }
            let objects = request.objects.clone();
            let seq = request.seq;
            let update = request.is_update();
            let opts_txn = match request.relative_deadline_ns {
                Some(d) => TxnOptions::firm(Duration::from_nanos(d))
                    .with_est_cost(Duration::from_micros(50)),
                None => TxnOptions::non_real_time(),
            };
            pending.push(db.submit(opts_txn, move |ctx| {
                for &n in &objects {
                    let oid = NumberTranslationDb::new(30_000).object_id(n);
                    if let Some(record) = ctx.read(oid)? {
                        if update {
                            ctx.write(
                                oid,
                                NumberTranslationDb::new(30_000).updated_record(&record, seq),
                            )?;
                        }
                    }
                }
                Ok(None)
            }));
        }
        let (mut committed, mut deadline, mut admission, mut other) = (0u64, 0u64, 0u64, 0u64);
        for fut in pending {
            match fut.wait() {
                Ok(_) => committed += 1,
                Err(TxnError::DeadlineExpired) => deadline += 1,
                Err(TxnError::AdmissionDenied | TxnError::Evicted) => admission += 1,
                Err(_) => other += 1,
            }
        }
        let total = (committed + deadline + admission + other).max(1);
        // Percentiles come from the engine's own observability layer: the
        // `engine_response_ns` histogram in [`rodain_db::MetricsSnapshot`].
        let snapshot = db.metrics();
        let response_pct = |q: f64| -> f64 {
            snapshot
                .histogram("engine_response_ns")
                .map_or(0.0, |h| h.percentile(q) as f64)
        };
        table.push(vec![
            format!("{fraction:.2}"),
            format!("{rate:.0}"),
            pct((total - committed) as f64 / total as f64),
            pct(admission as f64 / total as f64),
            pct(deadline as f64 / total as f64),
            ms(response_pct(0.50)),
            ms(response_pct(0.95)),
            ms(response_pct(0.99)),
        ]);
    }
    table
}

/// Shard counts swept by [`shard_scale`].
pub const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// SHARDSCALE: committed throughput vs shard count on the *real engine*,
/// with the log stream made the measured bottleneck. Every shard runs the
/// paper prototype's commit path — synchronous group commit with batch 1
/// over a [`rodain_log::ThrottledStorage`] charging a fixed service delay
/// per flush — so a single stream serializes commits at the log device
/// rate while N independent shard streams overlap their service times.
/// The `unsharded` row is a plain [`rodain_db::Rodain`] on the identical
/// commit path: the 1-shard cluster must match it (routing overhead only),
/// and 4 shards must clear 2× the 1-shard throughput.
#[must_use]
pub fn shard_scale(opts: SweepOptions) -> Table {
    use rodain_db::{Rodain, TxnOptions};
    use rodain_log::{LogStorage, LogStorageConfig, ThrottledStorage};
    use rodain_shard::ShardedRodain;
    use rodain_store::{ObjectId, Value};
    use rodain_workload::TraceGenerator;
    use std::time::{Duration, Instant};

    /// Log-device service time charged per flush (per shard stream).
    const FLUSH_DELAY: Duration = Duration::from_millis(1);
    const DB_OBJECTS: u64 = 4_096;

    let count = opts.count;
    let spec = WorkloadSpec {
        count,
        write_fraction: 1.0,
        db_objects: DB_OBJECTS,
        access: AccessPattern::Zipfian { theta: 0.8 },
        ..WorkloadSpec::default()
    };
    // One anchor object per transaction: the single-shard fast path.
    let anchors: Vec<u64> = TraceGenerator::new(spec)
        .generate()
        .requests
        .iter()
        .map(|r| r.objects[0])
        .collect();

    let scratch = out_dir_scratch("shardscale");
    fn throttled(dir: std::path::PathBuf) -> ThrottledStorage<LogStorage> {
        ThrottledStorage::new(
            LogStorage::open(LogStorageConfig::new(dir)).expect("open shard log"),
            FLUSH_DELAY,
        )
    }
    // The whole burst is submitted up front; lift the admission limit so
    // the overload manager doesn't reject the backlog — the log stream,
    // not admission, must be the bottleneck under measurement.
    fn unlimited() -> rodain_sched::OverloadConfig {
        rodain_sched::OverloadConfig {
            base_limit: 1_000_000,
            min_limit: 1_000_000,
            ..rodain_sched::OverloadConfig::default()
        }
    }

    let mut table = Table::new(
        format!(
            "SHARDSCALE — committed throughput vs shard count, real engine, \
             contingency group-commit batch=1, {}ms flush service time, \
             Zipfian(0.8) single-object updates ({} txns per row)",
            FLUSH_DELAY.as_millis(),
            count
        ),
        &[
            "configuration",
            "committed",
            "wall (s)",
            "tput (tps)",
            "speedup vs 1 shard",
            "commit-wait p99 (ms)",
        ],
    );

    let mut rows: Vec<(String, u64, f64, f64)> = Vec::new();

    // Baseline: one engine, no routing layer, same throttled commit path.
    {
        let dir = scratch.join("unsharded");
        let db = Rodain::builder()
            .workers(2)
            .overload(unlimited())
            .contingency_storage(throttled(dir))
            .group_commit_batch(1)
            .build()
            .expect("build unsharded engine");
        for i in 0..DB_OBJECTS {
            db.load_initial(ObjectId(i), Value::Int(0));
        }
        let started = Instant::now();
        let pending: Vec<_> = anchors
            .iter()
            .map(|&n| {
                let oid = ObjectId(n);
                db.submit(TxnOptions::soft_ms(600_000), move |ctx| {
                    let v = ctx.read(oid)?.map_or(0, |v| v.as_int().unwrap_or(0));
                    ctx.write(oid, Value::Int(v + 1))?;
                    Ok(None)
                })
            })
            .collect();
        let committed = pending
            .into_iter()
            .filter_map(|fut| fut.wait().ok())
            .count() as u64;
        let wall = started.elapsed().as_secs_f64();
        let p99 = db
            .metrics()
            .histogram("engine_commit_wait_ns")
            .map_or(0.0, |h| h.percentile(0.99) as f64);
        rows.push(("unsharded".into(), committed, wall, p99));
    }

    for shards in SHARD_SWEEP {
        let dir = scratch.join(format!("shards-{shards}"));
        let cluster = ShardedRodain::builder()
            .shards(shards)
            .workers_per_shard(2)
            .shard_hook(move |i, b| {
                b.overload(unlimited())
                    .contingency_storage(throttled(dir.join(format!("log-{i}"))))
                    .group_commit_batch(1)
            })
            .build()
            .expect("build sharded cluster");
        for i in 0..DB_OBJECTS {
            cluster.load_initial(ObjectId(i), Value::Int(0));
        }
        let started = Instant::now();
        let pending: Vec<_> = anchors
            .iter()
            .map(|&n| {
                let oid = ObjectId(n);
                cluster.submit_on(oid, TxnOptions::soft_ms(600_000), move |ctx| {
                    let v = ctx.read(oid)?.map_or(0, |v| v.as_int().unwrap_or(0));
                    ctx.write(oid, Value::Int(v + 1))?;
                    Ok(None)
                })
            })
            .collect();
        let committed = pending
            .into_iter()
            .filter_map(|fut| fut.wait().ok())
            .count() as u64;
        let wall = started.elapsed().as_secs_f64();
        // Worst per-shard tail: the merged snapshot keeps one labelled
        // series per shard (see METRICS.md).
        let p99 = cluster
            .metrics()
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with("engine_commit_wait_ns"))
            .map(|(_, h)| h.percentile(0.99) as f64)
            .fold(0.0f64, f64::max);
        rows.push((format!("{shards} shard(s)"), committed, wall, p99));
    }

    let _ = std::fs::remove_dir_all(&scratch);

    let one_shard_tput = rows
        .iter()
        .find(|(name, ..)| name == "1 shard(s)")
        .map(|&(_, committed, wall, _)| committed as f64 / wall.max(f64::EPSILON))
        .unwrap_or(0.0);
    for (name, committed, wall, p99) in rows {
        let tput = committed as f64 / wall.max(f64::EPSILON);
        table.push(vec![
            name,
            committed.to_string(),
            format!("{wall:.2}"),
            format!("{tput:.0}"),
            format!("{:.2}×", tput / one_shard_tput.max(f64::EPSILON)),
            ms(p99),
        ]);
    }
    table
}

/// One measured configuration of the COMMITPIPE experiment.
#[derive(Clone, Debug)]
pub struct CommitPipeRow {
    /// Series label (`batch=1` or `batched`).
    pub label: &'static str,
    /// Transactions committed.
    pub committed: u64,
    /// Committed throughput (txn/s).
    pub tput_tps: f64,
    /// Commit-wait median (ns) from `engine_commit_wait_ns`.
    pub p50_ns: u64,
    /// Commit-wait 95th percentile (ns).
    pub p95_ns: u64,
    /// Commit-wait 99th percentile (ns).
    pub p99_ns: u64,
    /// `Records` frames shipped (count of the `ship_batch_records` histogram).
    pub frames: u64,
    /// Mean log records per shipped frame (a commit group is several
    /// records, so the unbatched baseline sits above 1 too — compare the
    /// two series, not the absolute value).
    pub mean_batch: f64,
}

/// COMMITPIPE result: the unbatched baseline against coalesced shipping.
#[derive(Clone, Debug)]
pub struct CommitPipeReport {
    /// `ShipBatchConfig::unbatched()` — one frame per commit group.
    pub unbatched: CommitPipeRow,
    /// Default `ShipBatchConfig` — the shipper coalesces pending groups.
    pub batched: CommitPipeRow,
}

impl CommitPipeReport {
    /// Committed-throughput ratio, batched over unbatched.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.batched.tput_tps / self.unbatched.tput_tps.max(f64::EPSILON)
    }

    /// Commit-wait p99 ratio, batched over unbatched.
    #[must_use]
    pub fn p99_ratio(&self) -> f64 {
        self.batched.p99_ns as f64 / (self.unbatched.p99_ns.max(1)) as f64
    }

    /// Render as the usual markdown table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "COMMITPIPE — batched log shipping vs one frame per commit \
             (8 client threads, mirrored engine over a paced in-process link)",
            &[
                "series",
                "committed",
                "tput (txn/s)",
                "wait p50 (ms)",
                "wait p95 (ms)",
                "wait p99 (ms)",
                "frames",
                "records/frame",
            ],
        );
        for row in [&self.unbatched, &self.batched] {
            table.push(vec![
                row.label.to_string(),
                row.committed.to_string(),
                format!("{:.0}", row.tput_tps),
                ms(row.p50_ns as f64),
                ms(row.p95_ns as f64),
                ms(row.p99_ns as f64),
                row.frames.to_string(),
                format!("{:.2}", row.mean_batch),
            ]);
        }
        table
    }

    /// Hand-rolled JSON (the bench crate deliberately has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn row_json(r: &CommitPipeRow) -> String {
            format!(
                "    {{\"label\": \"{}\", \"committed\": {}, \"tput_tps\": {:.1}, \
                 \"commit_wait_ns\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}, \
                 \"frames\": {}, \"mean_records_per_frame\": {:.2}}}",
                r.label,
                r.committed,
                r.tput_tps,
                r.p50_ns,
                r.p95_ns,
                r.p99_ns,
                r.frames,
                r.mean_batch
            )
        }
        format!(
            "{{\n  \"experiment\": \"COMMITPIPE\",\n  \"rows\": [\n{},\n{}\n  ],\n  \
             \"speedup\": {:.3},\n  \"p99_ratio\": {:.3}\n}}\n",
            row_json(&self.unbatched),
            row_json(&self.batched),
            self.speedup(),
            self.p99_ratio()
        )
    }
}

/// COMMITPIPE: quantify the commit-pipeline overhaul. Two identical
/// mirrored engines run the same 8-thread non-conflicting update load over
/// an in-process link whose sends are paced to a fixed per-frame wire
/// delay (the realistic regime where round trips, not CPU, bound the
/// commit path). The baseline ships one `Records` frame per commit group
/// ([`rodain_db::ShipBatchConfig::unbatched`]); the contender lets the
/// shipper coalesce every group that queued behind the in-flight frame, so
/// one wire delay and one mirror acknowledgement amortize over the batch.
#[must_use]
pub fn commit_pipe(opts: SweepOptions) -> CommitPipeReport {
    use rodain_db::ShipBatchConfig;
    CommitPipeReport {
        unbatched: commit_pipe_point("batch=1", ShipBatchConfig::unbatched(), opts.count),
        batched: commit_pipe_point("batched", ShipBatchConfig::default(), opts.count),
    }
}

fn commit_pipe_point(
    label: &'static str,
    batch: rodain_db::ShipBatchConfig,
    count: u64,
) -> CommitPipeRow {
    use rodain_db::{MirrorLossPolicy, Rodain, TxnOptions};
    use rodain_net::{Bytes, InProcTransport, NetError, Transport};
    use rodain_node::{MirrorConfig, MirrorNode};
    use rodain_store::{ObjectId, Store, Value};
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    /// Per-frame wire delay. Large against local commit CPU cost, small
    /// against the run length — the same regime as a LAN round trip.
    const WIRE_DELAY: Duration = Duration::from_micros(80);
    const CLIENTS: u64 = 8;
    /// Objects per client thread; clients touch disjoint ranges.
    const SPAN: u64 = 100;

    /// The primary half of an in-process pair with sends paced to a fixed
    /// serial wire delay. Receives (mirror acks) stay free.
    struct PacedTransport {
        inner: InProcTransport,
        wire: Mutex<()>,
        delay: Duration,
    }

    impl Transport for PacedTransport {
        fn send(&self, frame: Bytes) -> Result<(), NetError> {
            let _wire = self.wire.lock().unwrap();
            let start = Instant::now();
            // Spin: sleep() granularity is coarser than the delay itself.
            while start.elapsed() < self.delay {
                std::hint::spin_loop();
            }
            self.inner.send(frame)
        }

        fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NetError> {
            self.inner.recv_timeout(timeout)
        }

        fn is_connected(&self) -> bool {
            self.inner.is_connected()
        }

        fn close(&self) {
            self.inner.close()
        }
    }

    let (primary_side, mirror_side) = InProcTransport::pair();
    let store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(store, Arc::new(mirror_side), None, MirrorConfig::default());
    let shutdown = mirror.shutdown_handle();
    let mirror_thread = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run();
    });

    let paced = PacedTransport {
        inner: primary_side,
        wire: Mutex::new(()),
        delay: WIRE_DELAY,
    };
    let db = Arc::new(
        Rodain::builder()
            .workers(CLIENTS as usize)
            .mirror(Arc::new(paced), MirrorLossPolicy::ContinueVolatile)
            .ship_batch(batch)
            .build()
            .expect("engine"),
    );
    for i in 0..CLIENTS * SPAN {
        db.load_initial(ObjectId(i), Value::Int(0));
    }

    let per_client = (count / CLIENTS).max(50);
    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut committed = 0u64;
                for i in 0..per_client {
                    let oid = ObjectId(c * SPAN + i % SPAN);
                    let outcome = db.execute(TxnOptions::soft_ms(60_000), move |ctx| {
                        let v = ctx.read(oid)?.map_or(0, |v| v.as_int().unwrap_or(0));
                        ctx.write(oid, Value::Int(v + 1))?;
                        Ok(None)
                    });
                    if outcome.is_ok() {
                        committed += 1;
                    }
                }
                committed
            })
        })
        .collect();
    let committed: u64 = clients.into_iter().map(|h| h.join().unwrap()).sum();
    let wall = started.elapsed().as_secs_f64();

    let snapshot = db.metrics();
    let wait = |q: f64| -> u64 {
        snapshot
            .histogram("engine_commit_wait_ns")
            .map_or(0, |h| h.percentile(q))
    };
    let frames_hist = snapshot.histogram("ship_batch_records");
    let frames = frames_hist.map_or(0, |h| h.count);
    let mean_batch = frames_hist.map_or(0.0, |h| h.mean());

    drop(db);
    shutdown.store(true, Ordering::Release);
    let _ = mirror_thread.join();

    CommitPipeRow {
        label,
        committed,
        tput_tps: committed as f64 / wall.max(f64::EPSILON),
        p50_ns: wait(0.50),
        p95_ns: wait(0.95),
        p99_ns: wait(0.99),
        frames,
        mean_batch,
    }
}

/// One COMMITTIER series (a commit-API shape at a durability tier).
#[derive(Clone, Debug)]
pub struct CommitTierRow {
    /// Series label.
    pub label: &'static str,
    /// Transactions committed.
    pub committed: u64,
    /// Of those, receipts whose `acked_tier` matched the requested tier.
    pub acked_at_tier: u64,
    /// Committed throughput (txn/s).
    pub tput_tps: f64,
    /// Commit-wait median (ns) from the tier-labelled histogram.
    pub p50_ns: u64,
    /// Commit-wait 99th percentile (ns).
    pub p99_ns: u64,
}

/// COMMITTIER result: blocking `execute` vs pipelined `submit` at the same
/// `MirrorAcked` tier, plus the `Volatile` tier as the latency floor.
#[derive(Clone, Debug)]
pub struct CommitTierReport {
    /// `execute()` (one outstanding commit per client thread).
    pub blocking: CommitTierRow,
    /// `submit()` futures collected after the whole burst — same tier.
    pub pipelined: CommitTierRow,
    /// `submit()` at `DurabilityTier::Volatile` — resolves at validation.
    pub volatile: CommitTierRow,
}

impl CommitTierReport {
    /// Committed-throughput ratio, pipelined over blocking (same tier).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.pipelined.tput_tps / self.blocking.tput_tps.max(f64::EPSILON)
    }

    /// Render as the usual markdown table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "COMMITTIER — commit futures and per-transaction durability tiers \
             (8 client threads, mirrored engine over a paced in-process link)",
            &[
                "series",
                "committed",
                "acked at tier",
                "tput (txn/s)",
                "wait p50 (ms)",
                "wait p99 (ms)",
            ],
        );
        for row in [&self.blocking, &self.pipelined, &self.volatile] {
            table.push(vec![
                row.label.to_string(),
                row.committed.to_string(),
                row.acked_at_tier.to_string(),
                format!("{:.0}", row.tput_tps),
                ms(row.p50_ns as f64),
                ms(row.p99_ns as f64),
            ]);
        }
        table
    }

    /// Hand-rolled JSON (the bench crate deliberately has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn row_json(r: &CommitTierRow) -> String {
            format!(
                "    {{\"label\": \"{}\", \"committed\": {}, \"acked_at_tier\": {}, \
                 \"tput_tps\": {:.1}, \"commit_wait_ns\": {{\"p50\": {}, \"p99\": {}}}}}",
                r.label, r.committed, r.acked_at_tier, r.tput_tps, r.p50_ns, r.p99_ns
            )
        }
        format!(
            "{{\n  \"experiment\": \"COMMITTIER\",\n  \"rows\": [\n{},\n{},\n{}\n  ],\n  \
             \"speedup\": {:.3}\n}}\n",
            row_json(&self.blocking),
            row_json(&self.pipelined),
            row_json(&self.volatile),
            self.speedup()
        )
    }
}

/// Which commit-API shape a COMMITTIER series drives.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TierDriver {
    /// `execute()` — each client thread blocks on its own commit.
    Blocking,
    /// `submit()` the whole burst, then collect every future.
    Pipelined,
}

/// COMMITTIER: quantify the submit → [`rodain_db::CommitFuture`] redesign.
/// Three series on identical mirrored engines (paced link, 8 client
/// threads, disjoint objects): blocking `execute` at `MirrorAcked` — one
/// outstanding commit per connection, the pre-redesign API shape; the same
/// tier through pipelined `submit`, where deferred commits queue behind the
/// in-flight frame and coalesce into the shipper's multi-group frames; and
/// `Volatile`-tier submits as the no-wait floor. The regression gate holds
/// `speedup()` (pipelined / blocking at the same tier) at ≥ 1.5×.
#[must_use]
pub fn commit_tier(opts: SweepOptions) -> CommitTierReport {
    use rodain_db::DurabilityTier;
    CommitTierReport {
        blocking: commit_tier_point(
            "execute @ mirror_acked",
            TierDriver::Blocking,
            DurabilityTier::MirrorAcked,
            opts.count,
        ),
        pipelined: commit_tier_point(
            "submit @ mirror_acked",
            TierDriver::Pipelined,
            DurabilityTier::MirrorAcked,
            opts.count,
        ),
        volatile: commit_tier_point(
            "submit @ volatile",
            TierDriver::Pipelined,
            DurabilityTier::Volatile,
            opts.count,
        ),
    }
}

fn commit_tier_point(
    label: &'static str,
    driver: TierDriver,
    tier: rodain_db::DurabilityTier,
    count: u64,
) -> CommitTierRow {
    use rodain_db::{CommitFuture, MirrorLossPolicy, Rodain, TxnOptions};
    use rodain_net::{Bytes, InProcTransport, NetError, Transport};
    use rodain_node::{MirrorConfig, MirrorNode};
    use rodain_store::{ObjectId, Store, Value};
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    /// Per-frame wire delay (same regime as COMMITPIPE: round trips, not
    /// CPU, bound the commit path).
    const WIRE_DELAY: Duration = Duration::from_micros(80);
    const CLIENTS: u64 = 8;
    /// Objects per client thread; clients touch disjoint ranges.
    const SPAN: u64 = 100;

    /// In-process primary transport with sends paced to a serial wire
    /// delay (mirror acks stay free) — duplicated from COMMITPIPE so each
    /// experiment stays self-contained.
    struct PacedTransport {
        inner: InProcTransport,
        wire: Mutex<()>,
        delay: Duration,
    }

    impl Transport for PacedTransport {
        fn send(&self, frame: Bytes) -> Result<(), NetError> {
            let _wire = self.wire.lock().unwrap();
            let start = Instant::now();
            while start.elapsed() < self.delay {
                std::hint::spin_loop();
            }
            self.inner.send(frame)
        }

        fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NetError> {
            self.inner.recv_timeout(timeout)
        }

        fn is_connected(&self) -> bool {
            self.inner.is_connected()
        }

        fn close(&self) {
            self.inner.close()
        }
    }

    let (primary_side, mirror_side) = InProcTransport::pair();
    let store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(store, Arc::new(mirror_side), None, MirrorConfig::default());
    let shutdown = mirror.shutdown_handle();
    let mirror_thread = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run();
    });

    let paced = PacedTransport {
        inner: primary_side,
        wire: Mutex::new(()),
        delay: WIRE_DELAY,
    };
    let db = Arc::new(
        Rodain::builder()
            .workers(CLIENTS as usize)
            // Pipelined bursts hold thousands of queued submissions; lift
            // the admission limit so both API shapes run the same load.
            .overload(rodain_sched::OverloadConfig {
                base_limit: 100_000,
                min_limit: 100_000,
                ..rodain_sched::OverloadConfig::default()
            })
            .mirror(Arc::new(paced), MirrorLossPolicy::ContinueVolatile)
            .build()
            .expect("engine"),
    );
    for i in 0..CLIENTS * SPAN {
        db.load_initial(ObjectId(i), Value::Int(0));
    }

    let per_client = (count / CLIENTS).max(50);
    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let opts = TxnOptions::soft_ms(60_000).with_durability(tier);
                let mut committed = 0u64;
                let mut at_tier = 0u64;
                let mut tally = |outcome: Result<rodain_db::TxnReceipt, _>| {
                    if let Ok(receipt) = outcome {
                        committed += 1;
                        if receipt.acked_tier == tier {
                            at_tier += 1;
                        }
                    }
                };
                match driver {
                    TierDriver::Blocking => {
                        for i in 0..per_client {
                            let oid = ObjectId(c * SPAN + i % SPAN);
                            tally(db.execute(opts, move |ctx| {
                                let v = ctx.read(oid)?.map_or(0, |v| v.as_int().unwrap_or(0));
                                ctx.write(oid, Value::Int(v + 1))?;
                                Ok(None)
                            }));
                        }
                    }
                    TierDriver::Pipelined => {
                        let futures: Vec<CommitFuture> = (0..per_client)
                            .map(|i| {
                                let oid = ObjectId(c * SPAN + i % SPAN);
                                db.submit(opts, move |ctx| {
                                    let v = ctx.read(oid)?.map_or(0, |v| v.as_int().unwrap_or(0));
                                    ctx.write(oid, Value::Int(v + 1))?;
                                    Ok(None)
                                })
                            })
                            .collect();
                        for fut in futures {
                            tally(fut.wait());
                        }
                    }
                }
                (committed, at_tier)
            })
        })
        .collect();
    let mut committed = 0u64;
    let mut acked_at_tier = 0u64;
    for handle in clients {
        let (c, t) = handle.join().unwrap();
        committed += c;
        acked_at_tier += t;
    }
    let wall = started.elapsed().as_secs_f64();

    let snapshot = db.metrics();
    let series = format!("engine_commit_wait_ns{{tier=\"{}\"}}", tier.label());
    let wait = |q: f64| -> u64 { snapshot.histogram(&series).map_or(0, |h| h.percentile(q)) };
    let row = CommitTierRow {
        label,
        committed,
        acked_at_tier,
        tput_tps: committed as f64 / wall.max(f64::EPSILON),
        p50_ns: wait(0.50),
        p99_ns: wait(0.99),
    };

    drop(db);
    shutdown.store(true, Ordering::Release);
    let _ = mirror_thread.join();
    row
}

/// A private scratch directory for experiments that drive real disk logs.
fn out_dir_scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rodain-bench-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Replay worker counts swept by RECOVERY.
pub const RECOVERY_WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One RECOVERY measurement: a replay phase at a log length and worker
/// count.
#[derive(Clone, Debug)]
pub struct RecoveryRow {
    /// `"cold-start"` (disk scan + partitioned replay) or `"takeover"`
    /// (reorder-buffer drain through the partitioned applier).
    pub phase: &'static str,
    /// Committed transactions replayed.
    pub commits: u64,
    /// Replay worker threads.
    pub workers: usize,
    /// Best-of-repetitions wall time, milliseconds.
    pub best_ms: f64,
    /// Commits applied per second at the best wall time.
    pub commits_per_sec: f64,
}

/// RECOVERY result: replay wall time vs log length and worker count.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Every measured point (phases × log lengths × worker counts).
    pub rows: Vec<RecoveryRow>,
    /// `std::thread::available_parallelism()` on the measuring host. The
    /// scaling gate only binds when this is at least 4 — replay workers
    /// sharing one core cannot speed anything up.
    pub host_parallelism: usize,
}

impl RecoveryReport {
    /// Cold-start speedup of 8 replay workers over 1, measured on the
    /// longest log in the sweep. The CI gate requires this to reach 2.0
    /// (8 workers ≤ 0.5× the single-worker wall time).
    #[must_use]
    pub fn cold_start_speedup_8(&self) -> f64 {
        let longest = self
            .rows
            .iter()
            .filter(|r| r.phase == "cold-start")
            .map(|r| r.commits)
            .max()
            .unwrap_or(0);
        let best = |workers: usize| {
            self.rows
                .iter()
                .find(|r| r.phase == "cold-start" && r.commits == longest && r.workers == workers)
                .map(|r| r.best_ms)
        };
        match (best(1), best(8)) {
            (Some(one), Some(eight)) => one / eight.max(f64::EPSILON),
            _ => 0.0,
        }
    }

    /// Render as the usual markdown table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "RECOVERY — replay wall time vs log length and worker count \
             (partitioned redo replay; cold-start scans disk, takeover \
             drains the reorder buffer)",
            &["phase", "commits", "workers", "best (ms)", "commits/s"],
        );
        for row in &self.rows {
            table.push(vec![
                row.phase.to_string(),
                row.commits.to_string(),
                row.workers.to_string(),
                format!("{:.1}", row.best_ms),
                format!("{:.0}", row.commits_per_sec),
            ]);
        }
        table
    }

    /// Hand-rolled JSON (the bench crate deliberately has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"phase\": \"{}\", \"commits\": {}, \"workers\": {}, \
                     \"best_ms\": {:.3}, \"commits_per_sec\": {:.0}}}",
                    r.phase, r.commits, r.workers, r.best_ms, r.commits_per_sec
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"experiment\": \"RECOVERY\",\n  \"host_parallelism\": {},\n  \
             \"cold_start_speedup_8\": {:.3},\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.host_parallelism,
            self.cold_start_speedup_8(),
            rows
        )
    }
}

/// RECOVERY: how fast a node comes back. A synthetic committed workload
/// (text after-images, the paper's number-translation entry shape) is
/// rendered as a redo log; each point replays it from scratch and reports
/// the best wall time over the repetitions.
///
/// * **cold-start** drives the real node path
///   ([`rodain_node::recover_store_from_disk_with`]): segment scan, frame
///   decode, partitioned install.
/// * **takeover** models the mirror promotion flush: the records are
///   already ingested into a [`rodain_log::ReorderBuffer`] (untimed — the
///   mirror did that while mirroring) and the drain through
///   [`rodain_log::PartitionedApplier`] is what the clock sees.
///
/// `opts.count` scales the log: the longest log holds `count × 12`
/// committed transactions (the default 10 000 yields 120 000 commits, the
/// regression-gate regime), and quarter/half prefixes chart growth vs log
/// length.
#[must_use]
pub fn recovery(opts: SweepOptions) -> RecoveryReport {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rodain_log::{
        LogRecord, LogStorage, LogStorageConfig, Lsn, PartitionedApplier, RecordKind, ReorderBuffer,
    };
    use rodain_node::{recover_store_from_disk_with, RecoveryOptions};
    use rodain_occ::Csn;
    use rodain_store::{ObjectId, Store, Ts, TxnId, Value};
    use std::sync::Arc;
    use std::time::Instant;

    /// After-images per committed transaction.
    const WRITES_PER_TXN: u64 = 2;
    /// Object keyspace; small enough that partitions share hot objects.
    const OBJECTS: u64 = 4096;

    let full_txns = opts.count * 12;
    let reps = opts.reps.clamp(1, 5);

    // Deterministic committed stream: every transaction writes
    // `WRITES_PER_TXN` distinct ~48-byte text images and commits with a
    // dense CSN, so worker-side decode + install dominates the
    // single-threaded envelope routing.
    let mut rng = SmallRng::seed_from_u64(7);
    let mut records = Vec::with_capacity((full_txns * (WRITES_PER_TXN + 1)) as usize);
    let mut lsn = 0u64;
    for t in 1..=full_txns {
        let start = rng.gen_range(0..OBJECTS);
        for w in 0..WRITES_PER_TXN {
            lsn += 1;
            records.push(LogRecord {
                lsn: Lsn(lsn),
                txn: TxnId(t),
                kind: RecordKind::Write {
                    oid: ObjectId((start + w) % OBJECTS),
                    image: Value::Text(format!("route-{:042}", rng.gen::<u64>())),
                },
            });
        }
        lsn += 1;
        records.push(LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(t),
            kind: RecordKind::Commit {
                csn: Csn(t),
                ser_ts: Ts(t * 10),
                n_writes: WRITES_PER_TXN as u32,
            },
        });
    }

    let mut rows = Vec::new();
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    for txns in [full_txns / 4, full_txns / 2, full_txns] {
        let prefix = &records[..(txns * (WRITES_PER_TXN + 1)) as usize];

        let dir = out_dir_scratch(&format!("recovery-{txns}"));
        {
            let mut storage = LogStorage::open(LogStorageConfig {
                fsync: false,
                ..LogStorageConfig::new(&dir)
            })
            .expect("open scratch log");
            storage.append_batch(prefix).expect("append workload");
            storage.flush().expect("flush workload");
        }
        for workers in RECOVERY_WORKER_SWEEP {
            let mut best_ms = f64::MAX;
            for _ in 0..reps {
                let cold =
                    recover_store_from_disk_with(&dir, &RecoveryOptions::with_workers(workers))
                        .expect("cold-start replay");
                assert_eq!(cold.stats.committed, txns, "replay lost commits");
                best_ms = best_ms.min(cold.elapsed.as_secs_f64() * 1e3);
            }
            rows.push(RecoveryRow {
                phase: "cold-start",
                commits: txns,
                workers,
                best_ms,
                commits_per_sec: txns as f64 / (best_ms / 1e3).max(f64::EPSILON),
            });
        }
        let _ = std::fs::remove_dir_all(&dir);

        for workers in RECOVERY_WORKER_SWEEP {
            let mut best_ms = f64::MAX;
            for _ in 0..reps {
                let mut reorder = ReorderBuffer::new();
                for record in prefix {
                    reorder.ingest(record.clone()).expect("ingest");
                }
                let store = Arc::new(Store::new());
                let started = Instant::now();
                let ready = reorder.drain_ready();
                let mut applier = PartitionedApplier::new(&store, workers);
                for committed in &ready {
                    applier.apply(committed);
                }
                let stats = applier.finish().expect("takeover flush");
                let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                assert_eq!(stats.txns, txns, "takeover lost commits");
                best_ms = best_ms.min(elapsed_ms);
            }
            rows.push(RecoveryRow {
                phase: "takeover",
                commits: txns,
                workers,
                best_ms,
                commits_per_sec: txns as f64 / (best_ms / 1e3).max(f64::EPSILON),
            });
        }
    }

    RecoveryReport {
        rows,
        host_parallelism,
    }
}

/// One measured point of the CHECKPOINT soak: a workload phase, observed
/// under one durability variant.
#[derive(Clone, Debug)]
pub struct CheckpointRow {
    /// `"enabled"` (checkpoint + truncate after every phase) or
    /// `"disabled"` (the log only ever grows).
    pub variant: &'static str,
    /// Phase number, 1-based; phase N means the workload has run N× as
    /// long as phase 1.
    pub phase: u32,
    /// Commits executed so far (cumulative across phases).
    pub commits_total: u64,
    /// Bytes of redo log on disk after the phase (segment files only).
    pub on_disk_bytes: u64,
    /// Cold-start recovery wall time from the current on-disk state.
    pub recovery_ms: f64,
    /// Commits the replay applied on top of the snapshot (the whole log
    /// for the disabled variant).
    pub tail_commits: u64,
}

/// CHECKPOINT result: recovery time and log size vs workload age, with
/// and without fuzzy checkpointing.
#[derive(Clone, Debug)]
pub struct CheckpointReport {
    /// Every measured point (2 variants × phases).
    pub rows: Vec<CheckpointRow>,
    /// `std::thread::available_parallelism()` on the measuring host; the
    /// CI gate only binds when this is at least 4 (a single shared core
    /// makes wall-time ratios meaningless).
    pub host_parallelism: usize,
    /// Size floor for the ratio math: a truncated log's residue is the
    /// open segment plus rotation slack, so anything under a few
    /// segments' worth counts as "empty" — otherwise the phase-1
    /// baseline (often a single part-filled segment) makes the bounded
    /// steady state look like growth.
    pub bytes_floor: u64,
}

/// Wall-time floor for ratio math: phases whose recovery finishes under
/// this are "instant" and compared as equal, so scheduler noise on a
/// nearly-empty tail cannot fail the gate.
const CHECKPOINT_MS_FLOOR: f64 = 5.0;

impl CheckpointReport {
    fn row(&self, variant: &str, phase: u32) -> Option<&CheckpointRow> {
        self.rows
            .iter()
            .find(|r| r.variant == variant && r.phase == phase)
    }

    fn last_phase(&self, variant: &str) -> u32 {
        self.rows
            .iter()
            .filter(|r| r.variant == variant)
            .map(|r| r.phase)
            .max()
            .unwrap_or(1)
    }

    /// Recovery-time growth of the enabled variant: last phase over first,
    /// floored at [`CHECKPOINT_MS_FLOOR`]. The CI gate requires ≤ 1.2 —
    /// running the workload 10× longer must not make restart meaningfully
    /// slower when checkpoints are on.
    #[must_use]
    pub fn enabled_recovery_ratio(&self) -> f64 {
        let (first, last) = (
            self.row("enabled", 1),
            self.row("enabled", self.last_phase("enabled")),
        );
        match (first, last) {
            (Some(a), Some(b)) => {
                b.recovery_ms.max(CHECKPOINT_MS_FLOOR) / a.recovery_ms.max(CHECKPOINT_MS_FLOOR)
            }
            _ => f64::INFINITY,
        }
    }

    /// On-disk log growth of the enabled variant, same shape as
    /// [`CheckpointReport::enabled_recovery_ratio`]; gated at ≤ 1.2.
    #[must_use]
    pub fn enabled_bytes_ratio(&self) -> f64 {
        let (first, last) = (
            self.row("enabled", 1),
            self.row("enabled", self.last_phase("enabled")),
        );
        match (first, last) {
            (Some(a), Some(b)) => {
                b.on_disk_bytes.max(self.bytes_floor) as f64
                    / a.on_disk_bytes.max(self.bytes_floor) as f64
            }
            _ => f64::INFINITY,
        }
    }

    /// On-disk log growth of the disabled variant over the same phases —
    /// the contrast line (expected roughly linear, ≈ the phase count).
    #[must_use]
    pub fn disabled_bytes_ratio(&self) -> f64 {
        let (first, last) = (
            self.row("disabled", 1),
            self.row("disabled", self.last_phase("disabled")),
        );
        match (first, last) {
            (Some(a), Some(b)) => {
                b.on_disk_bytes.max(self.bytes_floor) as f64
                    / a.on_disk_bytes.max(self.bytes_floor) as f64
            }
            _ => 0.0,
        }
    }

    /// Render as the usual markdown table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "CHECKPOINT — recovery time and log size vs workload age \
             (fuzzy checkpoint + truncation after every phase vs log-only)",
            &[
                "variant",
                "phase",
                "commits",
                "log bytes",
                "recovery (ms)",
                "tail commits",
            ],
        );
        for row in &self.rows {
            table.push(vec![
                row.variant.to_string(),
                row.phase.to_string(),
                row.commits_total.to_string(),
                row.on_disk_bytes.to_string(),
                format!("{:.1}", row.recovery_ms),
                row.tail_commits.to_string(),
            ]);
        }
        table
    }

    /// Hand-rolled JSON (the bench crate deliberately has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"variant\": \"{}\", \"phase\": {}, \"commits_total\": {}, \
                     \"on_disk_bytes\": {}, \"recovery_ms\": {:.3}, \"tail_commits\": {}}}",
                    r.variant, r.phase, r.commits_total, r.on_disk_bytes, r.recovery_ms, r.tail_commits
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"experiment\": \"CHECKPOINT\",\n  \"host_parallelism\": {},\n  \
             \"enabled_recovery_ratio\": {:.3},\n  \"enabled_bytes_ratio\": {:.3},\n  \
             \"disabled_bytes_ratio\": {:.3},\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.host_parallelism,
            self.enabled_recovery_ratio(),
            self.enabled_bytes_ratio(),
            self.disabled_bytes_ratio(),
            rows
        )
    }
}

/// Phases the CHECKPOINT soak runs: phase N = the workload has run N× as
/// long as at the first measurement.
pub const CHECKPOINT_PHASES: u32 = 10;

/// CHECKPOINT: does fuzzy checkpointing actually bound restart? One real
/// engine per variant runs the same append-heavy workload for
/// [`CHECKPOINT_PHASES`] phases over a Contingency log with small
/// segments. The **enabled** engine forces a checkpoint (install +
/// truncate, `DESIGN.md` §15) after every phase; the **disabled** engine
/// lets the log grow. After each phase, while the engine is quiesced, the
/// on-disk log is sized and a real cold start
/// ([`rodain_node::recover_with_checkpoint_with`] /
/// [`rodain_node::recover_store_from_disk_with`]) is timed against the
/// live directories.
///
/// `opts.count` is the total commit budget; each phase runs a tenth of it.
#[must_use]
pub fn checkpoint(opts: SweepOptions) -> CheckpointReport {
    // Small enough that every phase closes segments for truncation to
    // collect at the default commit budget.
    checkpoint_with_segment(opts, 8 * 1024)
}

fn checkpoint_with_segment(opts: SweepOptions, segment_bytes: u64) -> CheckpointReport {
    use rodain_db::{CheckpointPolicy, Rodain, TxnOptions};
    use rodain_log::{LogStorage, LogStorageConfig};
    use rodain_node::{
        recover_store_from_disk_with, recover_with_checkpoint_with, RecoveryOptions,
    };
    use rodain_store::{ObjectId, Value};
    use std::time::Duration;

    /// Object keyspace: small, so the snapshot stays bounded while the
    /// log keeps growing — the regime checkpointing exists for.
    const OBJECTS: u64 = 512;

    let per_phase = (opts.count / CHECKPOINT_PHASES as u64).max(20);
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();

    for variant in ["enabled", "disabled"] {
        let log_dir = out_dir_scratch(&format!("checkpoint-log-{variant}"));
        let snap_dir = out_dir_scratch(&format!("checkpoint-snap-{variant}"));
        let storage = LogStorage::open(LogStorageConfig {
            fsync: false,
            segment_bytes,
            ..LogStorageConfig::new(&log_dir)
        })
        .expect("open soak log");
        let mut builder = Rodain::builder().workers(2).contingency_storage(storage);
        if variant == "enabled" {
            // Timer off: the soak forces checkpoints at phase boundaries
            // so the measurements land at deterministic points.
            builder = builder.checkpoints(
                &snap_dir,
                CheckpointPolicy::default().with_interval(Duration::ZERO),
            );
        }
        let db = builder.build().expect("build soak engine");

        let mut commits_total = 0u64;
        for phase in 1..=CHECKPOINT_PHASES {
            for i in 0..per_phase {
                let oid = ObjectId((commits_total + i) % OBJECTS);
                let image = Value::Text(format!("route-{:042}", commits_total + i));
                db.execute(TxnOptions::soft_ms(30_000), move |ctx| {
                    ctx.write(oid, image.clone())?;
                    Ok(None)
                })
                .expect("soak commit");
            }
            commits_total += per_phase;
            if variant == "enabled" {
                db.force_checkpoint().expect("forced checkpoint");
            }

            // Quiesced: size the log and time a real cold start against
            // the live directories (reads only).
            let on_disk_bytes = dir_bytes(&log_dir);
            let recovery_opts = RecoveryOptions::with_workers(2);
            let cold = if variant == "enabled" {
                recover_with_checkpoint_with(&log_dir, &snap_dir, &recovery_opts)
            } else {
                recover_store_from_disk_with(&log_dir, &recovery_opts)
            }
            .expect("cold start");
            rows.push(CheckpointRow {
                variant,
                phase,
                commits_total,
                on_disk_bytes,
                recovery_ms: cold.elapsed.as_secs_f64() * 1e3,
                tail_commits: cold.stats.committed,
            });
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&log_dir);
        let _ = std::fs::remove_dir_all(&snap_dir);
    }

    CheckpointReport {
        rows,
        host_parallelism,
        bytes_floor: 4 * segment_bytes,
    }
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok()?.metadata().ok().map(|m| m.len()))
                .sum()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepOptions {
        SweepOptions {
            reps: 1,
            count: 600,
        }
    }

    #[test]
    fn all_tables_have_expected_shape() {
        assert_eq!(fig2_panel_a(quick()).rows.len(), RATE_SWEEP.len());
        assert_eq!(fig2_panel_b(quick()).rows.len(), 11);
        assert_eq!(fig3(0.2, quick()).rows.len(), RATE_SWEEP.len());
        assert_eq!(saturation(quick()).rows.len(), RATE_SWEEP.len());
        assert_eq!(cc_ablation(quick()).rows.len(), Protocol::ALL.len());
        assert_eq!(commit_path(quick()).rows.len(), 5);
        let takeover_table = takeover(SweepOptions {
            reps: 1,
            count: 4_000,
        });
        assert_eq!(takeover_table.rows.len(), 2);
    }

    #[test]
    fn commit_pipe_reports_both_series() {
        let report = commit_pipe(quick());
        assert!(report.unbatched.committed > 0);
        assert!(report.batched.committed > 0);
        assert!(report.unbatched.frames > 0);
        assert!(report.batched.frames > 0);
        assert!(report.unbatched.mean_batch > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"COMMITPIPE\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"mean_records_per_frame\""));
        // Two rows in the rendered table.
        assert_eq!(report.table().rows.len(), 2);
    }

    #[test]
    fn commit_tier_reports_three_series() {
        let report = commit_tier(quick());
        for row in [&report.blocking, &report.pipelined, &report.volatile] {
            assert!(row.committed > 0, "{} committed nothing", row.label);
            assert_eq!(
                row.acked_at_tier, row.committed,
                "{} had receipts below the requested tier",
                row.label
            );
        }
        assert!(report.speedup() > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"COMMITTIER\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("submit @ volatile"));
        assert_eq!(report.table().rows.len(), 3);
    }

    #[test]
    fn checkpoint_soak_bounds_the_enabled_variant() {
        // Tiny 1 KiB segments keep the unit test fast while preserving
        // the shape the gate measures: several closed segments per
        // phase, truncated down to the open-segment residue.
        let report = checkpoint_with_segment(
            SweepOptions {
                reps: 1,
                count: 600,
            },
            1024,
        );
        assert_eq!(report.rows.len(), 2 * CHECKPOINT_PHASES as usize);
        for row in &report.rows {
            assert!(row.recovery_ms >= 0.0 && row.recovery_ms.is_finite());
            assert!(row.on_disk_bytes > 0, "{row:?}: empty log dir");
        }
        // The disabled log replays everything; the enabled tail is
        // truncated away after every phase.
        let last = CHECKPOINT_PHASES;
        let disabled_last = report.row("disabled", last).unwrap();
        assert_eq!(disabled_last.tail_commits, disabled_last.commits_total);
        let enabled_last = report.row("enabled", last).unwrap();
        assert!(
            enabled_last.tail_commits < enabled_last.commits_total,
            "checkpoint never shortened the tail: {enabled_last:?}"
        );
        // The headline invariant (the CI gate, minus wall-time noise):
        // checkpointed log size must not grow with workload age, while
        // the unchecked log must.
        assert!(
            report.enabled_bytes_ratio() <= 1.2,
            "enabled log grew {}x",
            report.enabled_bytes_ratio()
        );
        assert!(
            report.disabled_bytes_ratio() > 2.0,
            "disabled log should grow roughly linearly, got {}x",
            report.disabled_bytes_ratio()
        );
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"CHECKPOINT\""));
        assert!(json.contains("\"enabled_recovery_ratio\""));
        assert!(json.contains("\"enabled_bytes_ratio\""));
        assert_eq!(report.table().rows.len(), report.rows.len());
    }

    #[test]
    fn recovery_sweeps_lengths_workers_and_both_phases() {
        let report = recovery(SweepOptions { reps: 1, count: 40 });
        // 3 log lengths × 4 worker counts × 2 phases.
        assert_eq!(report.rows.len(), 3 * RECOVERY_WORKER_SWEEP.len() * 2);
        for row in &report.rows {
            assert!(row.best_ms >= 0.0 && row.best_ms.is_finite());
            assert!(row.commits > 0);
        }
        assert!(report.cold_start_speedup_8() > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"RECOVERY\""));
        assert!(json.contains("\"cold_start_speedup_8\""));
        assert!(json.contains("\"takeover\""));
    }

    #[test]
    fn shard_scale_sweeps_every_shard_count() {
        let table = shard_scale(SweepOptions {
            reps: 1,
            count: 200,
        });
        // One unsharded baseline row plus one row per swept shard count.
        assert_eq!(table.rows.len(), 1 + SHARD_SWEEP.len());
        for row in &table.rows {
            let committed: u64 = row[1].parse().unwrap();
            assert!(committed > 0, "row {} committed nothing", row[0]);
        }
    }
}
