//! Blocking client for the User Request Interpreter protocol.

use crate::protocol::{
    read_frame, write_frame, MetricsFormat, Outcome, Request, RequestOp, Response,
};
use rodain_db::DurabilityTier;
use rodain_store::{ObjectId, Value};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking client connection.
///
/// Responses are correlated by request id: the server may interleave
/// frames (deferred durability acknowledgements, `Stats` answered ahead of
/// a slow commit), so every receive path matches on id and stashes frames
/// that answer other outstanding requests. Single-request helpers
/// ([`Client::translate`], [`Client::provision`], …) block for their own
/// outcome; [`Client::pipeline`] sends a burst and collects all replies;
/// [`Client::submit_deferred`] + [`Client::wait_durable`] split a commit
/// into submission and durability so the connection keeps streaming.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Final outcomes received while waiting for a different id.
    stash: HashMap<u64, Outcome>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
            stash: HashMap::new(),
        })
    }

    fn send(
        &mut self,
        deadline_ms: u32,
        tier: DurabilityTier,
        deferred: bool,
        op: RequestOp,
    ) -> std::io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            deadline_ms,
            tier,
            deferred,
            op,
        };
        write_frame(&mut self.writer, &request.encode())?;
        Ok(id)
    }

    fn recv(&mut self) -> std::io::Result<Response> {
        self.writer.flush()?;
        let frame = read_frame(&mut self.reader)?;
        Response::decode(frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Block until the *final* outcome for `id` arrives. `CommitPending`
    /// frames are informational and skipped; final frames for other ids
    /// are stashed for their own waiters.
    fn recv_matching(&mut self, id: u64) -> std::io::Result<Outcome> {
        if let Some(outcome) = self.stash.remove(&id) {
            return Ok(outcome);
        }
        loop {
            let response = self.recv()?;
            if matches!(response.outcome, Outcome::CommitPending) {
                continue;
            }
            if response.id == id {
                return Ok(response.outcome);
            }
            self.stash.insert(response.id, response.outcome);
        }
    }

    /// One request, blocking for its outcome at the default durability
    /// tier.
    pub fn request(&mut self, deadline_ms: u32, op: RequestOp) -> std::io::Result<Outcome> {
        self.request_tiered(deadline_ms, DurabilityTier::default(), op)
    }

    /// One request, blocking until the chosen durability tier's gate is
    /// satisfied.
    pub fn request_tiered(
        &mut self,
        deadline_ms: u32,
        tier: DurabilityTier,
        op: RequestOp,
    ) -> std::io::Result<Outcome> {
        let id = self.send(deadline_ms, tier, false, op)?;
        self.recv_matching(id)
    }

    /// Submit a deferred request: returns its id immediately so the
    /// connection can keep submitting; collect the durable outcome later
    /// with [`Client::wait_durable`]. The server acknowledges validation
    /// with `CommitPending` and answers `CommitDurable` (carrying the
    /// achieved tier and CSN) when the tier gate resolves.
    pub fn submit_deferred(
        &mut self,
        deadline_ms: u32,
        tier: DurabilityTier,
        op: RequestOp,
    ) -> std::io::Result<u64> {
        self.send(deadline_ms, tier, true, op)
    }

    /// Block for the final outcome of a request submitted with
    /// [`Client::submit_deferred`].
    pub fn wait_durable(&mut self, id: u64) -> std::io::Result<Outcome> {
        self.recv_matching(id)
    }

    /// Translate a service number (read-only service provision).
    pub fn translate(&mut self, number: u64, deadline_ms: u32) -> std::io::Result<Outcome> {
        self.request(deadline_ms, RequestOp::Translate { number })
    }

    /// Re-point a service number (update service provision).
    pub fn provision(
        &mut self,
        number: u64,
        address: impl Into<String>,
        deadline_ms: u32,
    ) -> std::io::Result<Outcome> {
        self.request(
            deadline_ms,
            RequestOp::Provision {
                number,
                address: address.into(),
            },
        )
    }

    /// Generic object read.
    pub fn get(&mut self, oid: ObjectId, deadline_ms: u32) -> std::io::Result<Outcome> {
        self.request(deadline_ms, RequestOp::Get { oid })
    }

    /// Generic object write.
    pub fn put(
        &mut self,
        oid: ObjectId,
        value: Value,
        deadline_ms: u32,
    ) -> std::io::Result<Outcome> {
        self.request(deadline_ms, RequestOp::Put { oid, value })
    }

    /// Engine statistics as `Record[committed, aborted, restarts, active]`.
    pub fn stats(&mut self) -> std::io::Result<Outcome> {
        self.request(0, RequestOp::Stats)
    }

    /// Full metrics snapshot rendered in the requested format.
    ///
    /// Returns `Outcome::Ok(Value::Text(..))` holding the rendered
    /// snapshot — human-readable lines, JSON, or Prometheus exposition
    /// depending on `format`. See the repository's `METRICS.md` for the
    /// metric catalog.
    pub fn metrics(&mut self, format: MetricsFormat) -> std::io::Result<Outcome> {
        self.request(0, RequestOp::Metrics { format })
    }

    /// Force a checkpoint on the node: take a fuzzy snapshot now and
    /// truncate the log behind it under the server's configured policy.
    ///
    /// Returns `Outcome::Ok(Value::Text(..))` holding the installed
    /// snapshot file's path, or `Outcome::Failed` when the node has no
    /// checkpoint directory configured. See OPERATIONS.md for when to
    /// force a checkpoint during an incident.
    pub fn checkpoint(&mut self) -> std::io::Result<Outcome> {
        self.request(0, RequestOp::Checkpoint)
    }

    /// Fetch the node's current shard map (cluster deployments).
    ///
    /// Returns `Outcome::Ok` holding the map's `Value` encoding — decode
    /// with [`rodain_shard::ShardMap::from_value`] — or `Outcome::Failed`
    /// on a non-cluster node. Clients cache the map and refetch whenever
    /// a request is answered [`Outcome::WrongShard`].
    pub fn cluster_map(&mut self) -> std::io::Result<Outcome> {
        self.request(0, RequestOp::ClusterMap)
    }

    /// Send a burst of pipelined requests and collect all responses,
    /// returned in request order regardless of the order the server
    /// resolves them in (correlation is by request id).
    pub fn pipeline(&mut self, requests: Vec<(u32, RequestOp)>) -> std::io::Result<Vec<Outcome>> {
        let tier = DurabilityTier::default();
        let ids: Vec<u64> = requests
            .into_iter()
            .map(|(deadline_ms, op)| self.send(deadline_ms, tier, false, op))
            .collect::<std::io::Result<_>>()?;
        ids.into_iter().map(|id| self.recv_matching(id)).collect()
    }
}
