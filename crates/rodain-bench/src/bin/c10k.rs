//! SATURATION (C10K): the event-driven front-end vs the
//! thread-per-connection baseline under pipelined connection storms,
//! 64 → 4096 connections (64 → 1024 with `--quick`).
//!
//! Writes `BENCH_SATURATION.json` into the output directory and exits
//! non-zero when the front-end redesign regresses: the event-driven
//! server must clear 1.5× the baseline's committed throughput at the
//! largest measured point with ≥ 1024 connections — while using O(cores)
//! threads instead of two per connection.
//!
//! `cargo run -p rodain-bench --release --bin c10k [-- --quick]`

#[cfg(unix)]
fn main() {
    use rodain_bench::experiments::SweepOptions;
    use rodain_bench::frontend::front_end_saturation;
    use rodain_bench::report::out_dir;

    let report = front_end_saturation(SweepOptions::from_args());
    report.table().print();

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("BENCH_SATURATION.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_SATURATION.json");
    println!("json: {path:?}");

    let speedup = report.speedup();
    println!("event-driven / thread-per-conn committed throughput at the gate point: {speedup:.2}x");
    if speedup < 1.5 {
        eprintln!("SATURATION regression: need speedup >= 1.5 (got {speedup:.2})");
        std::process::exit(1);
    }
}

#[cfg(not(unix))]
fn main() {
    println!("SATURATION needs the unix readiness poller; skipping.");
}
