//! Primary/Mirror replication end-to-end: in-process and over TCP.

use rodain::db::{MirrorLossPolicy, ReplicationMode, Rodain, TxnOptions};
use rodain::net::{InProcTransport, LossyLink, TcpTransport, Transport};
use rodain::node::{MirrorConfig, MirrorExit, MirrorNode};
use rodain::store::Store;
use rodain::{ObjectId, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_mirror_config() -> MirrorConfig {
    MirrorConfig {
        poll_interval: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(10),
        peer_timeout: Duration::from_millis(100),
        suspect_rounds: 3,
        snapshot_dir: None,
        takeover_workers: 2,
    }
}

/// Spawn a mirror on `transport`; returns (store, applied-CSN handle,
/// shutdown flag, join handle).
#[allow(clippy::type_complexity)]
fn spawn_mirror(
    transport: Arc<dyn Transport>,
) -> (
    Arc<Store>,
    Arc<AtomicU64>,
    Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<(MirrorExit, rodain::node::MirrorReport)>,
) {
    let store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(store.clone(), transport, None, fast_mirror_config());
    let applied = mirror.applied_csn_handle();
    let shutdown = mirror.shutdown_handle();
    let handle = std::thread::spawn(move || {
        mirror.join().expect("mirror join");
        mirror.run()
    });
    (store, applied, shutdown, handle)
}

fn wait_for_csn(applied: &AtomicU64, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while applied.load(Ordering::Acquire) < target {
        assert!(
            Instant::now() < deadline,
            "mirror never reached csn {target}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn mirror_tracks_primary_state_inproc() {
    let (primary_side, mirror_side) = InProcTransport::pair();
    let (mirror_store, applied, shutdown, mirror_handle) = spawn_mirror(Arc::new(mirror_side));

    let db = Rodain::builder()
        .workers(2)
        .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .build()
        .unwrap();
    assert_eq!(db.replication_mode(), ReplicationMode::Mirrored);

    for i in 0..50u64 {
        db.execute(TxnOptions::firm_ms(2_000), move |ctx| {
            ctx.write(ObjectId(i), Value::Int(i as i64 * 3))?;
            Ok(None)
        })
        .unwrap();
    }
    wait_for_csn(&applied, 50);

    // The database copy matches exactly (values AND version metadata).
    let primary_snapshot = db.snapshot();
    let mirror_snapshot = mirror_store.snapshot();
    assert_eq!(primary_snapshot, mirror_snapshot);
    assert_eq!(db.mirror_acks(), Some(50));

    shutdown.store(true, Ordering::Release);
    let (exit, report) = mirror_handle.join().unwrap();
    assert_eq!(exit, MirrorExit::ShutdownRequested);
    assert_eq!(report.txns_applied, 50);
    assert_eq!(report.acks_sent, 50);
}

#[test]
fn initial_state_transfers_via_snapshot() {
    // The primary has data BEFORE the mirror attaches; the join snapshot
    // must carry it over.
    let db = Rodain::builder().workers(2).build().unwrap();
    for i in 0..200u64 {
        db.load_initial(ObjectId(i), Value::Int(i as i64));
    }
    db.execute(TxnOptions::firm_ms(2_000), |ctx| {
        ctx.write(ObjectId(0), Value::Int(-1))?;
        Ok(None)
    })
    .unwrap();

    let (primary_side, mirror_side) = InProcTransport::pair();
    let (mirror_store, applied, shutdown, mirror_handle) = spawn_mirror(Arc::new(mirror_side));
    db.attach_mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .unwrap();
    assert_eq!(db.replication_mode(), ReplicationMode::Mirrored);

    // A post-attach commit streams live.
    db.execute(TxnOptions::firm_ms(2_000), |ctx| {
        ctx.write(ObjectId(1), Value::Int(-2))?;
        Ok(None)
    })
    .unwrap();
    wait_for_csn(&applied, 2);

    assert_eq!(mirror_store.len(), 200);
    assert_eq!(
        mirror_store.read(ObjectId(0)).map(|(v, _)| v),
        Some(Value::Int(-1))
    );
    assert_eq!(
        mirror_store.read(ObjectId(1)).map(|(v, _)| v),
        Some(Value::Int(-2))
    );
    shutdown.store(true, Ordering::Release);
    mirror_handle.join().unwrap();
}

#[test]
fn mirror_tracks_primary_over_tcp() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mirror_thread = std::thread::spawn(move || {
        let transport = TcpTransport::connect(addr).unwrap();
        let store = Arc::new(Store::new());
        let mut mirror = MirrorNode::new(
            store.clone(),
            Arc::new(transport),
            None,
            fast_mirror_config(),
        );
        let applied = mirror.applied_csn_handle();
        let shutdown = mirror.shutdown_handle();
        mirror.join().unwrap();
        let runner = std::thread::spawn(move || mirror.run());
        (store, applied, shutdown, runner)
    });
    let primary_transport = TcpTransport::accept(&listener).unwrap();

    let db = Rodain::builder()
        .workers(2)
        .mirror(
            Arc::new(primary_transport),
            MirrorLossPolicy::ContinueVolatile,
        )
        .build()
        .unwrap();
    let (mirror_store, applied, shutdown, runner) = mirror_thread.join().unwrap();

    for i in 0..30u64 {
        db.execute(TxnOptions::firm_ms(2_000), move |ctx| {
            ctx.write(ObjectId(i), Value::Text(format!("route-{i}")))?;
            Ok(None)
        })
        .unwrap();
    }
    wait_for_csn(&applied, 30);
    assert_eq!(mirror_store.len(), 30);
    assert_eq!(
        mirror_store.read(ObjectId(7)).map(|(v, _)| v),
        Some(Value::Text("route-7".into()))
    );
    shutdown.store(true, Ordering::Release);
    runner.join().unwrap();
}

#[test]
fn mirror_death_degrades_to_volatile_and_keeps_serving() {
    let (primary_side, mirror_side) = InProcTransport::pair();
    let (lossy, control) = LossyLink::new(primary_side);
    let (_store, applied, _shutdown, mirror_handle) = spawn_mirror(Arc::new(mirror_side));

    let db = Rodain::builder()
        .workers(2)
        .mirror(Arc::new(lossy), MirrorLossPolicy::ContinueVolatile)
        .build()
        .unwrap();

    db.execute(TxnOptions::firm_ms(2_000), |ctx| {
        ctx.write(ObjectId(1), Value::Int(1))?;
        Ok(None)
    })
    .unwrap();
    wait_for_csn(&applied, 1);

    // Kill the link: the mirror promotes itself; the primary degrades.
    control.sever();
    let (exit, _) = mirror_handle.join().unwrap();
    assert_eq!(exit, MirrorExit::PrimaryFailed);

    // The primary keeps committing in degraded mode.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let r = db.execute(TxnOptions::firm_ms(2_000), |ctx| {
            ctx.write(ObjectId(2), Value::Int(2))?;
            Ok(None)
        });
        if r.is_ok() && db.replication_mode() == ReplicationMode::Volatile {
            break;
        }
        assert!(Instant::now() < deadline, "primary never degraded cleanly");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(db.get(ObjectId(2)), Some(Value::Int(2)));
}

#[test]
fn recovered_node_rejoins_as_mirror() {
    // Phase 1: normal pair; mirror dies.
    let (primary_side, mirror_side) = InProcTransport::pair();
    let (_s, applied, _sd, mirror_handle) = spawn_mirror(Arc::new(mirror_side));
    let db = Rodain::builder()
        .workers(2)
        .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .build()
        .unwrap();
    db.execute(TxnOptions::firm_ms(2_000), |ctx| {
        ctx.write(ObjectId(1), Value::Int(10))?;
        Ok(None)
    })
    .unwrap();
    wait_for_csn(&applied, 1);
    // Sever by dropping: close from the primary side is not available here,
    // so shut the mirror down and let the primary notice on its own.
    _sd.store(true, Ordering::Release);
    mirror_handle.join().unwrap();

    // Phase 2: more volatile-era commits while alone.
    db.execute(TxnOptions::firm_ms(2_000), |ctx| {
        ctx.write(ObjectId(2), Value::Int(20))?;
        Ok(None)
    })
    .unwrap();

    // Phase 3: a fresh mirror (the "recovered node") rejoins: snapshot
    // transfer + live stream.
    let (primary_side2, mirror_side2) = InProcTransport::pair();
    let (store2, applied2, shutdown2, handle2) = spawn_mirror(Arc::new(mirror_side2));
    db.attach_mirror(Arc::new(primary_side2), MirrorLossPolicy::ContinueVolatile)
        .unwrap();
    assert_eq!(db.replication_mode(), ReplicationMode::Mirrored);

    db.execute(TxnOptions::firm_ms(2_000), |ctx| {
        ctx.write(ObjectId(3), Value::Int(30))?;
        Ok(None)
    })
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while store2.read(ObjectId(3)).is_none() {
        assert!(Instant::now() < deadline, "rejoined mirror never caught up");
        std::thread::sleep(Duration::from_millis(1));
    }
    // The rejoined mirror holds the full history: snapshot-era objects too.
    assert_eq!(
        store2.read(ObjectId(1)).map(|(v, _)| v),
        Some(Value::Int(10))
    );
    assert_eq!(
        store2.read(ObjectId(2)).map(|(v, _)| v),
        Some(Value::Int(20))
    );
    let _ = applied2;
    shutdown2.store(true, Ordering::Release);
    handle2.join().unwrap();
}

#[test]
fn read_only_transactions_also_round_trip_to_the_mirror() {
    // Paper: "the system generates a commit log record also for read-only
    // transactions" — so their commit waits for the mirror ack too.
    let (primary_side, mirror_side) = InProcTransport::pair();
    let (_store, applied, shutdown, handle) = spawn_mirror(Arc::new(mirror_side));
    let db = Rodain::builder()
        .workers(1)
        .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .build()
        .unwrap();
    db.load_initial(ObjectId(1), Value::Int(1));
    let receipt = db
        .execute(TxnOptions::firm_ms(2_000), |ctx| {
            ctx.read(ObjectId(1))?;
            Ok(None)
        })
        .unwrap();
    assert!(receipt.commit_wait > Duration::ZERO);
    wait_for_csn(&applied, 1);
    assert_eq!(db.mirror_acks(), Some(1));
    shutdown.store(true, Ordering::Release);
    handle.join().unwrap();
}
