//! SHARDSCALE: committed throughput vs shard count on the real engine,
//! with the log stream made the measured bottleneck (group-commit batch 1
//! over a throttled storage backend; see `DESIGN.md` §11).
//!
//! `cargo run -p rodain-bench --release --bin shard_scale [-- --quick]`

use rodain_bench::experiments::{shard_scale, SweepOptions};

fn main() {
    let table = shard_scale(SweepOptions::from_args());
    table.print();
    println!("csv: {:?}", table.write_csv("shard_scale").unwrap());
}
