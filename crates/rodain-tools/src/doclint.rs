//! Documentation lint: intra-repo markdown links must resolve, and the
//! metrics catalog (`METRICS.md`) must stay in sync with the metric
//! names the source actually registers.
//!
//! Run as `rodain-doclint [repo-root]` (default `.`); CI treats any
//! finding as a failure. The checks are deliberately dumb text scans —
//! no markdown parser, no syntax tree — so they cannot silently skip a
//! file they fail to parse.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Directories never scanned (build output, VCS internals, scratch).
const SKIP_DIRS: &[&str] = &[".git", "target", ".claude", "experiments-out", "node_modules"];

fn walk(dir: &Path, ext: &str, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, ext, out);
            }
        } else if path.extension().is_some_and(|e| e == ext) {
            out.push(path);
        }
    }
}

/// Check every `[text](target)` link in every tracked markdown file:
/// relative targets (after stripping `#anchor` fragments) must exist on
/// disk. External (`http…`, `mailto:`) and pure-anchor links are
/// skipped. Returns one human-readable violation per broken link.
#[must_use]
pub fn check_markdown_links(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    walk(root, "md", &mut files);
    files.sort();
    let mut violations = Vec::new();
    for file in &files {
        let Ok(content) = fs::read_to_string(file) else {
            continue;
        };
        let dir = file.parent().unwrap_or(root);
        for target in extract_link_targets(&content) {
            let path = target.split('#').next().unwrap_or("");
            if path.is_empty()
                || path.starts_with("http://")
                || path.starts_with("https://")
                || path.starts_with("mailto:")
            {
                continue;
            }
            let resolved = if let Some(abs) = path.strip_prefix('/') {
                root.join(abs)
            } else {
                dir.join(path)
            };
            if !resolved.exists() {
                violations.push(format!(
                    "{}: broken link ({target})",
                    file.strip_prefix(root).unwrap_or(file).display()
                ));
            }
        }
    }
    violations
}

/// Pull the `target` out of every `](target)` occurrence. A title
/// suffix (`](file "title")`) is stripped at the first space.
fn extract_link_targets(content: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = content.as_bytes();
    let mut i = 0;
    while let Some(open) = content[i..].find("](") {
        let bracket = i + open;
        let start = bracket + 2;
        let Some(close) = content[start..].find(')') else {
            break;
        };
        let raw = &content[start..start + close];
        // Skip code-span artifacts (`](…)` quoted in backticks) and
        // empty or multi-line targets.
        let in_code_span = bracket > 0 && bytes[bracket - 1] == b'`';
        if !in_code_span && !raw.is_empty() && !raw.contains('`') && !raw.contains('\n') {
            let target = raw.split(' ').next().unwrap_or(raw);
            out.push(target.to_string());
        }
        i = start + close;
        if i >= bytes.len() {
            break;
        }
    }
    out
}

/// Compare the metric names cataloged in `METRICS.md` against the names
/// the source registers or reads. Both directions are violations: a
/// metric used in code but missing from the catalog is undocumented; a
/// cataloged metric no code touches is stale documentation. Label
/// blocks (`{…}`) are stripped on both sides — the catalog documents
/// labeled series individually, the source often builds them with
/// `format!`.
#[must_use]
pub fn check_metrics_catalog(root: &Path) -> Vec<String> {
    let catalog_path = root.join("METRICS.md");
    let Ok(catalog) = fs::read_to_string(&catalog_path) else {
        return vec!["METRICS.md: missing".to_string()];
    };
    let documented = catalog_metric_names(&catalog);
    let scanned = source_metric_names(root);
    // A scanned name ending in `_` is a dynamic family — the source
    // builds the full name at runtime (`format!("occ_{name}_total…")`).
    // It stands for every documented name sharing the prefix.
    let (prefixes, used): (BTreeSet<String>, BTreeSet<String>) =
        scanned.into_iter().partition(|n| n.ends_with('_'));

    let mut violations = Vec::new();
    for name in &used {
        if !documented.contains(name) {
            violations.push(format!(
                "METRICS.md: metric `{name}` is registered in source but not cataloged"
            ));
        }
    }
    for prefix in &prefixes {
        if !documented.iter().any(|d| d.starts_with(prefix.as_str())) {
            violations.push(format!(
                "METRICS.md: dynamic metric family `{prefix}…` has no cataloged members"
            ));
        }
    }
    for name in &documented {
        let covered = used.contains(name)
            || prefixes.iter().any(|p| name.starts_with(p.as_str()));
        if !covered {
            violations.push(format!(
                "METRICS.md: cataloged metric `{name}` no longer appears in source"
            ));
        }
    }
    violations
}

/// First-cell backticked names of table rows whose kind column mentions
/// counter/gauge/histogram, label blocks stripped.
fn catalog_metric_names(catalog: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in catalog.lines() {
        let mut cells = line.split('|').skip(1);
        let (Some(name_cell), Some(kind_cell)) = (cells.next(), cells.next()) else {
            continue;
        };
        let kind = kind_cell.trim();
        if !(kind.contains("counter") || kind.contains("gauge") || kind.contains("histogram")) {
            continue;
        }
        let name_cell = name_cell.trim();
        let Some(stripped) = name_cell.strip_prefix('`') else {
            continue;
        };
        let base: String = stripped
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        if !base.is_empty() {
            names.insert(base);
        }
    }
    names
}

/// Metric-name string literals reaching `.counter(` / `.gauge(` /
/// `.histogram(` calls in non-test source under `crates/`. The literal
/// may sit behind `&format!(` and even on the following line; anything
/// up to 120 bytes past the call is searched for the opening quote.
fn source_metric_names(root: &Path) -> BTreeSet<String> {
    let mut files = Vec::new();
    walk(&root.join("crates"), "rs", &mut files);
    let mut names = BTreeSet::new();
    for file in &files {
        let Ok(content) = fs::read_to_string(file) else {
            continue;
        };
        // Unit tests live in a trailing `#[cfg(test)] mod tests` by
        // repo convention; they register throwaway names.
        let code = content
            .split("#[cfg(test)]")
            .next()
            .unwrap_or(content.as_str());
        for method in [".counter(", ".gauge(", ".histogram("] {
            let mut i = 0;
            while let Some(at) = code[i..].find(method) {
                let call = i + at + method.len();
                let window = &code[call..(call + 120).min(code.len())];
                if let Some(name) = literal_after_quote(window) {
                    names.insert(name);
                }
                i = call;
            }
        }
    }
    names
}

/// The `[a-z0-9_]+` run right after the first `"` in `window`, if the
/// quote appears before anything other than whitespace, `&`, or
/// `format!(`. Returns `None` for calls taking a runtime variable.
fn literal_after_quote(window: &str) -> Option<String> {
    let quote = window.find('"')?;
    let prefix = &window[..quote];
    if !prefix
        .chars()
        .all(|c| c.is_whitespace() || "&format!()".contains(c))
    {
        return None;
    }
    let name: String = window[quote + 1..]
        .chars()
        .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
        .collect();
    if name.len() >= 3 {
        Some(name)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rodain-doclint-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn broken_and_valid_links_are_told_apart() {
        let root = scratch("links");
        fs::write(root.join("EXISTS.md"), "target").unwrap();
        fs::write(
            root.join("README.md"),
            "[good](EXISTS.md) [anchor](EXISTS.md#sec) [web](https://example.com) \
             [self](#local) [bad](MISSING.md)",
        )
        .unwrap();
        let violations = check_markdown_links(&root);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("MISSING.md"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn metrics_catalog_flags_both_directions() {
        let root = scratch("metrics");
        fs::write(
            root.join("METRICS.md"),
            "| metric | kind | meaning |\n|---|---|---|\n\
             | `used_total` | counter | fine |\n\
             | `labeled_ns{tier=\"x\"}` | histogram | fine, label stripped |\n\
             | `stale_total` | counter | no longer in source |\n",
        )
        .unwrap();
        let src = root.join("crates/fake/src");
        fs::create_dir_all(&src).unwrap();
        fs::write(
            src.join("lib.rs"),
            "fn f(rec: &Recorder) {\n\
             let _ = rec.counter(\"used_total\");\n\
             let _ = rec.histogram(&format!(\n        \"labeled_ns{{tier=\\\"{t}\\\"}}\"));\n\
             let _ = rec.counter(\"undocumented_total\");\n\
             let _ = rec.counter(runtime_variable);\n\
             }\n\
             #[cfg(test)]\nmod tests { fn t(r: &Recorder) { r.counter(\"test_only_total\"); } }\n",
        )
        .unwrap();
        let violations = check_metrics_catalog(&root);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("`undocumented_total`")));
        assert!(violations.iter().any(|v| v.contains("`stale_total`")));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn link_targets_strip_titles_and_skip_code_spans() {
        let targets = extract_link_targets("[a](x.md \"title\") `](not-a-link)` [b](y.md#frag)");
        assert!(targets.contains(&"x.md".to_string()));
        assert!(targets.contains(&"y.md#frag".to_string()));
        assert!(!targets.iter().any(|t| t.contains("not-a-link")));
    }
}
