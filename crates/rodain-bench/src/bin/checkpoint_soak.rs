//! CHECKPOINT: does fuzzy checkpointing bound restart time and log size?
//! Two real engines run the same append-heavy workload for 10 phases;
//! one forces a checkpoint (install + truncate, `DESIGN.md` §15) after
//! every phase, the other lets its log grow. After each phase the
//! on-disk log is sized and a real cold start is timed.
//!
//! Writes `BENCH_CHECKPOINT.json` into the output directory and exits
//! non-zero when the checkpointed variant stops being bounded: on hosts
//! exposing at least 4 cores, its recovery time and log size at phase 10
//! must stay within 1.2× of their phase-1 values (small wall times are
//! floored so an instant restart cannot fail on scheduler noise). Hosts
//! with fewer cores print the report but skip the gate.
//!
//! `cargo run -p rodain-bench --release --bin checkpoint_soak [-- --quick]`

use rodain_bench::experiments::{checkpoint, SweepOptions};
use rodain_bench::report::out_dir;

fn main() {
    let report = checkpoint(SweepOptions::from_args());
    report.table().print();

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("BENCH_CHECKPOINT.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_CHECKPOINT.json");
    println!("json: {path:?}");

    let recovery_ratio = report.enabled_recovery_ratio();
    let bytes_ratio = report.enabled_bytes_ratio();
    println!(
        "enabled variant at 10x workload age: recovery {recovery_ratio:.2}x, \
         log size {bytes_ratio:.2}x of phase 1 (disabled log grew {:.2}x) \
         on a {}-core host",
        report.disabled_bytes_ratio(),
        report.host_parallelism
    );
    if report.host_parallelism < 4 {
        eprintln!(
            "CHECKPOINT gate skipped: host exposes {} cores (< 4), wall-time \
             ratios are not meaningful here",
            report.host_parallelism
        );
        return;
    }
    if recovery_ratio > 1.2 || bytes_ratio > 1.2 {
        eprintln!(
            "CHECKPOINT regression: with checkpoints enabled, recovery time and \
             log size must stay <= 1.2x their phase-1 values as the workload \
             runs 10x longer (got recovery {recovery_ratio:.2}x, bytes {bytes_ratio:.2}x)"
        );
        std::process::exit(1);
    }
}
