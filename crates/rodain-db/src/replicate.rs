//! Commit-path replication: mirror shipping, contingency disk, volatile.

use crate::error::TxnError;
use crate::options::MirrorLossPolicy;
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rodain_log::{GroupCommitLog, LogRecord, LogStorage, LogStorageConfig, StorageBackend};
use rodain_net::{NetError, Transport};
use rodain_node::Message;
use rodain_obs::{Counter, Gauge, Histogram, Recorder};
use rodain_occ::Csn;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Attempts for one frame before the link is declared dead. Only
/// [`NetError::Io`] is retried — `Disconnected` is permanent under the
/// crash-stop transport contract.
const SEND_ATTEMPTS: u32 = 3;

/// Initial backoff between send retries (doubles per attempt).
const SEND_BACKOFF: Duration = Duration::from_micros(100);

/// Send `frame`, retrying transient I/O errors with exponential backoff.
fn send_with_retry(transport: &dyn Transport, frame: Bytes) -> Result<(), NetError> {
    let mut backoff = SEND_BACKOFF;
    let mut attempt = 1;
    loop {
        match transport.send(frame.clone()) {
            Ok(()) => return Ok(()),
            // Crash-stop: the peer is gone for good; retrying is useless.
            Err(NetError::Disconnected) => return Err(NetError::Disconnected),
            Err(err @ NetError::Io(_)) => {
                if attempt >= SEND_ATTEMPTS {
                    return Err(err);
                }
                attempt += 1;
                std::thread::sleep(backoff);
                backoff *= 2;
            }
        }
    }
}

/// The engine's current durability/replication mode (observable status).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicationMode {
    /// No durability: commits complete at validation.
    Volatile,
    /// Single node: synchronous group-commit to the local disk.
    Contingency,
    /// Primary + live mirror: the mirror's commit acknowledgement gates
    /// the commit.
    Mirrored,
}

impl ReplicationMode {
    /// Stable numeric encoding published as the `replication_mode` gauge
    /// (see `METRICS.md`): 0 = Volatile, 1 = Contingency, 2 = Mirrored.
    #[must_use]
    pub fn as_gauge(self) -> i64 {
        match self {
            ReplicationMode::Volatile => 0,
            ReplicationMode::Contingency => 1,
            ReplicationMode::Mirrored => 2,
        }
    }
}

/// A commit ticket: resolves when the commit group is durable/acknowledged.
pub(crate) type CommitTicket = Receiver<Result<(), TxnError>>;

fn resolved(result: Result<(), TxnError>) -> CommitTicket {
    let (tx, rx) = bounded(1);
    let _ = tx.send(result);
    rx
}

pub(crate) enum Replicator {
    Volatile,
    Contingency(GroupCommitLog),
    Mirrored(MirrorLink),
}

/// Default commit requests coalesced per group-commit flush.
pub(crate) const GROUP_COMMIT_BATCH: usize = 64;

impl Replicator {
    pub(crate) fn contingency(
        dir: &std::path::Path,
        rec: &Recorder,
        max_batch: usize,
    ) -> std::io::Result<Replicator> {
        let storage = LogStorage::open(LogStorageConfig::new(dir))?;
        Ok(Replicator::Contingency(GroupCommitLog::spawn_observed(
            storage, max_batch, rec,
        )))
    }

    /// Contingency mode over a pre-built storage backend (the chaos harness
    /// injects a fault-wrapping backend here).
    pub(crate) fn contingency_backend(
        backend: Box<dyn StorageBackend>,
        rec: &Recorder,
        max_batch: usize,
    ) -> Replicator {
        Replicator::Contingency(GroupCommitLog::spawn_dyn_observed(backend, max_batch, rec))
    }

    /// A commit ticket timed out. In mirrored mode with the link still
    /// nominally up, declare the mirror dead: close the transport (so the
    /// peer's watchdog fires promptly) and fail every pending commit over
    /// to the fallback — the caller then re-awaits its ticket, which
    /// resolves through the degraded path. Returns whether a failover was
    /// actually triggered.
    pub(crate) fn note_gate_timeout(&self) -> bool {
        match self {
            Replicator::Mirrored(link) if !link.is_down() => {
                link.mark_down();
                true
            }
            _ => false,
        }
    }

    pub(crate) fn mode(&self) -> ReplicationMode {
        match self {
            Replicator::Volatile => ReplicationMode::Volatile,
            Replicator::Contingency(_) => ReplicationMode::Contingency,
            Replicator::Mirrored(link) if link.is_down() => match link.fallback {
                Some(_) => ReplicationMode::Contingency,
                None => ReplicationMode::Volatile,
            },
            Replicator::Mirrored(_) => ReplicationMode::Mirrored,
        }
    }

    /// Checkpoint support: truncate the local disk log below `upto` (only
    /// meaningful when a local log exists). Returns removed segment count.
    pub(crate) fn truncate_before(&self, upto: Csn) -> std::io::Result<usize> {
        match self {
            Replicator::Contingency(group) => group.truncate_before(upto),
            Replicator::Mirrored(link) => match &link.fallback {
                Some(group) => group.truncate_before(upto),
                None => Ok(0),
            },
            Replicator::Volatile => Ok(0),
        }
    }

    /// Append an informational record (checkpoint marker) without gating a
    /// commit on it.
    pub(crate) fn append_info(&self, record: LogRecord) {
        match self {
            Replicator::Contingency(group) => {
                let _ = group.append_async(vec![record]);
            }
            Replicator::Mirrored(link) => {
                if !link.is_down() {
                    let _ = send_with_retry(
                        link.transport.as_ref(),
                        Message::Records(vec![record]).encode(),
                    );
                } else if let Some(group) = &link.fallback {
                    let _ = group.append_async(vec![record]);
                }
            }
            Replicator::Volatile => {}
        }
    }

    /// Ship a commit group; the ticket resolves when the transaction may
    /// report success to the client.
    pub(crate) fn ship(&self, csn: Csn, records: Vec<LogRecord>) -> CommitTicket {
        match self {
            Replicator::Volatile => resolved(Ok(())),
            Replicator::Contingency(group) => {
                // Synchronous local disk: the log writer thread batches
                // concurrent committers into one flush (group commit).
                resolved(
                    group
                        .commit_sync(records)
                        .map_err(|e| TxnError::Replication(e.to_string())),
                )
            }
            Replicator::Mirrored(link) => link.ship(csn, records),
        }
    }
}

struct PendingCommit {
    records: Vec<LogRecord>,
    done: Sender<Result<(), TxnError>>,
    /// When the commit group left the primary — the ack's arrival closes
    /// the `mirror_ship_rtt_ns` measurement.
    sent_at: Instant,
}

/// Resolve every pending commit through the fallback (or as plain volatile
/// success when there is none). Shared between the ack-reader's error path
/// and [`MirrorLink::mark_down`].
fn drain_pending(
    pending: &Mutex<HashMap<u64, PendingCommit>>,
    fallback: Option<&Arc<GroupCommitLog>>,
) {
    let drained: Vec<PendingCommit> = {
        let mut map = pending.lock();
        map.drain().map(|(_, p)| p).collect()
    };
    for p in drained {
        let result = match fallback {
            Some(group) => group
                .commit_sync(p.records)
                .map_err(|e| TxnError::Replication(e.to_string())),
            None => Ok(()),
        };
        let _ = p.done.send(result);
    }
}

/// The primary's side of the log-shipping protocol.
pub(crate) struct MirrorLink {
    transport: Arc<dyn Transport>,
    pending: Arc<Mutex<HashMap<u64, PendingCommit>>>,
    down: Arc<AtomicBool>,
    /// Pre-opened contingency log used if/when the mirror dies.
    fallback: Option<Arc<GroupCommitLog>>,
    acks: Counter,
    /// Degraded-mode value the `replication_mode` gauge takes on failover.
    mode_gauge: Gauge,
    rec: Recorder,
    stop: Arc<AtomicBool>,
    ack_thread: Option<std::thread::JoinHandle<()>>,
}

impl MirrorLink {
    /// Wire up a link over `transport` (the snapshot handshake has already
    /// completed). `loss_policy` decides the degraded mode. Publishes
    /// `mirror_ship_rtt_ns`, `mirror_acks_total` and keeps the
    /// `replication_mode` gauge honest through failover (see `METRICS.md`).
    pub(crate) fn new(
        transport: Arc<dyn Transport>,
        loss_policy: &MirrorLossPolicy,
        rec: &Recorder,
    ) -> std::io::Result<MirrorLink> {
        let fallback = match loss_policy {
            MirrorLossPolicy::Contingency { dir } => {
                let storage = LogStorage::open(LogStorageConfig::new(dir))?;
                Some(Arc::new(GroupCommitLog::spawn_observed(
                    storage,
                    GROUP_COMMIT_BATCH,
                    rec,
                )))
            }
            MirrorLossPolicy::ContinueVolatile => None,
        };
        let degraded_mode = match fallback {
            Some(_) => ReplicationMode::Contingency,
            None => ReplicationMode::Volatile,
        };
        let pending: Arc<Mutex<HashMap<u64, PendingCommit>>> = Arc::new(Mutex::new(HashMap::new()));
        let down = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let acks = rec.counter("mirror_acks_total");
        let rtt = rec.histogram("mirror_ship_rtt_ns");
        let mode_gauge = rec.gauge("replication_mode");

        let thread_transport = Arc::clone(&transport);
        let thread_pending = Arc::clone(&pending);
        let thread_down = Arc::clone(&down);
        let thread_stop = Arc::clone(&stop);
        let thread_fallback = fallback.clone();
        let thread_acks = acks.clone();
        let thread_mode = mode_gauge.clone();
        let thread_rec = rec.clone();
        let ack_thread = std::thread::Builder::new()
            .name("rodain-ack-reader".into())
            .spawn(move || {
                let mut hb_seq = 0u64;
                let mut last_hb = std::time::Instant::now();
                loop {
                    if thread_stop.load(Ordering::Acquire) {
                        return;
                    }
                    match thread_transport.recv_timeout(Duration::from_millis(20)) {
                        Ok(Some(frame)) => {
                            if let Ok(Message::CommitAck { csn, .. }) = Message::decode(frame) {
                                let entry = thread_pending.lock().remove(&csn.0);
                                if let Some(p) = entry {
                                    thread_acks.inc();
                                    rtt.record_elapsed(p.sent_at);
                                    let _ = p.done.send(Ok(()));
                                }
                            }
                            // Heartbeats and anything else just prove
                            // liveness, which recv success already did.
                        }
                        Ok(None) => {}
                        Err(_) => {
                            // Mirror is gone: degrade.
                            thread_down.store(true, Ordering::Release);
                            thread_mode.set(degraded_mode.as_gauge());
                            thread_rec.emit(
                                "mirror-down",
                                format!("link error; degrading to {degraded_mode:?}"),
                            );
                            drain_pending(&thread_pending, thread_fallback.as_ref());
                            return;
                        }
                    }
                    // Keep the mirror's watchdog fed while idle.
                    if last_hb.elapsed() >= Duration::from_millis(50) {
                        last_hb = std::time::Instant::now();
                        hb_seq += 1;
                        let _ = thread_transport.send(Message::Heartbeat { seq: hb_seq }.encode());
                    }
                }
            })
            .expect("spawn ack reader");

        Ok(MirrorLink {
            transport,
            pending,
            down,
            fallback,
            acks,
            mode_gauge,
            rec: rec.clone(),
            stop,
            ack_thread: Some(ack_thread),
        })
    }

    pub(crate) fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// Declare the mirror dead: fail every pending commit over to the
    /// fallback and close the transport so the peer (if it is actually
    /// alive, e.g. it stopped acking because a corrupted frame was
    /// rejected) observes the disconnect and exits. Idempotent.
    pub(crate) fn mark_down(&self) {
        if self.down.swap(true, Ordering::AcqRel) {
            return;
        }
        let degraded = match &self.fallback {
            Some(_) => ReplicationMode::Contingency,
            None => ReplicationMode::Volatile,
        };
        self.mode_gauge.set(degraded.as_gauge());
        self.rec.emit(
            "mirror-down",
            format!("marked down; degrading to {degraded:?}"),
        );
        self.transport.close();
        drain_pending(&self.pending, self.fallback.as_ref());
    }

    /// Commit acknowledgements received.
    pub(crate) fn acks(&self) -> u64 {
        self.acks.get()
    }

    fn ship_degraded(&self, records: Vec<LogRecord>) -> CommitTicket {
        match &self.fallback {
            Some(group) => resolved(
                group
                    .commit_sync(records)
                    .map_err(|e| TxnError::Replication(e.to_string())),
            ),
            None => resolved(Ok(())),
        }
    }

    fn ship(&self, csn: Csn, records: Vec<LogRecord>) -> CommitTicket {
        if self.is_down() {
            return self.ship_degraded(records);
        }
        let (tx, rx) = bounded(1);
        {
            let mut pending = self.pending.lock();
            pending.insert(
                csn.0,
                PendingCommit {
                    records: records.clone(),
                    done: tx,
                    sent_at: Instant::now(),
                },
            );
        }
        if send_with_retry(
            self.transport.as_ref(),
            Message::Records(records.clone()).encode(),
        )
        .is_err()
        {
            // Send failed even after retries: pull this commit back out and
            // resolve it through the degraded path, then fail the link over
            // (mark_down drains whatever else was in flight).
            self.pending.lock().remove(&csn.0);
            self.mark_down();
            return self.ship_degraded(records);
        }
        rx
    }
}

impl Drop for MirrorLink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.transport.close();
        if let Some(handle) = self.ack_thread.take() {
            let _ = handle.join();
        }
    }
}
