//! The transaction execution context handed to user closures.

use crate::error::TxnAbort;
use rodain_occ::{AccessDecision, ConcurrencyController};
use rodain_store::{ObjectId, Store, TxnId, Value, Workspace};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a 2PL lock wait sleeps between retries.
const BLOCK_RETRY: Duration = Duration::from_micros(50);

/// Per-transaction liveness flags shared with the engine.
pub(crate) struct TxnFlags {
    /// Set when the overload manager evicts this transaction.
    pub evicted: AtomicBool,
}

impl TxnFlags {
    pub(crate) fn new() -> Arc<TxnFlags> {
        Arc::new(TxnFlags {
            evicted: AtomicBool::new(false),
        })
    }
}

/// Why the context refused to continue (engine-internal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CtxStop {
    Evicted,
    DeadlineExpired,
    Doomed,
    Shutdown,
}

/// The handle a transaction closure uses to access the database.
///
/// Reads honour the transaction's own deferred writes; writes are buffered
/// privately and installed only if validation accepts the transaction
/// (the paper's deferred-write design — an abort simply discards the
/// workspace). Every accessor may return [`TxnAbort`]; propagate it with
/// `?` so the engine can restart or abort the transaction.
pub struct TxnCtx<'a> {
    pub(crate) id: TxnId,
    pub(crate) ws: &'a mut Workspace,
    pub(crate) store: &'a Store,
    pub(crate) cc: &'a dyn ConcurrencyController,
    pub(crate) flags: &'a TxnFlags,
    pub(crate) shutdown: &'a AtomicBool,
    /// Absolute firm deadline in engine nanos; `None` = soft/non-RT.
    pub(crate) firm_deadline_ns: Option<u64>,
    pub(crate) now_ns: &'a dyn Fn() -> u64,
    pub(crate) stop: Option<CtxStop>,
    pub(crate) blocks: u64,
}

impl<'a> TxnCtx<'a> {
    /// This transaction's id.
    #[must_use]
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Objects read from committed state so far.
    #[must_use]
    pub fn read_count(&self) -> usize {
        self.ws.read_count()
    }

    /// Objects written so far.
    #[must_use]
    pub fn write_count(&self) -> usize {
        self.ws.write_count()
    }

    fn check_alive(&mut self) -> Result<(), TxnAbort> {
        if self.shutdown.load(Ordering::Acquire) {
            self.stop = Some(CtxStop::Shutdown);
            return Err(TxnAbort::SILENT);
        }
        if self.flags.evicted.load(Ordering::Acquire) {
            self.stop = Some(CtxStop::Evicted);
            return Err(TxnAbort::SILENT);
        }
        if let Some(deadline) = self.firm_deadline_ns {
            if (self.now_ns)() > deadline {
                self.stop = Some(CtxStop::DeadlineExpired);
                return Err(TxnAbort::SILENT);
            }
        }
        Ok(())
    }

    fn handle_decision(
        &mut self,
        mut decide: impl FnMut() -> AccessDecision,
    ) -> Result<(), TxnAbort> {
        loop {
            match decide() {
                AccessDecision::Proceed => return Ok(()),
                AccessDecision::Restart(_) => {
                    self.stop = Some(CtxStop::Doomed);
                    return Err(TxnAbort::SILENT);
                }
                AccessDecision::Block { .. } => {
                    // 2PL lock wait: cooperative retry with liveness checks.
                    self.blocks += 1;
                    self.check_alive()?;
                    if self.cc.doomed(self.id).is_some() {
                        self.stop = Some(CtxStop::Doomed);
                        return Err(TxnAbort::SILENT);
                    }
                    std::thread::sleep(BLOCK_RETRY);
                }
            }
        }
    }

    /// Read `oid`. Returns `None` when the object does not exist (or this
    /// transaction deleted it).
    pub fn read(&mut self, oid: ObjectId) -> Result<Option<Value>, TxnAbort> {
        self.check_alive()?;
        if self.ws.has_written(oid) {
            // Read-your-writes needs no controller involvement.
            return Ok(self.ws.read(self.store, oid));
        }
        // One consistent committed lookup for both the hook and the value.
        let committed = self.store.read(oid);
        let observed_wts = committed.as_ref().map(|(_, wts)| *wts).unwrap_or_default();
        let (cc, id) = (self.cc, self.id);
        self.handle_decision(|| cc.on_read(id, oid, observed_wts))?;
        match committed {
            Some((value, wts)) => {
                self.ws.note_read(oid, wts, true);
                Ok(Some(value))
            }
            None => {
                self.ws.note_read(oid, rodain_store::Ts::ZERO, false);
                Ok(None)
            }
        }
    }

    /// Buffer a deferred write of `value` to `oid`. Writing
    /// [`Value::Null`] deletes the object at commit.
    pub fn write(&mut self, oid: ObjectId, value: Value) -> Result<(), TxnAbort> {
        self.check_alive()?;
        let (cc, id, store) = (self.cc, self.id, self.store);
        self.handle_decision(|| cc.on_write(id, oid, store))?;
        self.ws.write(oid, value);
        Ok(())
    }

    /// Delete `oid` at commit.
    pub fn delete(&mut self, oid: ObjectId) -> Result<(), TxnAbort> {
        self.write(oid, Value::Null)
    }

    /// Abort the transaction with a user-visible message. The engine will
    /// not restart it.
    pub fn abort(&mut self, message: impl Into<String>) -> TxnAbort {
        TxnAbort {
            user_message: Some(message.into()),
        }
    }
}
