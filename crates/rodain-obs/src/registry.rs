//! The [`Recorder`] registry and [`MetricsSnapshot`].

use crate::hist::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};
use crate::trace::{EventTrace, TraceEvent};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Inner {
    metrics: Mutex<BTreeMap<String, Metric>>,
    trace: EventTrace,
}

/// The cheap cloneable handle every instrumented component holds.
///
/// Registration (`counter`/`gauge`/`histogram`) is the cold path: it takes
/// a mutex and does a map lookup, returning a handle bound to the named
/// metric. Registering the same name twice returns a handle to the *same*
/// metric, so independent components can safely share names. Hot paths
/// record through the returned handles and never touch the registry.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

/// Events retained by the recorder's built-in tracer.
const TRACE_CAPACITY: usize = 256;

impl Recorder {
    /// A fresh, empty recorder.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                metrics: Mutex::new(BTreeMap::new()),
                trace: EventTrace::new(TRACE_CAPACITY),
            }),
        }
    }

    /// Get or register the counter named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind —
    /// that is a naming bug, not a runtime condition.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.metrics.lock().expect("metrics lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the gauge named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.metrics.lock().expect("metrics lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the histogram named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.metrics.lock().expect("metrics lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The recorder's event tracer (shared by all clones).
    #[must_use]
    pub fn trace(&self) -> &EventTrace {
        &self.inner.trace
    }

    /// Convenience: emit an event on the built-in tracer.
    pub fn emit(&self, kind: &'static str, detail: impl Into<String>) {
        self.inner.trace.emit(kind, detail);
    }

    /// A point-in-time copy of every registered metric plus the retained
    /// event timeline.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.metrics.lock().expect("metrics lock");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => histograms.push((name.clone(), h.snapshot())),
            }
        }
        drop(map);
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            events: self.inner.trace.events(),
        }
    }
}

/// A point-in-time copy of a [`Recorder`]'s contents, ready to render as
/// plain text, JSON or Prometheus exposition (see the `render_*` methods
/// in this crate's `render` module).
#[derive(Clone)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, distribution)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained trace events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// `name` with `key="value"` appended to its label set: inserted before
/// the closing `}` when the name already carries labels, opening a fresh
/// `{...}` otherwise.
fn labeled(name: &str, key: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(prefix) => format!("{prefix},{key}=\"{value}\"}}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

impl MetricsSnapshot {
    /// A copy of this snapshot with `key="value"` added to every metric's
    /// label set — how a multi-engine deployment distinguishes per-shard
    /// series before merging them into one scrape (see `METRICS.md`).
    #[must_use]
    pub fn with_label(&self, key: &str, value: &str) -> MetricsSnapshot {
        let mut out = MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (labeled(n, key, value), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(n, v)| (labeled(n, key, value), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| (labeled(n, key, value), h.clone()))
                .collect(),
            events: self.events.clone(),
        };
        out.counters.sort_by(|a, b| a.0.cmp(&b.0));
        out.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Fold `other` into this snapshot: counters and gauges with the same
    /// name add, histograms with the same name merge their distributions,
    /// names unique to either side are kept, and `other`'s events are
    /// appended. Name ordering stays sorted.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.counters[i].1 += value,
                Err(i) => self.counters.insert(i, (name.clone(), *value)),
            }
        }
        for (name, value) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.gauges[i].1 += value,
                Err(i) => self.gauges.insert(i, (name.clone(), *value)),
            }
        }
        for (name, hist) in &other.histograms {
            match self.histograms.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.histograms[i].1.merge(hist),
                Err(i) => self.histograms.insert(i, (name.clone(), hist.clone())),
            }
        }
        self.events.extend(other.events.iter().cloned());
    }

    /// Value of the counter named `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of the gauge named `name`, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Distribution of the histogram named `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reregistering_returns_same_metric() {
        let rec = Recorder::new();
        let a = rec.counter("x_total");
        let b = rec.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(rec.snapshot().counter("x_total"), Some(2));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let rec = Recorder::new();
        let _ = rec.counter("x");
        let _ = rec.gauge("x");
    }

    #[test]
    fn snapshot_carries_all_kinds_and_events() {
        let rec = Recorder::new();
        rec.counter("c_total").add(7);
        rec.gauge("g").set(-2);
        rec.histogram("h_ns").record(42);
        rec.emit("mode-change", "volatile -> mirrored");
        let snap = rec.snapshot();
        assert_eq!(snap.counter("c_total"), Some(7));
        assert_eq!(snap.gauge("g"), Some(-2));
        assert_eq!(snap.histogram("h_ns").unwrap().count, 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, "mode-change");
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn with_label_rewrites_plain_and_labelled_names() {
        let rec = Recorder::new();
        rec.counter("txn_committed_total").add(3);
        rec.counter("occ_commits_total{protocol=\"occ-dati\"}")
            .add(2);
        rec.histogram("engine_commit_wait_ns").record(100);
        let snap = rec.snapshot().with_label("shard", "2");
        assert_eq!(snap.counter("txn_committed_total{shard=\"2\"}"), Some(3));
        assert_eq!(
            snap.counter("occ_commits_total{protocol=\"occ-dati\",shard=\"2\"}"),
            Some(2)
        );
        assert_eq!(
            snap.histogram("engine_commit_wait_ns{shard=\"2\"}")
                .unwrap()
                .count,
            1
        );
        // Name ordering stays sorted for the renderers.
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn merge_sums_matching_names_and_keeps_unique_ones() {
        let a = Recorder::new();
        a.counter("txn_committed_total").add(5);
        a.gauge("txn_active").set(2);
        a.histogram("wait_ns").record(10);
        a.emit("mode-change", "a");
        let b = Recorder::new();
        b.counter("txn_committed_total").add(7);
        b.counter("only_b_total").add(1);
        b.gauge("txn_active").set(3);
        b.histogram("wait_ns").record(1000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("txn_committed_total"), Some(12));
        assert_eq!(merged.counter("only_b_total"), Some(1));
        assert_eq!(merged.gauge("txn_active"), Some(5));
        let h = merged.histogram("wait_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 1000);
        assert_eq!(merged.events.len(), 1);
        let names: Vec<_> = merged.counters.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn clones_share_the_registry() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.counter("shared_total").inc();
        assert_eq!(rec.snapshot().counter("shared_total"), Some(1));
    }
}
