//! Per-transaction options and engine policies.

use rodain_sched::TxnClass;
use std::time::Duration;

/// Options of one submitted transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnOptions {
    /// Scheduling class.
    pub class: TxnClass,
    /// Relative deadline (ignored for non-real-time transactions).
    pub relative_deadline: Duration,
    /// Estimated execution cost, used by admission/eviction decisions and
    /// by the non-real-time reservation. A rough guess is fine.
    pub est_cost: Duration,
}

impl TxnOptions {
    /// A firm-deadline transaction with `ms` milliseconds to live.
    #[must_use]
    pub fn firm_ms(ms: u64) -> Self {
        TxnOptions {
            class: TxnClass::Firm,
            relative_deadline: Duration::from_millis(ms),
            est_cost: Duration::from_micros(500),
        }
    }

    /// A soft-deadline transaction with `ms` milliseconds to its deadline.
    #[must_use]
    pub fn soft_ms(ms: u64) -> Self {
        TxnOptions {
            class: TxnClass::Soft,
            relative_deadline: Duration::from_millis(ms),
            est_cost: Duration::from_micros(500),
        }
    }

    /// A non-real-time transaction (no deadline; runs in the reserved
    /// fraction or when the system is otherwise idle).
    #[must_use]
    pub fn non_real_time() -> Self {
        TxnOptions {
            class: TxnClass::NonRealTime,
            relative_deadline: Duration::MAX,
            est_cost: Duration::from_micros(500),
        }
    }

    /// Override the estimated cost.
    #[must_use]
    pub fn with_est_cost(mut self, est: Duration) -> Self {
        self.est_cost = est;
        self
    }
}

impl Default for TxnOptions {
    fn default() -> Self {
        TxnOptions::firm_ms(50)
    }
}

/// What the primary does when its mirror dies (paper §2: the surviving
/// node "must store the transaction logs directly to the disk before
/// allowing the transaction to commit").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MirrorLossPolicy {
    /// Switch to Contingency mode: synchronous group-commit disk logging
    /// in the given directory.
    Contingency {
        /// Log directory.
        dir: std::path::PathBuf,
    },
    /// Keep serving without durability (the paper's disk-off experiments;
    /// acceptable when "the probability of simultaneous failure of both
    /// nodes is acceptable").
    ContinueVolatile,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let f = TxnOptions::firm_ms(50);
        assert_eq!(f.class, TxnClass::Firm);
        assert_eq!(f.relative_deadline, Duration::from_millis(50));
        let s = TxnOptions::soft_ms(10);
        assert_eq!(s.class, TxnClass::Soft);
        let n = TxnOptions::non_real_time();
        assert_eq!(n.class, TxnClass::NonRealTime);
        let c = f.with_est_cost(Duration::from_millis(2));
        assert_eq!(c.est_cost, Duration::from_millis(2));
        assert_eq!(TxnOptions::default().class, TxnClass::Firm);
    }
}
