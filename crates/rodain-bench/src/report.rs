//! Table formatting and CSV emission for experiment output.

use std::io::Write;
use std::path::PathBuf;

/// A simple experiment result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Human-readable title (figure/panel identification).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render as aligned markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("### {}\n\n", self.title);
        let fmt_row = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.columns));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }

    /// Write as CSV into the output directory; returns the path.
    pub fn write_csv(&self, file_stem: &str) -> std::io::Result<PathBuf> {
        let dir = out_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{file_stem}.csv"));
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "# {}", self.title)?;
        writeln!(file, "{}", self.columns.join(","))?;
        for row in &self.rows {
            writeln!(file, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Where CSVs land (`RODAIN_OUT` env override, default `experiments-out/`).
#[must_use]
pub fn out_dir() -> PathBuf {
    std::env::var_os("RODAIN_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("experiments-out"))
}

/// Format a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Format nanoseconds as milliseconds with two decimals.
#[must_use]
pub fn ms(ns: f64) -> String {
    format!("{:.2}", ns / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["tps", "miss %"]);
        t.push(vec!["100".into(), "0.0".into()]);
        t.push(vec!["4000".into(), "12.5".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("|  tps | miss % |"));
        assert!(md.contains("| 4000 |   12.5 |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.3");
        assert_eq!(ms(1_500_000.0), "1.50");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1".into()]);
    }
}
