//! Integration tests of the sharding layer: cross-shard atomicity under
//! real concurrency, and torn two-phase commits recovered from the
//! per-shard contingency logs.
//!
//! The money-conservation property is the classic 2PC litmus test: every
//! transfer debits one shard and credits another through the protocol of
//! DESIGN.md §11, so under any interleaving — and any coordinator crash —
//! the global sum must stay exactly the opening total.

use proptest::prelude::*;
use rodain::db::TxnOptions;
use rodain::node::recover_store_from_disk;
use rodain::shard::{CrashPoint, ShardOp, ShardRouter, ShardedRodain};
use rodain::{ObjectId, Value};
use std::sync::Arc;

const ACCOUNTS: u64 = 32;
const OPENING: i64 = 1_000;

fn build_cluster(shards: usize) -> Arc<ShardedRodain> {
    let cluster = ShardedRodain::builder()
        .shards(shards)
        .workers_per_shard(2)
        .build()
        .expect("build cluster");
    for i in 0..ACCOUNTS {
        cluster.load_initial(ObjectId(i), Value::Int(OPENING));
    }
    Arc::new(cluster)
}

fn total_balance(cluster: &ShardedRodain) -> i64 {
    (0..ACCOUNTS)
        .map(|i| match cluster.get(ObjectId(i)) {
            Some(Value::Int(v)) => v,
            other => panic!("account {i} holds {other:?}"),
        })
        .sum()
}

fn assert_no_meta(cluster: &ShardedRodain) {
    for shard in 0..cluster.shard_count() {
        let snapshot = cluster.engine(shard).expect("shard seated").snapshot();
        for (oid, _) in &snapshot.objects {
            assert!(
                ShardRouter::meta_parts(*oid).is_none(),
                "leftover 2PC bookkeeping object {oid:?} on shard {shard}"
            );
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Transfer {
    from: u64,
    to: u64,
    amount: i64,
}

fn transfer_strategy() -> impl Strategy<Value = Transfer> {
    (0..ACCOUNTS, 0..ACCOUNTS, 1..50i64).prop_map(|(from, to, amount)| Transfer {
        from,
        to,
        amount,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent cross-shard transfers from several driver threads
    /// conserve the global sum, leave every per-transfer debit matched by
    /// its credit, and clean up all 2PC bookkeeping.
    #[test]
    fn concurrent_transfers_conserve_the_global_sum(
        shards in 2usize..5,
        transfers in prop::collection::vec(transfer_strategy(), 1..32),
        threads in 2usize..5,
    ) {
        let cluster = build_cluster(shards);
        let chunk = transfers.len().div_ceil(threads);
        let handles: Vec<_> = transfers
            .chunks(chunk)
            .map(|slice| {
                let cluster = Arc::clone(&cluster);
                let slice = slice.to_vec();
                std::thread::spawn(move || {
                    for t in slice {
                        if t.from == t.to {
                            continue;
                        }
                        cluster
                            .execute_cross(
                                TxnOptions::soft_ms(30_000),
                                vec![
                                    ShardOp::Add { oid: ObjectId(t.from), delta: -t.amount },
                                    ShardOp::Add { oid: ObjectId(t.to), delta: t.amount },
                                ],
                            )
                            .expect("transfer commits");
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("driver thread");
        }
        prop_assert_eq!(total_balance(&cluster), ACCOUNTS as i64 * OPENING);
        assert_no_meta(&cluster);
    }
}

/// A coordinator crash between prepare and decision, with every shard
/// running a real contingency log: the intents are durable, the decision
/// is not. A cold restart — stores rebuilt from the per-shard redo logs,
/// facade rebuilt over them — must presume abort on replay and leave the
/// balances exactly as they were.
#[test]
fn torn_2pc_is_presumed_aborted_after_disk_recovery() {
    let root = std::env::temp_dir().join(format!(
        "rodain-shard-torn2pc-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    const SHARDS: usize = 3;

    let (a, b);
    {
        let cluster = ShardedRodain::builder()
            .shards(SHARDS)
            .workers_per_shard(2)
            .contingency_root(&root)
            .build()
            .expect("build durable cluster");
        // Seed through real commits, not `load_initial`: only logged
        // history survives the cold start below.
        for i in 0..ACCOUNTS {
            let oid = ObjectId(i);
            cluster
                .execute_on(oid, TxnOptions::soft_ms(30_000), move |ctx| {
                    ctx.write(oid, Value::Int(OPENING))?;
                    Ok(None)
                })
                .expect("seed account");
        }
        a = ObjectId(0);
        b = (1..1_000u64)
            .map(ObjectId)
            .find(|&oid| cluster.shard_of(oid) != cluster.shard_of(a))
            .expect("some id routes elsewhere");
        // A couple of clean transfers first, so the logs replay real
        // committed history around the torn transaction.
        for _ in 0..3 {
            cluster
                .execute_cross(
                    TxnOptions::soft_ms(30_000),
                    vec![
                        ShardOp::Add { oid: a, delta: -10 },
                        ShardOp::Add { oid: b, delta: 10 },
                    ],
                )
                .expect("clean transfer");
        }
        let err = cluster
            .execute_cross_with_crash(
                TxnOptions::soft_ms(30_000),
                vec![
                    ShardOp::Add {
                        oid: a,
                        delta: -500,
                    },
                    ShardOp::Add { oid: b, delta: 500 },
                ],
                CrashPoint::AfterPrepare,
            )
            .expect_err("coordinator crash surfaces as an error");
        assert!(matches!(err, rodain::db::TxnError::Replication(_)));
    } // drop: every shard flushes and closes its log

    // Cold start: rebuild each shard's store from its own redo log.
    let stores: Vec<Arc<rodain::store::Store>> = (0..SHARDS)
        .map(|shard| {
            recover_store_from_disk(ShardedRodain::shard_dir(&root, shard))
                .expect("replay shard log")
                .store
        })
        .collect();
    let cluster = ShardedRodain::builder()
        .shards(SHARDS)
        .workers_per_shard(2)
        .stores(stores)
        .build()
        .expect("rebuild cluster over recovered stores");

    // The durable intents survived the restart; resolution finds no
    // decision record and presumes abort.
    let report = cluster.resolve_pending().expect("resolve pending 2PC");
    assert_eq!(report.aborted, 2, "both participants' intents aborted");
    assert_eq!(report.rolled_forward, 0);
    assert_eq!(cluster.get(a), Some(Value::Int(OPENING - 30)));
    assert_eq!(cluster.get(b), Some(Value::Int(OPENING + 30)));
    assert_eq!(total_balance(&cluster), ACCOUNTS as i64 * OPENING);
    assert_no_meta(&cluster);

    // The recovered cluster serves new cross-shard traffic.
    cluster
        .execute_cross(
            TxnOptions::soft_ms(30_000),
            vec![
                ShardOp::Add { oid: a, delta: -1 },
                ShardOp::Add { oid: b, delta: 1 },
            ],
        )
        .expect("post-recovery transfer");
    assert_eq!(total_balance(&cluster), ACCOUNTS as i64 * OPENING);

    let _ = std::fs::remove_dir_all(&root);
}
