//! Versioned object representation.

use crate::types::{Ts, Value};
use serde::{Deserialize, Serialize};

/// A data object together with the version metadata the optimistic
/// concurrency controllers need.
///
/// * `wts` — commit timestamp of the transaction that installed the current
///   value (the *write timestamp*).
/// * `rts` — the largest commit timestamp of any committed transaction that
///   read this value (the *read timestamp*). A later writer must serialize
///   after every committed reader, so its validation timestamp must exceed
///   `rts`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionedObject {
    /// Current committed value.
    pub value: Value,
    /// Write timestamp: commit timestamp of the last installed writer.
    pub wts: Ts,
    /// Read timestamp: max commit timestamp over committed readers.
    pub rts: Ts,
}

impl VersionedObject {
    /// A fresh object carrying the initial-load timestamp [`Ts::ZERO`].
    #[must_use]
    pub fn initial(value: Value) -> Self {
        VersionedObject {
            value,
            wts: Ts::ZERO,
            rts: Ts::ZERO,
        }
    }

    /// A version installed by a committed writer at `wts`.
    #[must_use]
    pub fn installed(value: Value, wts: Ts) -> Self {
        VersionedObject {
            value,
            wts,
            rts: wts,
        }
    }

    /// Record that a transaction committing at `ts` read this object.
    pub fn note_committed_read(&mut self, ts: Ts) {
        if ts > self.rts {
            self.rts = ts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_carries_zero_timestamps() {
        let o = VersionedObject::initial(Value::Int(1));
        assert_eq!(o.wts, Ts::ZERO);
        assert_eq!(o.rts, Ts::ZERO);
    }

    #[test]
    fn note_committed_read_is_monotone() {
        let mut o = VersionedObject::initial(Value::Int(1));
        o.note_committed_read(Ts(5));
        assert_eq!(o.rts, Ts(5));
        o.note_committed_read(Ts(3));
        assert_eq!(o.rts, Ts(5), "rts never decreases");
        o.note_committed_read(Ts(9));
        assert_eq!(o.rts, Ts(9));
    }

    #[test]
    fn installed_sets_both_timestamps() {
        let o = VersionedObject::installed(Value::Int(2), Ts(7));
        assert_eq!(o.wts, Ts(7));
        assert_eq!(o.rts, Ts(7));
    }
}
