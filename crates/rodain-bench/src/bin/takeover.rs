//! TAKEOVER experiment: availability after a primary failure — mirror
//! takeover vs reboot-and-replay disk recovery.
//!
//! `cargo run -p rodain-bench --release --bin takeover [-- --quick]`

use rodain_bench::experiments::{takeover, SweepOptions};

fn main() {
    let table = takeover(SweepOptions::from_args());
    table.print();
    println!("csv: {:?}", table.write_csv("takeover").unwrap());
}
