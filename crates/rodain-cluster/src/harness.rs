//! Spawning real `cluster_node` processes from tests, benchmarks and
//! examples: launch the binary, scrape its `LISTEN`/`PEER`/`READY`
//! banner, and tear it down (gracefully or by SIGKILL for chaos).

use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};

/// Command-line shape of one `cluster_node` process.
#[derive(Clone, Debug)]
pub struct NodeProcessConfig {
    /// Total shards in the cluster.
    pub shards: usize,
    /// Shards this node seats.
    pub own: Vec<usize>,
    /// Data directory (per-shard logs live under it).
    pub data: PathBuf,
    /// `--flush-delay-us` (0 = real disk speed).
    pub flush_delay_us: u64,
    /// Group-commit batch limit.
    pub batch: usize,
    /// Executor threads per shard.
    pub workers: usize,
    /// Objects in the number-translation schema.
    pub objects: u64,
}

impl NodeProcessConfig {
    /// A node owning `own` of `shards` shards with data under `data`.
    #[must_use]
    pub fn new(shards: usize, own: Vec<usize>, data: impl Into<PathBuf>) -> NodeProcessConfig {
        NodeProcessConfig {
            shards,
            own,
            data: data.into(),
            flush_delay_us: 0,
            batch: 1,
            workers: 2,
            objects: 1_024,
        }
    }
}

/// Locate the `cluster_node` binary: `RODAIN_CLUSTER_NODE_BIN` wins;
/// otherwise walk up from the current executable (a test binary lives in
/// `target/<profile>/deps/`, the node binary in `target/<profile>/`).
#[must_use]
pub fn node_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("RODAIN_CLUSTER_NODE_BIN") {
        let path = PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?;
    for _ in 0..3 {
        for name in ["cluster_node", "cluster_node.exe"] {
            let candidate = dir.join(name);
            if candidate.is_file() {
                return Some(candidate);
            }
        }
        dir = dir.parent()?;
    }
    None
}

/// A running `cluster_node` child process.
pub struct NodeProcess {
    child: Child,
    stdin: Option<ChildStdin>,
    /// Client-plane address the node bound.
    pub client_addr: String,
    /// Peer-plane address the node bound.
    pub peer_addr: String,
}

impl NodeProcess {
    /// Launch `bin` with `cfg` and wait for its `READY` banner.
    pub fn spawn(bin: &std::path::Path, cfg: &NodeProcessConfig) -> io::Result<NodeProcess> {
        let own = cfg
            .own
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut child = Command::new(bin)
            .arg("--shards")
            .arg(cfg.shards.to_string())
            .arg("--own")
            .arg(own)
            .arg("--data")
            .arg(&cfg.data)
            .arg("--flush-delay-us")
            .arg(cfg.flush_delay_us.to_string())
            .arg("--batch")
            .arg(cfg.batch.to_string())
            .arg("--workers")
            .arg(cfg.workers.to_string())
            .arg("--objects")
            .arg(cfg.objects.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take();
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "no child stdout"))?;
        let mut client_addr = String::new();
        let mut peer_addr = String::new();
        for line in BufReader::new(stdout).lines() {
            let line = line?;
            if let Some(addr) = line.strip_prefix("LISTEN ") {
                client_addr = addr.trim().to_string();
            } else if let Some(addr) = line.strip_prefix("PEER ") {
                peer_addr = addr.trim().to_string();
            } else if line.trim() == "READY" {
                break;
            }
        }
        if client_addr.is_empty() || peer_addr.is_empty() {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "node exited before READY",
            ));
        }
        Ok(NodeProcess {
            child,
            stdin,
            client_addr,
            peer_addr,
        })
    }

    /// Whether the process is still running.
    pub fn alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// Graceful shutdown: ask the node to quit and reap it.
    pub fn quit(mut self) {
        if let Some(mut stdin) = self.stdin.take() {
            let _ = writeln!(stdin, "quit");
        }
        let _ = self.child.wait();
    }

    /// Hard kill (chaos): SIGKILL, no flush, no goodbye.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for NodeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
