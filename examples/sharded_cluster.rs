//! The sharding layer end to end: a 4-shard cluster with a mirror per
//! shard, mixed single-shard and cross-shard traffic, one shard's primary
//! killed and failed over mid-run, and a merged Prometheus scrape.
//!
//! Run with: `cargo run --example sharded_cluster`
//!
//! The point of DESIGN.md §11: availability is the paper's protocol ×N.
//! Killing shard 2's primary promotes *shard 2's* mirror; shards 0, 1 and
//! 3 keep committing throughout, and the global invariant (total balance
//! conserved by transfers) holds across the failover.

use rodain::db::{MirrorLossPolicy, Rodain, TxnOptions};
use rodain::net::InProcTransport;
use rodain::node::{MirrorConfig, MirrorExit, MirrorNode};
use rodain::shard::{ShardOp, ShardedRodain};
use rodain::store::Store;
use rodain::{ObjectId, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 4;
const ACCOUNTS: u64 = 64;
const OPENING_BALANCE: i64 = 100;

struct MirrorHandle {
    store: Arc<Store>,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<(MirrorExit, rodain::node::MirrorReport)>,
}

fn fast_config() -> MirrorConfig {
    MirrorConfig {
        poll_interval: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(10),
        peer_timeout: Duration::from_millis(100),
        suspect_rounds: 3,
        snapshot_dir: None,
        takeover_workers: 2,
    }
}

fn attach_mirror(cluster: &ShardedRodain, shard: usize) -> MirrorHandle {
    let (primary_side, mirror_side) = InProcTransport::pair();
    let store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        Arc::clone(&store),
        Arc::new(mirror_side),
        None,
        fast_config(),
    );
    let shutdown = mirror.shutdown_handle();
    let thread = std::thread::spawn(move || {
        mirror.join().expect("mirror join handshake");
        mirror.run()
    });
    cluster
        .attach_mirror(
            shard,
            Arc::new(primary_side),
            MirrorLossPolicy::ContinueVolatile,
        )
        .expect("attach mirror");
    MirrorHandle {
        store,
        shutdown,
        thread,
    }
}

fn total_balance(cluster: &ShardedRodain) -> i64 {
    (0..ACCOUNTS)
        .map(|i| match cluster.get(ObjectId(i)) {
            Some(Value::Int(v)) => v,
            _ => 0,
        })
        .sum()
}

fn main() {
    // ── Phase 1: build the cluster, one mirror per shard ─────────────────
    println!("phase 1: {SHARDS} shards, one mirror each");
    let cluster = ShardedRodain::builder()
        .shards(SHARDS)
        .workers_per_shard(2)
        .build()
        .expect("build cluster");
    for i in 0..ACCOUNTS {
        cluster.load_initial(ObjectId(i), Value::Int(OPENING_BALANCE));
    }
    let mut mirrors: Vec<Option<MirrorHandle>> = (0..SHARDS)
        .map(|shard| Some(attach_mirror(&cluster, shard)))
        .collect();
    let opening_total = total_balance(&cluster);
    println!("  opening total balance: {opening_total}");

    // ── Phase 2: mixed traffic ────────────────────────────────────────────
    // Single-shard updates take the fast path; transfers between accounts
    // on different shards go through the cross-shard two-phase commit.
    println!("phase 2: mixed single-shard and cross-shard traffic");
    let mut singles = 0u64;
    let mut transfers = 0u64;
    for k in 0..200u64 {
        let from = ObjectId(k % ACCOUNTS);
        let to = ObjectId((k * 7 + 3) % ACCOUNTS);
        if k % 3 == 0 && cluster.shard_of(from) != cluster.shard_of(to) {
            cluster
                .execute_cross(
                    TxnOptions::soft_ms(5_000),
                    vec![
                        ShardOp::Add {
                            oid: from,
                            delta: -5,
                        },
                        ShardOp::Add { oid: to, delta: 5 },
                    ],
                )
                .expect("cross-shard transfer");
            transfers += 1;
        } else {
            cluster
                .execute_on(from, TxnOptions::soft_ms(5_000), move |ctx| {
                    let v = ctx.read(from)?.unwrap().as_int().unwrap();
                    ctx.write(from, Value::Int(v))?; // touch: version bump only
                    Ok(None)
                })
                .expect("single-shard update");
            singles += 1;
        }
    }
    println!("  {singles} single-shard commits, {transfers} cross-shard transfers");
    assert_eq!(total_balance(&cluster), opening_total);

    // ── Phase 3: kill shard 2's primary and fail over ─────────────────────
    println!("phase 3: kill shard 2's primary");
    let victim = 2;
    let taken = cluster.take_shard(victim).expect("victim engine");
    drop(taken); // closes the mirror link: shard 2's mirror takes over
    let handle = mirrors[victim].take().expect("victim mirror");
    let (exit, _report) = handle.thread.join().expect("mirror thread");
    assert_eq!(exit, MirrorExit::PrimaryFailed);
    println!("  shard {victim} mirror observed the failure and holds the copy");

    // Survivors never notice: traffic on the other shards keeps acking
    // while shard 2 is detached.
    let mut survivor_commits = 0u64;
    for i in 0..ACCOUNTS {
        let oid = ObjectId(i);
        if cluster.shard_of(oid) == victim {
            continue;
        }
        cluster
            .execute_on(oid, TxnOptions::soft_ms(5_000), move |ctx| {
                let v = ctx.read(oid)?.unwrap().as_int().unwrap();
                ctx.write(oid, Value::Int(v))?;
                Ok(None)
            })
            .expect("survivor commit during the outage");
        survivor_commits += 1;
    }
    println!("  {survivor_commits} commits served by the survivors during the outage");

    // Promote: seat a successor over the mirror's copy of shard 2.
    let successor = Rodain::builder()
        .workers(2)
        .store(handle.store)
        .build()
        .expect("promote mirror store");
    cluster.install_shard(victim, Arc::new(successor));
    println!("  shard {victim} serving again from the mirror copy");

    // ── Phase 4: post-failover traffic, invariant intact ─────────────────
    println!("phase 4: cross-shard transfers across the recovered cluster");
    for k in 0..50u64 {
        let from = ObjectId((k * 5) % ACCOUNTS);
        let to = ObjectId((k * 11 + 1) % ACCOUNTS);
        if cluster.shard_of(from) == cluster.shard_of(to) {
            continue;
        }
        cluster
            .execute_cross(
                TxnOptions::soft_ms(5_000),
                vec![
                    ShardOp::Add {
                        oid: from,
                        delta: -1,
                    },
                    ShardOp::Add { oid: to, delta: 1 },
                ],
            )
            .expect("post-failover transfer");
    }
    assert_eq!(total_balance(&cluster), opening_total);
    println!("  total balance conserved: {opening_total}");

    // ── Phase 5: one merged scrape for the whole cluster ─────────────────
    println!("phase 5: merged Prometheus scrape (per-shard labels)");
    let prom = cluster.metrics().render_prometheus();
    for line in prom
        .lines()
        .filter(|l| l.starts_with("txn_committed_total"))
    {
        println!("  {line}");
    }

    for handle in mirrors.into_iter().flatten() {
        handle.shutdown.store(true, Ordering::Release);
        let _ = handle.thread.join();
    }
    println!("done.");
}
