//! Checkpoint snapshots on disk (extension; see DESIGN.md §3.4).
//!
//! A checkpoint bounds recovery time and lets the disk log be truncated:
//! the snapshot file captures the full database as of a commit sequence
//! number; every log segment whose commits all lie below that CSN becomes
//! garbage. Recovery then restores the newest intact snapshot and replays
//! only the log tail (replaying retained pre-checkpoint segments is
//! harmless — installs are idempotent at equal timestamps).
//!
//! File format (`*.rodainsnap`):
//!
//! ```text
//! magic "RODAINSN" · version u32 · csn u64 · object count u64
//! repeat count times: oid u64 · wts u64 · rts u64 · value (log codec)
//! crc32 u32 over everything before it
//! ```

use crate::codec::{decode_value, encode_value, CodecError};
use crate::crc32::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Snapshot, Ts, VersionedObject};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const SNAPSHOT_MAGIC: &[u8; 8] = b"RODAINSN";
const SNAPSHOT_VERSION: u32 = 1;

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {what}"))
}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Serialize a snapshot (with the first CSN *not* covered) to bytes.
#[must_use]
pub fn encode_snapshot(snapshot: &Snapshot, upto: Csn) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + snapshot.len() * 48);
    buf.put_slice(SNAPSHOT_MAGIC);
    buf.put_u32_le(SNAPSHOT_VERSION);
    buf.put_u64_le(upto.0);
    buf.put_u64_le(snapshot.len() as u64);
    for (oid, obj) in &snapshot.objects {
        buf.put_u64_le(oid.0);
        buf.put_u64_le(obj.wts.0);
        buf.put_u64_le(obj.rts.0);
        encode_value(&mut buf, &obj.value);
    }
    let checksum = crc32(&buf);
    buf.put_u32_le(checksum);
    buf.freeze()
}

/// Parse bytes produced by [`encode_snapshot`].
pub fn decode_snapshot(data: &[u8]) -> io::Result<(Snapshot, Csn)> {
    if data.len() < 8 + 4 + 8 + 8 + 4 {
        return Err(corrupt("too short"));
    }
    let (body, tail) = data.split_at(data.len() - 4);
    let expected = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
    if crc32(body) != expected {
        return Err(corrupt("checksum mismatch"));
    }
    let mut buf = Bytes::copy_from_slice(body);
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    if buf.get_u32_le() != SNAPSHOT_VERSION {
        return Err(corrupt("unsupported version"));
    }
    let upto = Csn(buf.get_u64_le());
    let count = buf.get_u64_le();
    let mut objects = Vec::with_capacity(count.min(1_000_000) as usize);
    for _ in 0..count {
        if buf.remaining() < 24 {
            return Err(corrupt("truncated object header"));
        }
        let oid = ObjectId(buf.get_u64_le());
        let wts = Ts(buf.get_u64_le());
        let rts = Ts(buf.get_u64_le());
        let value = decode_value(&mut buf)?;
        objects.push((oid, VersionedObject { value, wts, rts }));
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    Ok((Snapshot { objects }, upto))
}

/// Crash-injection points inside the snapshot install sequence, used by
/// the chaos layer to verify that a crash *during* checkpointing always
/// leaves the previous snapshot recoverable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapshotCrashPoint {
    /// No injected crash: run the full install sequence.
    #[default]
    None,
    /// Die after writing (but not syncing) the temp file: simulates losing
    /// the snapshot body — a stale `.tmp` litters the directory but no
    /// `*.rodainsnap` name ever points at partial data.
    AfterTempWrite,
    /// Die after syncing the temp file but before the rename: the complete
    /// snapshot exists only under its invisible temp name.
    AfterTempSync,
    /// Die after the rename but before the directory fsync: on a real disk
    /// the new name may or may not survive; either way each visible name
    /// is intact.
    AfterRename,
}

/// Write a checkpoint snapshot atomically into `dir`; returns its path
/// (`checkpoint-<csn>.rodainsnap`).
///
/// Install sequence: write temp → fsync file → rename → fsync directory.
/// The directory fsync is what makes the *rename* durable — without it a
/// crash after "successful" checkpointing can roll the directory back to a
/// state where the new name never existed, and a caller that already
/// truncated the log on the strength of that checkpoint has lost data.
/// Stale temp files from previous crashed installs are swept first.
pub fn write_snapshot_file(dir: &Path, snapshot: &Snapshot, upto: Csn) -> io::Result<PathBuf> {
    write_snapshot_file_with_crash(dir, snapshot, upto, SnapshotCrashPoint::None)
}

/// [`write_snapshot_file`] with an injected crash point (chaos testing).
/// When the crash point fires the function aborts mid-sequence, leaving
/// whatever artifacts a real crash would, and returns an
/// [`io::ErrorKind::Interrupted`] error.
pub fn write_snapshot_file_with_crash(
    dir: &Path,
    snapshot: &Snapshot,
    upto: Csn,
    crash: SnapshotCrashPoint,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    sweep_stale_tmp(dir);
    let path = dir.join(format!("checkpoint-{:020}.rodainsnap", upto.0));
    let tmp = dir.join(format!(".checkpoint-{:020}.tmp", upto.0));
    let bytes = encode_snapshot(snapshot, upto);
    let simulated = |at: &str| {
        Err(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("simulated crash {at}"),
        ))
    };
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        if crash == SnapshotCrashPoint::AfterTempWrite {
            return simulated("after temp write");
        }
        file.sync_data()?;
    }
    if crash == SnapshotCrashPoint::AfterTempSync {
        return simulated("after temp sync");
    }
    fs::rename(&tmp, &path)?;
    if crash == SnapshotCrashPoint::AfterRename {
        return simulated("after rename");
    }
    sync_dir(dir)?;
    Ok(path)
}

/// Remove temp files abandoned by crashed installs. Best-effort: a file we
/// cannot delete is left for the next sweep.
fn sweep_stale_tmp(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with(".checkpoint-") && n.ends_with(".tmp"));
        if is_tmp {
            let _ = fs::remove_file(&path);
        }
    }
}

/// Make a rename in `dir` durable by fsyncing the directory itself.
fn sync_dir(dir: &Path) -> io::Result<()> {
    // Opening a directory read-only and calling fsync on it is the POSIX
    // idiom; on platforms where directories cannot be fsynced (Windows),
    // the open or sync fails and we treat the rename as durable enough.
    match fs::File::open(dir) {
        Ok(handle) => match handle.sync_all() {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => Ok(()),
            Err(e) => Err(e),
        },
        Err(_) => Ok(()),
    }
}

/// Locate and read the newest intact checkpoint in `dir`. Corrupt files
/// are skipped (older intact checkpoints still recover). `Ok(None)` when
/// no usable checkpoint exists.
pub fn read_latest_snapshot(dir: &Path) -> io::Result<Option<(Snapshot, Csn, PathBuf)>> {
    if !dir.exists() {
        return Ok(None);
    }
    let mut candidates: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("checkpoint-") && name.ends_with(".rodainsnap")).then_some(path)
        })
        .collect();
    candidates.sort();
    for path in candidates.into_iter().rev() {
        let mut data = Vec::new();
        if fs::File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut data))
            .is_err()
        {
            continue;
        }
        match decode_snapshot(&data) {
            Ok((snapshot, upto)) => return Ok(Some((snapshot, upto, path))),
            Err(_) => continue, // torn checkpoint: fall back to an older one
        }
    }
    Ok(None)
}

/// Delete checkpoints older than the newest `keep` (garbage collection).
pub fn prune_snapshots(dir: &Path, keep: usize) -> io::Result<usize> {
    if !dir.exists() {
        return Ok(0);
    }
    let mut candidates: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("checkpoint-") && name.ends_with(".rodainsnap")).then_some(path)
        })
        .collect();
    candidates.sort();
    let n = candidates.len().saturating_sub(keep.max(1));
    for path in &candidates[..n] {
        fs::remove_file(path)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_store::{Store, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rodain-checkpoint-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot(n: u64) -> Snapshot {
        let store = Store::new();
        for i in 0..n {
            store.install(
                ObjectId(i),
                Value::Record(vec![Value::Text(format!("v{i}")), Value::Int(i as i64)]),
                Ts(i * 100),
            );
        }
        store.snapshot()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample_snapshot(50);
        let bytes = encode_snapshot(&snap, Csn(42));
        let (decoded, upto) = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(upto, Csn(42));
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let bytes = encode_snapshot(&Snapshot::default(), Csn(1));
        let (decoded, upto) = decode_snapshot(&bytes).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(upto, Csn(1));
    }

    #[test]
    fn corruption_is_detected() {
        let snap = sample_snapshot(10);
        let bytes = encode_snapshot(&snap, Csn(7)).to_vec();
        for idx in [0, 12, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[idx] ^= 0x40;
            assert!(decode_snapshot(&corrupted).is_err(), "flip at {idx}");
        }
        // Truncation too.
        assert!(decode_snapshot(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn file_roundtrip_and_latest_selection() {
        let dir = tmpdir("latest");
        write_snapshot_file(&dir, &sample_snapshot(5), Csn(10)).unwrap();
        write_snapshot_file(&dir, &sample_snapshot(8), Csn(20)).unwrap();
        let (snapshot, upto, path) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(upto, Csn(20));
        assert_eq!(snapshot.len(), 8);
        assert!(path.to_str().unwrap().contains("00000000000000000020"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoint_falls_back_to_older() {
        let dir = tmpdir("fallback");
        write_snapshot_file(&dir, &sample_snapshot(5), Csn(10)).unwrap();
        let newest = write_snapshot_file(&dir, &sample_snapshot(8), Csn(20)).unwrap();
        // Tear the newest one.
        let data = fs::read(&newest).unwrap();
        fs::write(&newest, &data[..data.len() - 3]).unwrap();
        let (snapshot, upto, _) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(upto, Csn(10));
        assert_eq!(snapshot.len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_rename_never_yields_half_visible_snapshot() {
        let dir = tmpdir("crashpoints");
        write_snapshot_file(&dir, &sample_snapshot(5), Csn(10)).unwrap();
        for crash in [
            SnapshotCrashPoint::AfterTempWrite,
            SnapshotCrashPoint::AfterTempSync,
        ] {
            let err = write_snapshot_file_with_crash(&dir, &sample_snapshot(9), Csn(20), crash)
                .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
            // The crashed install left a temp file but no visible name.
            assert!(dir.join(".checkpoint-00000000000000000020.tmp").exists());
            assert!(!dir
                .join("checkpoint-00000000000000000020.rodainsnap")
                .exists());
            // Recovery still sees the previous snapshot, fully intact.
            let (snapshot, upto, _) = read_latest_snapshot(&dir).unwrap().unwrap();
            assert_eq!(upto, Csn(10), "crash {crash:?} exposed a partial snapshot");
            assert_eq!(snapshot.len(), 5);
        }
        // The next successful install sweeps the stale temp file.
        write_snapshot_file(&dir, &sample_snapshot(9), Csn(30)).unwrap();
        assert!(!dir.join(".checkpoint-00000000000000000020.tmp").exists());
        let (_, upto, _) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(upto, Csn(30));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_after_rename_is_already_consistent() {
        // After the rename the new snapshot is complete under its final
        // name; the missing directory fsync only risks the *name* (not
        // partial data) on a real power loss.
        let dir = tmpdir("crashrename");
        let err = write_snapshot_file_with_crash(
            &dir,
            &sample_snapshot(4),
            Csn(7),
            SnapshotCrashPoint::AfterRename,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let (snapshot, upto, _) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(upto, Csn(7));
        assert_eq!(snapshot.len(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_none() {
        let dir = tmpdir("missing"); // never created
        assert!(read_latest_snapshot(&dir).unwrap().is_none());
        assert_eq!(prune_snapshots(&dir, 1).unwrap(), 0);
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmpdir("prune");
        for csn in [1u64, 2, 3, 4] {
            write_snapshot_file(&dir, &sample_snapshot(2), Csn(csn)).unwrap();
        }
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 2);
        let (_, upto, _) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(upto, Csn(4));
        let _ = fs::remove_dir_all(&dir);
    }
}
