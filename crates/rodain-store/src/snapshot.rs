//! Whole-database snapshots.

use crate::object::VersionedObject;
use crate::types::ObjectId;
use serde::{Deserialize, Serialize};

/// A consistent copy of the full database contents.
///
/// Snapshots are used for mirror state transfer (a recovered node rejoining
/// as Mirror receives a snapshot, then catches up from the log stream) and
/// for checkpointing. Objects are sorted by id so snapshots can be chunked
/// deterministically for transfer.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Snapshot {
    /// All objects, sorted by [`ObjectId`].
    pub objects: Vec<(ObjectId, VersionedObject)>,
}

impl Snapshot {
    /// Number of objects in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Split the snapshot into transfer chunks of at most `chunk_objects`
    /// objects each. An empty snapshot yields no chunks.
    #[must_use]
    pub fn chunks(&self, chunk_objects: usize) -> Vec<Snapshot> {
        assert!(chunk_objects > 0, "chunk size must be positive");
        self.objects
            .chunks(chunk_objects)
            .map(|c| Snapshot {
                objects: c.to_vec(),
            })
            .collect()
    }

    /// Merge transfer chunks back into a single snapshot.
    ///
    /// Chunks may arrive in any order; the result is re-sorted by object id.
    #[must_use]
    pub fn from_chunks(chunks: Vec<Snapshot>) -> Snapshot {
        let mut objects: Vec<_> = chunks.into_iter().flat_map(|c| c.objects).collect();
        objects.sort_unstable_by_key(|(oid, _)| *oid);
        Snapshot { objects }
    }

    /// The largest write timestamp contained in the snapshot.
    #[must_use]
    pub fn max_wts(&self) -> crate::types::Ts {
        self.objects
            .iter()
            .map(|(_, o)| o.wts)
            .max()
            .unwrap_or(crate::types::Ts::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Ts, Value};

    fn sample(n: u64) -> Snapshot {
        Snapshot {
            objects: (0..n)
                .map(|i| {
                    (
                        ObjectId(i),
                        VersionedObject::installed(Value::Int(i as i64), Ts(i)),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn chunk_roundtrip() {
        let snap = sample(10);
        let mut chunks = snap.chunks(3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[3].len(), 1);
        // Deliver out of order.
        chunks.reverse();
        let merged = Snapshot::from_chunks(chunks);
        assert_eq!(merged, snap);
    }

    #[test]
    fn empty_snapshot() {
        let snap = sample(0);
        assert!(snap.is_empty());
        assert!(snap.chunks(5).is_empty());
        assert_eq!(snap.max_wts(), Ts::ZERO);
    }

    #[test]
    fn max_wts() {
        assert_eq!(sample(5).max_wts(), Ts(4));
    }
}
