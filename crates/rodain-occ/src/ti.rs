//! OCC-TI — timestamp intervals with read-phase adjustment (Lee & Son).

use crate::active::{OccCore, OccPolicy};
use crate::traits::{
    AccessDecision, CcPriority, CcStats, ConcurrencyController, Protocol, RestartReason,
    ValidationOutcome,
};
use rodain_store::{ObjectId, Store, Ts, TxnId, Workspace};

/// OCC with Timestamp Intervals.
///
/// Differs from [`crate::OccDati`] in *when* constraints against committed
/// state are applied: OCC-TI prunes the transaction's interval at **every
/// data access** (read and write), so a doomed transaction is detected as
/// early as possible — at the price of a version-metadata lookup and
/// interval update on every operation. OCC-DATI defers all of this to the
/// single atomic validation step.
///
/// With single-version committed state the two protocols accept the same
/// histories; the difference shows up as per-access overhead (modelled by
/// the simulator's per-operation CPU costs) and earlier restart detection.
/// See DESIGN.md §6.1 for the fidelity discussion.
pub struct OccTi {
    core: OccCore,
}

impl OccTi {
    /// Create a controller.
    #[must_use]
    pub fn new() -> Self {
        OccTi {
            core: OccCore::new(OccPolicy {
                protocol: Protocol::OccTi,
                broadcast: false,
                eager: true,
                allow_backward: true,
            }),
        }
    }
}

impl Default for OccTi {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrencyController for OccTi {
    fn protocol(&self) -> Protocol {
        self.core.protocol()
    }

    fn begin(&self, txn: TxnId, priority: CcPriority) {
        self.core.begin(txn, priority);
    }

    fn on_read(&self, txn: TxnId, oid: ObjectId, observed_wts: Ts) -> AccessDecision {
        self.core.on_read(txn, oid, observed_wts)
    }

    fn on_write(&self, txn: TxnId, oid: ObjectId, store: &Store) -> AccessDecision {
        self.core.on_write(txn, oid, store)
    }

    fn doomed(&self, txn: TxnId) -> Option<RestartReason> {
        self.core.doomed(txn)
    }

    fn validate(&self, ws: &Workspace, store: &Store) -> ValidationOutcome {
        self.core.validate(ws, store)
    }

    fn remove(&self, txn: TxnId) {
        self.core.remove(txn);
    }

    fn stats(&self) -> CcStats {
        self.core.stats()
    }

    fn active_count(&self) -> usize {
        self.core.active_count()
    }
}
