//! Per-transaction options and engine policies.
//!
//! This module is the one place durability choices live (DESIGN.md §14):
//! the per-transaction [`DurabilityTier`] picked through the builder-style
//! [`TxnOptions`] API, and the engine-level [`MirrorLossPolicy`] that says
//! what the *strongest available* gate becomes after a mirror failure.
//! Earlier revisions scattered these across per-engine knobs; anything a
//! transaction can choose for itself is now a `TxnOptions` field.

use rodain_sched::TxnClass;
use std::time::Duration;

/// How much durability a transaction's commit waits for before its
/// [`crate::CommitFuture`] resolves (paper §2: the mirror acknowledgement,
/// one message round-trip, replaces the disk fsync on the commit path).
///
/// The tier is a *request*; the engine satisfies it with the strongest
/// gate its current replication mode offers and reports what was actually
/// achieved in [`crate::TxnReceipt::acked_tier`]. Tiers are ordered
/// `Volatile < MirrorAcked < DiskFsynced`, so `acked_tier >= requested`
/// means the request was met exactly or exceeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DurabilityTier {
    /// Resolve at validation: the commit is installed in main memory and
    /// its log records are queued, but nothing is awaited. The paper's
    /// "no logs" latency at per-transaction granularity.
    Volatile,
    /// Resolve when the commit group is acknowledged by the mirror (or,
    /// when the engine runs without a mirror, flushed by the local
    /// contingency log — a strictly stronger gate). The default.
    MirrorAcked,
    /// Resolve when the commit group is fsynced to a local disk log. In
    /// mirrored mode this is the mirror acknowledgement *plus* a
    /// synchronous flush of the fallback log when one is configured.
    DiskFsynced,
}

impl DurabilityTier {
    /// Every tier, in increasing durability order.
    pub const ALL: [DurabilityTier; 3] = [
        DurabilityTier::Volatile,
        DurabilityTier::MirrorAcked,
        DurabilityTier::DiskFsynced,
    ];

    /// Metric-label / display name (`volatile`, `mirror_acked`,
    /// `disk_fsynced`) — baked into the per-tier histogram names in
    /// `METRICS.md`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DurabilityTier::Volatile => "volatile",
            DurabilityTier::MirrorAcked => "mirror_acked",
            DurabilityTier::DiskFsynced => "disk_fsynced",
        }
    }

    /// Stable wire encoding (the server protocol's tier byte).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            DurabilityTier::Volatile => 0,
            DurabilityTier::MirrorAcked => 1,
            DurabilityTier::DiskFsynced => 2,
        }
    }

    /// Inverse of [`DurabilityTier::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<DurabilityTier> {
        match code {
            0 => Some(DurabilityTier::Volatile),
            1 => Some(DurabilityTier::MirrorAcked),
            2 => Some(DurabilityTier::DiskFsynced),
            _ => None,
        }
    }
}

impl Default for DurabilityTier {
    fn default() -> Self {
        DurabilityTier::MirrorAcked
    }
}

impl std::fmt::Display for DurabilityTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Options of one submitted transaction. Build with the constructors and
/// `with_*` methods:
///
/// ```
/// use rodain_db::{DurabilityTier, TxnOptions};
/// use std::time::Duration;
///
/// let opts = TxnOptions::firm_ms(50)
///     .with_est_cost(Duration::from_micros(100))
///     .with_durability(DurabilityTier::Volatile);
/// assert_eq!(opts.durability, DurabilityTier::Volatile);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnOptions {
    /// Scheduling class.
    pub class: TxnClass,
    /// Relative deadline (ignored for non-real-time transactions).
    pub relative_deadline: Duration,
    /// Estimated execution cost, used by admission/eviction decisions and
    /// by the non-real-time reservation. A rough guess is fine.
    pub est_cost: Duration,
    /// Durability gate the commit future waits for (see
    /// [`DurabilityTier`]; default [`DurabilityTier::MirrorAcked`]).
    pub durability: DurabilityTier,
}

impl TxnOptions {
    /// A firm-deadline transaction with `deadline` to live.
    #[must_use]
    pub fn firm(deadline: Duration) -> Self {
        TxnOptions {
            class: TxnClass::Firm,
            relative_deadline: deadline,
            est_cost: Duration::from_micros(500),
            durability: DurabilityTier::default(),
        }
    }

    /// A soft-deadline transaction with `deadline` to its deadline.
    #[must_use]
    pub fn soft(deadline: Duration) -> Self {
        TxnOptions {
            class: TxnClass::Soft,
            relative_deadline: deadline,
            ..TxnOptions::firm(deadline)
        }
    }

    /// A firm-deadline transaction with `ms` milliseconds to live.
    #[must_use]
    pub fn firm_ms(ms: u64) -> Self {
        TxnOptions::firm(Duration::from_millis(ms))
    }

    /// A soft-deadline transaction with `ms` milliseconds to its deadline.
    #[must_use]
    pub fn soft_ms(ms: u64) -> Self {
        TxnOptions::soft(Duration::from_millis(ms))
    }

    /// A non-real-time transaction (no deadline; runs in the reserved
    /// fraction or when the system is otherwise idle).
    #[must_use]
    pub fn non_real_time() -> Self {
        TxnOptions {
            class: TxnClass::NonRealTime,
            relative_deadline: Duration::MAX,
            ..TxnOptions::firm(Duration::MAX)
        }
    }

    /// Override the scheduling class, keeping the other fields.
    #[must_use]
    pub fn with_class(mut self, class: TxnClass) -> Self {
        self.class = class;
        self
    }

    /// Override the relative deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.relative_deadline = deadline;
        self
    }

    /// Override the estimated cost.
    #[must_use]
    pub fn with_est_cost(mut self, est: Duration) -> Self {
        self.est_cost = est;
        self
    }

    /// Override the durability tier the commit future waits for.
    #[must_use]
    pub fn with_durability(mut self, tier: DurabilityTier) -> Self {
        self.durability = tier;
        self
    }
}

impl Default for TxnOptions {
    fn default() -> Self {
        TxnOptions::firm_ms(50)
    }
}

/// What the primary does when its mirror dies (paper §2: the surviving
/// node "must store the transaction logs directly to the disk before
/// allowing the transaction to commit").
///
/// This is the engine-level half of the durability options: it bounds the
/// strongest tier the engine can deliver once degraded. With
/// [`MirrorLossPolicy::Contingency`] a degraded commit resolves at
/// [`DurabilityTier::DiskFsynced`]; with
/// [`MirrorLossPolicy::ContinueVolatile`] it resolves at
/// [`DurabilityTier::Volatile`] — and the receipt says so.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MirrorLossPolicy {
    /// Switch to Contingency mode: synchronous group-commit disk logging
    /// in the given directory. While the mirror is still live, the same
    /// log also receives [`DurabilityTier::DiskFsynced`] pre-appends, so
    /// the checkpointer can truncate it (fenced on the mirror's ack
    /// watermark — DESIGN.md §15).
    Contingency {
        /// Log directory.
        dir: std::path::PathBuf,
        /// Log segment size override in bytes; `None` keeps the storage
        /// default (64 MiB). Chaos tests shrink this so checkpoint
        /// truncation has closed segments to work on.
        segment_bytes: Option<u64>,
    },
    /// Keep serving without durability (the paper's disk-off experiments;
    /// acceptable when "the probability of simultaneous failure of both
    /// nodes is acceptable").
    ContinueVolatile,
}

/// When and how aggressively the background checkpointer runs (configured
/// through [`crate::RodainBuilder::checkpoints`]; the operator guide is
/// OPERATIONS.md, the design chapter DESIGN.md §15).
///
/// A checkpoint fires when **either** trigger is due: `interval` of wall
/// time has passed since the last checkpoint, or the local disk log has
/// grown past `log_bytes_trigger` since then. After the snapshot installs,
/// log segments wholly behind the checkpoint boundary (fenced on the
/// mirror ack watermark in mirrored mode) are deleted, except for the
/// newest `retain_segments` of them kept as a safety margin.
///
/// ```
/// use rodain_db::CheckpointPolicy;
/// use std::time::Duration;
///
/// let policy = CheckpointPolicy::default()
///     .with_interval(Duration::from_secs(30))
///     .with_log_bytes_trigger(64 << 20);
/// assert_eq!(policy.retain_snapshots, 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Wall-time trigger: checkpoint when this much time has passed since
    /// the previous one. [`Duration::ZERO`] disables the timer (the size
    /// trigger, or operator-forced checkpoints, still work).
    pub interval: Duration,
    /// Size trigger: checkpoint when the local disk log occupies at least
    /// this many bytes (and has grown since the last checkpoint). `0`
    /// disables the size trigger. Ignored in modes with no local log.
    pub log_bytes_trigger: u64,
    /// Keep this many of the newest GC-eligible log segments on disk
    /// instead of deleting them — a margin for operators who want redo
    /// history to survive a bad snapshot beyond the retained snapshots.
    pub retain_segments: usize,
    /// Snapshot files kept in the snapshot directory (older ones are
    /// pruned after each successful checkpoint; minimum 1).
    pub retain_snapshots: usize,
}

impl Default for CheckpointPolicy {
    /// Every 60 s or every 256 MiB of log, whichever comes first; no
    /// retained-segment margin; the two newest snapshots kept.
    fn default() -> Self {
        CheckpointPolicy {
            interval: Duration::from_secs(60),
            log_bytes_trigger: 256 << 20,
            retain_segments: 0,
            retain_snapshots: 2,
        }
    }
}

impl CheckpointPolicy {
    /// Override the wall-time trigger ([`Duration::ZERO`] disables it).
    #[must_use]
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Override the log-size trigger (`0` disables it).
    #[must_use]
    pub fn with_log_bytes_trigger(mut self, bytes: u64) -> Self {
        self.log_bytes_trigger = bytes;
        self
    }

    /// Override the retained-segment safety margin.
    #[must_use]
    pub fn with_retain_segments(mut self, segments: usize) -> Self {
        self.retain_segments = segments;
        self
    }

    /// Override how many snapshot files are kept (minimum 1 applies).
    #[must_use]
    pub fn with_retain_snapshots(mut self, snapshots: usize) -> Self {
        self.retain_snapshots = snapshots;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let f = TxnOptions::firm_ms(50);
        assert_eq!(f.class, TxnClass::Firm);
        assert_eq!(f.relative_deadline, Duration::from_millis(50));
        assert_eq!(f.durability, DurabilityTier::MirrorAcked);
        let s = TxnOptions::soft_ms(10);
        assert_eq!(s.class, TxnClass::Soft);
        let n = TxnOptions::non_real_time();
        assert_eq!(n.class, TxnClass::NonRealTime);
        let c = f.with_est_cost(Duration::from_millis(2));
        assert_eq!(c.est_cost, Duration::from_millis(2));
        assert_eq!(TxnOptions::default().class, TxnClass::Firm);
    }

    #[test]
    fn builder_methods_compose() {
        let opts = TxnOptions::soft_ms(100)
            .with_class(TxnClass::Firm)
            .with_deadline(Duration::from_millis(25))
            .with_durability(DurabilityTier::DiskFsynced);
        assert_eq!(opts.class, TxnClass::Firm);
        assert_eq!(opts.relative_deadline, Duration::from_millis(25));
        assert_eq!(opts.durability, DurabilityTier::DiskFsynced);
    }

    #[test]
    fn checkpoint_policy_builders_compose() {
        let p = CheckpointPolicy::default()
            .with_interval(Duration::ZERO)
            .with_log_bytes_trigger(1 << 20)
            .with_retain_segments(3)
            .with_retain_snapshots(1);
        assert_eq!(p.interval, Duration::ZERO);
        assert_eq!(p.log_bytes_trigger, 1 << 20);
        assert_eq!(p.retain_segments, 3);
        assert_eq!(p.retain_snapshots, 1);
        assert_eq!(CheckpointPolicy::default().retain_snapshots, 2);
    }

    #[test]
    fn tiers_are_ordered_and_roundtrip_their_codes() {
        assert!(DurabilityTier::Volatile < DurabilityTier::MirrorAcked);
        assert!(DurabilityTier::MirrorAcked < DurabilityTier::DiskFsynced);
        for tier in DurabilityTier::ALL {
            assert_eq!(DurabilityTier::from_code(tier.code()), Some(tier));
            assert_eq!(tier.to_string(), tier.label());
        }
        assert_eq!(DurabilityTier::from_code(9), None);
    }
}
