//! Online shard migration: move one shard between live nodes without
//! stopping traffic (`DESIGN.md` §16).
//!
//! The driver ships a fuzzy snapshot of the shard to the target, then
//! chases the source's redo-log tail in rounds while the source keeps
//! committing. When a round comes back (near-)empty it seals the
//! source — the shard engine is detached and dropped, which completes
//! and flushes every in-flight commit — ships the final tail, and cuts
//! over with an epoch-bumped map. Clients racing the cutover get
//! `WrongShard` redirects and converge on the new owner.

use crate::coord::{ClusterCoordinator, ClusterError};
use crate::proto::{ClusterProtoError, ClusterReply, ClusterRequest};
use rodain_shard::ShardOwner;

/// Catch-up rounds before sealing regardless of tail length (each round
/// shrinks the remaining tail; sealing pauses the shard only for the
/// last, short round).
const MAX_CATCHUP_ROUNDS: usize = 8;

/// What one [`ClusterCoordinator::migrate_shard`] run did.
#[derive(Clone, Copy, Debug)]
pub struct MigrationReport {
    /// The shard that moved.
    pub shard: usize,
    /// CSN boundary of the initial snapshot.
    pub snapshot_upto: u64,
    /// Commits shipped by log-tail catch-up (pre-seal and final).
    pub catchup_commits: u64,
    /// Catch-up rounds run before sealing.
    pub rounds: usize,
    /// Epoch of the map installed at cutover.
    pub final_epoch: u64,
}

impl ClusterCoordinator {
    /// Move `shard` from its current owner to `target` while both nodes
    /// keep serving traffic. Returns after the cutover map is installed
    /// everywhere.
    pub fn migrate_shard(
        &self,
        shard: usize,
        target: ShardOwner,
    ) -> Result<MigrationReport, ClusterError> {
        let map = self.map();
        let source = map
            .owner(shard)
            .ok_or(ClusterError::NoOwner(shard))?
            .clone();
        let source_addr = source.peer_addr.clone();
        let target_addr = target.peer_addr.clone();

        // 1. Fuzzy snapshot → staged copy on the target.
        let (mut upto, snapshot) = match self.call(
            &source_addr,
            &ClusterRequest::MigrateSnapshot {
                shard: shard as u64,
            },
        )? {
            ClusterReply::Snapshot { upto, snapshot } => (upto, snapshot),
            _ => {
                return Err(ClusterError::Proto(ClusterProtoError::Malformed(
                    "expected Snapshot reply",
                )))
            }
        };
        let snapshot_upto = upto;
        self.expect_ack(
            &target_addr,
            &ClusterRequest::InstallStaged {
                shard: shard as u64,
                upto,
                snapshot,
            },
        )?;

        // 2. Chase the log tail while the source stays live.
        let mut catchup_commits = 0u64;
        let mut rounds = 0usize;
        while rounds < MAX_CATCHUP_ROUNDS {
            rounds += 1;
            let commits = self.fetch_tail(
                &source_addr,
                &ClusterRequest::MigrateTail {
                    shard: shard as u64,
                    after: upto,
                },
            )?;
            if commits.is_empty() {
                break;
            }
            catchup_commits += commits.len() as u64;
            upto = commits.last().map_or(upto, |c| c.csn.max(upto));
            self.expect_ack(
                &target_addr,
                &ClusterRequest::ApplyTail {
                    shard: shard as u64,
                    commits,
                },
            )?;
        }

        // 3. Seal: the source detaches and drops the shard engine
        // (completing + flushing every in-flight commit), then returns
        // whatever the log holds past our high-water mark.
        let finale = self.fetch_tail(
            &source_addr,
            &ClusterRequest::MigrateSeal {
                shard: shard as u64,
                after: upto,
            },
        )?;
        if !finale.is_empty() {
            catchup_commits += finale.len() as u64;
            upto = finale.last().map_or(upto, |c| c.csn.max(upto));
            self.expect_ack(
                &target_addr,
                &ClusterRequest::ApplyTail {
                    shard: shard as u64,
                    commits: finale,
                },
            )?;
        }

        // 4. Cutover: activate on the target under an epoch-bumped map,
        // then broadcast the map to every node old and new.
        let new_map = map.reassigned(shard, target);
        self.expect_ack(
            &target_addr,
            &ClusterRequest::Activate {
                shard: shard as u64,
                map: new_map.clone(),
            },
        )?;
        let mut addrs = self.peer_addrs();
        addrs.push(source_addr);
        addrs.push(target_addr);
        for owner in &new_map.owners {
            addrs.push(owner.peer_addr.clone());
        }
        addrs.sort();
        addrs.dedup();
        self.broadcast_map(&new_map, &addrs)?;

        Ok(MigrationReport {
            shard,
            snapshot_upto,
            catchup_commits,
            rounds,
            final_epoch: new_map.epoch,
        })
    }

    fn expect_ack(&self, addr: &str, request: &ClusterRequest) -> Result<(), ClusterError> {
        match self.call(addr, request)? {
            ClusterReply::Ack => Ok(()),
            _ => Err(ClusterError::Proto(ClusterProtoError::Malformed(
                "expected Ack reply",
            ))),
        }
    }

    fn fetch_tail(
        &self,
        addr: &str,
        request: &ClusterRequest,
    ) -> Result<Vec<crate::proto::TailCommit>, ClusterError> {
        match self.call(addr, request)? {
            ClusterReply::Tail { commits } => Ok(commits),
            _ => Err(ClusterError::Proto(ClusterProtoError::Malformed(
                "expected Tail reply",
            ))),
        }
    }
}
