//! Stateless hash partitioning of the object-id space.

use rodain_store::ObjectId;

/// Data objects whose id has this bit set belong to the sharding layer's
/// metadata namespace (2PC intents and decisions), not to applications.
pub const META_BIT: u64 = 1 << 63;

/// Most shards a router will address: the metadata encoding reserves
/// 15 bits for the home-shard index.
pub const MAX_SHARDS: usize = 1 << 15;

/// Shard-index field position inside a metadata object id.
const SHARD_SHIFT: u32 = 48;
/// Kind field position inside a metadata object id.
const KIND_SHIFT: u32 = 44;
/// Mask for the group-id payload (44 bits).
const GID_MASK: u64 = (1 << KIND_SHIFT) - 1;

/// What a metadata object is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaKind {
    /// A participant shard's durable PREPARE record for one cross-shard
    /// transaction (value: the encoded operations, or the coordinator CSN
    /// once applied).
    Intent,
    /// The coordinator shard's commit decision for one cross-shard
    /// transaction — its presence *is* the commit point.
    Decision,
}

impl MetaKind {
    fn code(self) -> u64 {
        match self {
            MetaKind::Intent => 1,
            MetaKind::Decision => 2,
        }
    }

    fn from_code(code: u64) -> Option<MetaKind> {
        match code {
            1 => Some(MetaKind::Intent),
            2 => Some(MetaKind::Decision),
            _ => None,
        }
    }
}

/// A decoded metadata object id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetaOid {
    /// The shard the object lives on.
    pub shard: usize,
    /// Intent or decision.
    pub kind: MetaKind,
    /// The cross-shard transaction's group id.
    pub gid: u64,
}

/// Hash-partitions [`ObjectId`]s across `shards` engines.
///
/// Data objects (high bit clear) route by a Fibonacci multiplicative hash
/// of the full id — cheap, stateless, and spreading even sequential key
/// ranges evenly. Metadata objects (high bit set) carry their home shard
/// in the id itself, so the 2PC coordinator can place per-participant
/// bookkeeping exactly where the participant's redo stream lives.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` partitions.
    ///
    /// # Panics
    /// Panics if `shards` is zero or exceeds [`MAX_SHARDS`].
    #[must_use]
    pub fn new(shards: usize) -> ShardRouter {
        assert!(
            shards >= 1 && shards <= MAX_SHARDS,
            "shard count {shards} outside 1..={MAX_SHARDS}"
        );
        ShardRouter { shards }
    }

    /// Number of partitions.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard `oid` lives on.
    #[must_use]
    pub fn route(&self, oid: ObjectId) -> usize {
        if oid.0 & META_BIT != 0 {
            // Metadata ids embed their home shard; clamp defensively so a
            // router resized below an old id's shard still stays in range.
            (((oid.0 >> SHARD_SHIFT) & 0x7FFF) as usize) % self.shards
        } else {
            // The canonical Fibonacci multiplicative hash, shared with
            // parallel redo replay so both layers agree on ownership.
            oid.partition(self.shards)
        }
    }

    /// Whether `oid` belongs to the sharding layer's metadata namespace.
    #[must_use]
    pub fn is_meta(oid: ObjectId) -> bool {
        oid.0 & META_BIT != 0
    }

    /// The intent object id for transaction `gid` on participant `shard`.
    #[must_use]
    pub fn intent_oid(&self, shard: usize, gid: u64) -> ObjectId {
        self.meta_oid(shard, MetaKind::Intent, gid)
    }

    /// The decision object id for transaction `gid` on coordinator `shard`.
    #[must_use]
    pub fn decision_oid(&self, shard: usize, gid: u64) -> ObjectId {
        self.meta_oid(shard, MetaKind::Decision, gid)
    }

    fn meta_oid(&self, shard: usize, kind: MetaKind, gid: u64) -> ObjectId {
        assert!(shard < self.shards, "shard {shard} out of range");
        assert!(gid <= GID_MASK, "gid {gid} exceeds the 44-bit payload");
        ObjectId(META_BIT | ((shard as u64) << SHARD_SHIFT) | (kind.code() << KIND_SHIFT) | gid)
    }

    /// Decode a metadata object id (`None` for data ids or unknown kinds).
    #[must_use]
    pub fn meta_parts(oid: ObjectId) -> Option<MetaOid> {
        if oid.0 & META_BIT == 0 {
            return None;
        }
        Some(MetaOid {
            shard: ((oid.0 >> SHARD_SHIFT) & 0x7FFF) as usize,
            kind: MetaKind::from_code((oid.0 >> KIND_SHIFT) & 0xF)?,
            gid: oid.0 & GID_MASK,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_routing_is_stable_and_in_range() {
        let router = ShardRouter::new(4);
        for oid in 0..10_000u64 {
            let s = router.route(ObjectId(oid));
            assert!(s < 4);
            assert_eq!(s, router.route(ObjectId(oid)), "routing must be stable");
        }
    }

    #[test]
    fn data_routing_spreads_sequential_ids() {
        let router = ShardRouter::new(8);
        let mut counts = [0u64; 8];
        for oid in 0..80_000u64 {
            counts[router.route(ObjectId(oid))] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            // Perfect balance would be 10k per shard; allow ±25 %.
            assert!(
                (7_500..=12_500).contains(&c),
                "shard {shard} got {c} of 80k sequential ids"
            );
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(1);
        for oid in [0u64, 1, 42, u64::MAX / 2, META_BIT | 7] {
            assert_eq!(router.route(ObjectId(oid)), 0);
        }
    }

    #[test]
    fn meta_oids_round_trip_and_route_home() {
        let router = ShardRouter::new(6);
        for shard in 0..6 {
            for gid in [0u64, 1, 999, GID_MASK] {
                let intent = router.intent_oid(shard, gid);
                let decision = router.decision_oid(shard, gid);
                assert_ne!(intent, decision);
                assert!(ShardRouter::is_meta(intent));
                assert_eq!(router.route(intent), shard);
                assert_eq!(router.route(decision), shard);
                assert_eq!(
                    ShardRouter::meta_parts(intent),
                    Some(MetaOid {
                        shard,
                        kind: MetaKind::Intent,
                        gid
                    })
                );
                assert_eq!(
                    ShardRouter::meta_parts(decision).unwrap().kind,
                    MetaKind::Decision
                );
            }
        }
        assert_eq!(ShardRouter::meta_parts(ObjectId(123)), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_shards_is_rejected() {
        let _ = ShardRouter::new(0);
    }

    #[test]
    fn data_routing_matches_canonical_partition_function() {
        // Redo-replay partitioning (ObjectId::partition) and shard routing
        // must stay byte-identical for data ids, so a per-shard replay
        // stream only ever touches objects the shard owns.
        for shards in [1usize, 2, 3, 8, 64] {
            let router = ShardRouter::new(shards);
            for oid in (0..5_000u64).chain([u64::MAX / 3, (1 << 62) + 17]) {
                let oid = ObjectId(oid);
                assert_eq!(router.route(oid), oid.partition(shards));
            }
        }
    }
}
