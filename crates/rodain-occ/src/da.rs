//! OCC-DA — dynamic adjustment of serialization order (Lam, Lam & Hung).

use crate::active::{OccCore, OccPolicy};
use crate::traits::{
    AccessDecision, CcPriority, CcStats, ConcurrencyController, Protocol, RestartReason,
    ValidationOutcome,
};
use rodain_store::{ObjectId, Store, Ts, TxnId, Workspace};

/// OCC with Dynamic Adjustment of serialization order.
///
/// Active transactions conflicting with the validating one are
/// re-serialized (their serialization-order constraints adjusted) instead
/// of restarted, as in OCC-DATI — but the validating transaction itself
/// always takes the next *forward* timestamp. Without the timestamp-interval
/// machinery it cannot commit "into the past", so a transaction whose reads
/// were overwritten by a committed writer must restart even when a backward
/// placement would have been serializable. This isolates exactly the benefit
/// the intervals add in OCC-TI/OCC-DATI.
pub struct OccDa {
    core: OccCore,
}

impl OccDa {
    /// Create a controller.
    #[must_use]
    pub fn new() -> Self {
        OccDa {
            core: OccCore::new(OccPolicy {
                protocol: Protocol::OccDa,
                broadcast: false,
                eager: false,
                allow_backward: false,
            }),
        }
    }
}

impl Default for OccDa {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrencyController for OccDa {
    fn protocol(&self) -> Protocol {
        self.core.protocol()
    }

    fn begin(&self, txn: TxnId, priority: CcPriority) {
        self.core.begin(txn, priority);
    }

    fn on_read(&self, txn: TxnId, oid: ObjectId, observed_wts: Ts) -> AccessDecision {
        self.core.on_read(txn, oid, observed_wts)
    }

    fn on_write(&self, txn: TxnId, oid: ObjectId, store: &Store) -> AccessDecision {
        self.core.on_write(txn, oid, store)
    }

    fn doomed(&self, txn: TxnId) -> Option<RestartReason> {
        self.core.doomed(txn)
    }

    fn validate(&self, ws: &Workspace, store: &Store) -> ValidationOutcome {
        self.core.validate(ws, store)
    }

    fn remove(&self, txn: TxnId) {
        self.core.remove(txn);
    }

    fn stats(&self) -> CcStats {
        self.core.stats()
    }

    fn active_count(&self) -> usize {
        self.core.active_count()
    }
}
