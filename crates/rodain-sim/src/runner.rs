//! Session runners: one session, or the paper's repeated-sessions protocol.

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::metrics::{AggregateMetrics, SimMetrics};
use rodain_workload::{TraceGenerator, WorkloadSpec};

/// Run one simulated session of `spec` under `cfg`.
#[must_use]
pub fn run_session(cfg: &SimConfig, spec: &WorkloadSpec) -> SimMetrics {
    let trace = TraceGenerator::new(spec.clone()).generate();
    Simulation::new(cfg.clone(), trace, spec.db_objects).run()
}

/// The paper's measurement protocol: "Every test session contains 10 000
/// transactions and is repeated at least 20 times. The reported values are
/// the means of the repetitions." Each repetition varies the trace seed.
#[must_use]
pub fn run_repetitions(cfg: &SimConfig, spec: &WorkloadSpec, reps: u32) -> AggregateMetrics {
    let sessions: Vec<SimMetrics> = (0..reps)
        .map(|rep| {
            let rep_spec = WorkloadSpec {
                seed: spec
                    .seed
                    .wrapping_add(u64::from(rep).wrapping_mul(0x9E37_79B9)),
                ..spec.clone()
            };
            run_session(cfg, &rep_spec)
        })
        .collect();
    AggregateMetrics::from_sessions(&sessions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiskMode;

    #[test]
    fn repetitions_aggregate() {
        let spec = WorkloadSpec {
            count: 500,
            db_objects: 1_000,
            arrival_rate_tps: 100.0,
            ..WorkloadSpec::default()
        };
        let agg = run_repetitions(&SimConfig::two_node(DiskMode::Off), &spec, 3);
        assert_eq!(agg.sessions, 3);
        assert!(agg.miss_ratio_min <= agg.miss_ratio_mean);
        assert!(agg.miss_ratio_mean <= agg.miss_ratio_max);
    }

    #[test]
    fn session_runner_matches_direct_use() {
        let spec = WorkloadSpec {
            count: 300,
            db_objects: 1_000,
            arrival_rate_tps: 80.0,
            ..WorkloadSpec::default()
        };
        let cfg = SimConfig::no_logs();
        let a = run_session(&cfg, &spec);
        let b = run_session(&cfg, &spec);
        assert_eq!(a.committed, b.committed);
    }
}
