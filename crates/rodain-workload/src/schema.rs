//! The number-translation test database.

use rodain_store::{ObjectId, Store, Value};

/// Builder/descriptor of the paper's test database: a number translation
/// service ("intelligent network" service numbers such as toll-free 0800
/// numbers translated to routable subscriber numbers).
///
/// Each object is a routing record:
/// `Record[ Text routing_address, Int service_flags, Int translation_count ]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NumberTranslationDb {
    /// Number of service numbers (data objects). The prototype used 30 000.
    pub objects: u64,
}

impl NumberTranslationDb {
    /// The paper's configuration.
    pub const PAPER: NumberTranslationDb = NumberTranslationDb { objects: 30_000 };

    /// A database of `objects` entries.
    #[must_use]
    pub fn new(objects: u64) -> Self {
        NumberTranslationDb { objects }
    }

    /// The object id of service number `n` (0-based dense mapping).
    #[must_use]
    pub fn object_id(&self, n: u64) -> ObjectId {
        ObjectId(n % self.objects.max(1))
    }

    /// The initial routing record for service number `n`.
    #[must_use]
    pub fn initial_record(&self, n: u64) -> Value {
        Value::Record(vec![
            Value::Text(format!("+358-9-{:07}", n % 10_000_000)),
            Value::Int((n % 8) as i64), // service flags
            Value::Int(0),              // translation count
        ])
    }

    /// An updated routing record: a service-provision update re-points the
    /// number and bumps the translation counter.
    #[must_use]
    pub fn updated_record(&self, previous: &Value, txn_seq: u64) -> Value {
        let (flags, count) = match previous.as_record() {
            Some([_, Value::Int(flags), Value::Int(count)]) => (*flags, *count),
            _ => (0, 0),
        };
        Value::Record(vec![
            Value::Text(format!("+358-40-{:07}", txn_seq % 10_000_000)),
            Value::Int(flags),
            Value::Int(count + 1),
        ])
    }

    /// Populate `store` with the full database at timestamp zero.
    pub fn populate(&self, store: &Store) {
        for n in 0..self.objects {
            store.load_initial(self.object_id(n), self.initial_record(n));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_creates_every_object() {
        let db = NumberTranslationDb::new(100);
        let store = Store::new();
        db.populate(&store);
        assert_eq!(store.len(), 100);
        let (value, _) = store.read(db.object_id(42)).unwrap();
        let fields = value.as_record().unwrap();
        assert_eq!(fields.len(), 3);
        assert!(fields[0].as_text().unwrap().starts_with("+358-9-"));
    }

    #[test]
    fn update_bumps_translation_count() {
        let db = NumberTranslationDb::new(10);
        let initial = db.initial_record(3);
        let updated = db.updated_record(&initial, 999);
        let fields = updated.as_record().unwrap();
        assert_eq!(fields[2], Value::Int(1));
        assert!(fields[0].as_text().unwrap().starts_with("+358-40-"));
        let updated2 = db.updated_record(&updated, 1000);
        assert_eq!(updated2.as_record().unwrap()[2], Value::Int(2));
    }

    #[test]
    fn object_ids_wrap() {
        let db = NumberTranslationDb::new(10);
        assert_eq!(db.object_id(13), ObjectId(3));
    }

    #[test]
    fn paper_config() {
        assert_eq!(NumberTranslationDb::PAPER.objects, 30_000);
    }
}
