//! The versioned shard map: which node owns which shard, as of an epoch.
//!
//! Multi-node placement (DESIGN.md §16) needs one piece of shared,
//! *versioned* routing state: shard → owning node. The map is a plain
//! value — an epoch number and one [`ShardOwner`] per shard — copied
//! around by value and compared only by epoch. Every node serves its
//! current map over the client protocol (`RequestOp::ClusterMap`), every
//! client caches one, and a request routed with a stale map is answered
//! `WrongShard { epoch }` so the client refetches and retries. Epochs are
//! bumped exactly once per ownership change (a migration cutover), so
//! "my epoch ≥ the redirect's epoch" is the client's convergence test.
//!
//! The map rides inside [`rodain_store::Value`] on the wire (the codec
//! every protocol layer already has), via [`ShardMap::to_value`] /
//! [`ShardMap::from_value`].

use rodain_store::Value;

/// One shard's owning node: where clients send transactions for the
/// shard, and where peers reach the node's cluster port.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardOwner {
    /// The owner's client-plane address (`rodain-server` protocol).
    pub client_addr: String,
    /// The owner's peer-plane address (cluster protocol: 2PC, migration).
    pub peer_addr: String,
}

/// An epoch-numbered assignment of every shard to an owning node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Version of this assignment; bumped on every ownership change.
    pub epoch: u64,
    /// Owner of shard `i` at `owners[i]`.
    pub owners: Vec<ShardOwner>,
}

impl ShardMap {
    /// A single-node map: every shard owned by the same node, epoch 1.
    #[must_use]
    pub fn single(shards: usize, client_addr: &str, peer_addr: &str) -> ShardMap {
        ShardMap {
            epoch: 1,
            owners: vec![
                ShardOwner {
                    client_addr: client_addr.to_string(),
                    peer_addr: peer_addr.to_string(),
                };
                shards
            ],
        }
    }

    /// Number of shards the map covers.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.owners.len()
    }

    /// Shard `shard`'s owner, if the shard exists.
    #[must_use]
    pub fn owner(&self, shard: usize) -> Option<&ShardOwner> {
        self.owners.get(shard)
    }

    /// A copy of this map with `shard` reassigned to `owner` and the
    /// epoch bumped — the migration-cutover successor map.
    #[must_use]
    pub fn reassigned(&self, shard: usize, owner: ShardOwner) -> ShardMap {
        let mut next = self.clone();
        if let Some(slot) = next.owners.get_mut(shard) {
            *slot = owner;
        }
        next.epoch += 1;
        next
    }

    /// Encode as a [`Value`]: `Record[Int(epoch), Record[Record[Text(client),
    /// Text(peer)], …]]` — carried inside any protocol that moves values.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Record(vec![
            Value::Int(self.epoch as i64),
            Value::Record(
                self.owners
                    .iter()
                    .map(|o| {
                        Value::Record(vec![
                            Value::Text(o.client_addr.clone()),
                            Value::Text(o.peer_addr.clone()),
                        ])
                    })
                    .collect(),
            ),
        ])
    }

    /// Inverse of [`ShardMap::to_value`]; `None` on any shape mismatch.
    #[must_use]
    pub fn from_value(value: &Value) -> Option<ShardMap> {
        let Value::Record(fields) = value else {
            return None;
        };
        let [Value::Int(epoch), Value::Record(owners)] = fields.as_slice() else {
            return None;
        };
        let owners = owners
            .iter()
            .map(|o| {
                let Value::Record(pair) = o else {
                    return None;
                };
                let [Value::Text(client_addr), Value::Text(peer_addr)] = pair.as_slice() else {
                    return None;
                };
                Some(ShardOwner {
                    client_addr: client_addr.clone(),
                    peer_addr: peer_addr.clone(),
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(ShardMap {
            epoch: *epoch as u64,
            owners,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_map() -> ShardMap {
        ShardMap {
            epoch: 7,
            owners: vec![
                ShardOwner {
                    client_addr: "127.0.0.1:4001".into(),
                    peer_addr: "127.0.0.1:5001".into(),
                },
                ShardOwner {
                    client_addr: "127.0.0.1:4002".into(),
                    peer_addr: "127.0.0.1:5002".into(),
                },
            ],
        }
    }

    #[test]
    fn value_roundtrip() {
        let map = two_node_map();
        assert_eq!(ShardMap::from_value(&map.to_value()), Some(map));
        let single = ShardMap::single(4, "c", "p");
        assert_eq!(single.epoch, 1);
        assert_eq!(single.shards(), 4);
        assert_eq!(ShardMap::from_value(&single.to_value()), Some(single));
    }

    #[test]
    fn malformed_values_rejected() {
        assert!(ShardMap::from_value(&Value::Int(3)).is_none());
        assert!(ShardMap::from_value(&Value::Record(vec![Value::Int(1)])).is_none());
        assert!(ShardMap::from_value(&Value::Record(vec![
            Value::Int(1),
            Value::Record(vec![Value::Int(9)]),
        ]))
        .is_none());
    }

    #[test]
    fn reassigned_bumps_epoch_and_swaps_owner() {
        let map = two_node_map();
        let next = map.reassigned(
            1,
            ShardOwner {
                client_addr: "127.0.0.1:4001".into(),
                peer_addr: "127.0.0.1:5001".into(),
            },
        );
        assert_eq!(next.epoch, 8);
        assert_eq!(next.owner(1), next.owner(0));
        assert_eq!(map.epoch, 7, "original untouched");
    }
}
