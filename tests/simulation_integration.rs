//! Simulation-level integration: the qualitative *shapes* of the paper's
//! figures must hold at reduced scale (the full-scale sweeps live in the
//! rodain-bench experiment binaries).

use rodain::sim::{run_repetitions, run_session, DiskMode, SimConfig};
use rodain::workload::WorkloadSpec;

fn spec(rate: f64, wr: f64) -> WorkloadSpec {
    WorkloadSpec {
        count: 2_500,
        db_objects: 5_000,
        arrival_rate_tps: rate,
        write_fraction: wr,
        ..WorkloadSpec::default()
    }
}

#[test]
fn fig2_shape_two_node_beats_single_node_disk_across_rates() {
    // Fig 2: "the use of a remote node instead of direct disk writes
    // increases the system performance" — at every arrival rate, at
    // write ratio 50 %.
    for rate in [100.0, 200.0, 300.0] {
        let one = run_session(&SimConfig::single_node(DiskMode::On), &spec(rate, 0.5));
        let two = run_session(&SimConfig::two_node(DiskMode::On), &spec(rate, 0.5));
        assert!(
            two.miss_ratio() <= one.miss_ratio(),
            "rate {rate}: two-node {} vs one-node {}",
            two.miss_ratio(),
            one.miss_ratio()
        );
    }
    // And the gap is dramatic in the mid range.
    let one = run_session(&SimConfig::single_node(DiskMode::On), &spec(200.0, 0.5));
    let two = run_session(&SimConfig::two_node(DiskMode::On), &spec(200.0, 0.5));
    assert!(one.miss_ratio() - two.miss_ratio() > 0.3);
}

#[test]
fn fig2b_shape_write_fraction_matters_little_for_two_node() {
    // Fig 2(b): at 300 tps the two-node system's miss ratio moves little
    // with the write fraction ("The effect of the ratio of update
    // transactions is relatively small").
    let lo = run_session(&SimConfig::two_node(DiskMode::On), &spec(250.0, 0.0));
    let hi = run_session(&SimConfig::two_node(DiskMode::On), &spec(250.0, 0.8));
    assert!(
        (hi.miss_ratio() - lo.miss_ratio()).abs() < 0.25,
        "write-ratio effect too large: {} vs {}",
        lo.miss_ratio(),
        hi.miss_ratio()
    );
    // While the single-node-disk system is bad at BOTH ends (even
    // read-only txns pay the disk for their commit record).
    let one_lo = run_session(&SimConfig::single_node(DiskMode::On), &spec(250.0, 0.0));
    assert!(one_lo.miss_ratio() > 0.4);
}

#[test]
fn fig3_shape_three_series_close_saturation_in_band() {
    // Fig 3: with disk off, no-logs / 1-node / 2-node are close; the knee
    // sits at 200-300 tps; below the knee everything commits.
    for wr in [0.0, 0.2, 0.8] {
        let below_knee = run_session(&SimConfig::two_node(DiskMode::Off), &spec(150.0, wr));
        assert!(
            below_knee.miss_ratio() < 0.05,
            "wr {wr}: missing below the knee ({})",
            below_knee.miss_ratio()
        );
        let above_knee = run_session(&SimConfig::two_node(DiskMode::Off), &spec(400.0, wr));
        assert!(
            above_knee.miss_ratio() > 0.2,
            "wr {wr}: no saturation above the knee ({})",
            above_knee.miss_ratio()
        );
        // Series closeness at a mid-range rate.
        let nologs = run_session(&SimConfig::no_logs(), &spec(250.0, wr));
        let one = run_session(&SimConfig::single_node(DiskMode::Off), &spec(250.0, wr));
        let two = run_session(&SimConfig::two_node(DiskMode::Off), &spec(250.0, wr));
        assert!(
            (one.miss_ratio() - nologs.miss_ratio()).abs() < 0.12,
            "wr {wr}: 1-node {} vs no-logs {}",
            one.miss_ratio(),
            nologs.miss_ratio()
        );
        assert!(
            two.miss_ratio() >= nologs.miss_ratio() - 0.02,
            "wr {wr}: logging cannot beat the no-log optimum"
        );
        assert!(
            (two.miss_ratio() - nologs.miss_ratio()).abs() < 0.15,
            "wr {wr}: 2-node {} vs no-logs {}",
            two.miss_ratio(),
            nologs.miss_ratio()
        );
    }
}

#[test]
fn repetitions_shrink_variance() {
    let agg = run_repetitions(&SimConfig::two_node(DiskMode::Off), &spec(280.0, 0.2), 5);
    assert_eq!(agg.sessions, 5);
    assert!(agg.miss_ratio_max - agg.miss_ratio_min < 0.2);
    assert!(agg.miss_ratio_mean >= agg.miss_ratio_min);
}

#[test]
fn sim_is_deterministic_across_processes_worth_of_reruns() {
    let a = run_session(&SimConfig::two_node(DiskMode::On), &spec(300.0, 0.5));
    let b = run_session(&SimConfig::two_node(DiskMode::On), &spec(300.0, 0.5));
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.missed_deadline, b.missed_deadline);
    assert_eq!(a.missed_admission, b.missed_admission);
    assert_eq!(a.missed_conflict, b.missed_conflict);
    assert_eq!(a.response.p99_ns, b.response.p99_ns);
    assert_eq!(a.log_records, b.log_records);
}

#[test]
fn commit_log_records_also_for_read_only_transactions() {
    // Read-only workload still generates one commit record per commit.
    let m = run_session(&SimConfig::two_node(DiskMode::Off), &spec(100.0, 0.0));
    assert!(m.log_records >= m.committed);
    assert!(m.log_records < m.committed + m.committed / 10 + 10);
}
