//! A map-aware client for cluster deployments: caches the epoch-numbered
//! [`ShardMap`], routes each request to the anchor object's owner, and
//! on a [`Outcome::WrongShard`] redirect (or a connection failure)
//! refreshes the map and retries against the new owner.

use rodain_server::{Client, Outcome};
use rodain_shard::{ShardMap, ShardRouter};
use rodain_store::{ObjectId, Value};
use rodain_workload::NumberTranslationDb;
use std::collections::HashMap;
use std::io;
use std::time::{Duration, Instant};

/// Default retry window per request. A migration cutover can hold a
/// shard unavailable for seconds (the seal alone waits up to 5s for
/// in-flight handles, and the epoch-bumped map only lands after the
/// broadcast), during which the old owner keeps answering `WrongShard`
/// on an unchanged epoch — so the window must comfortably outlast a
/// worst-case seal-to-broadcast interval, not just one map refresh.
const RETRY_WINDOW: Duration = Duration::from_secs(15);

/// Attempts made regardless of elapsed time, so a short window never
/// degenerates into a single try.
const MIN_ATTEMPTS: usize = 4;

/// Pause between attempts: doubles from `BACKOFF_START` up to
/// `BACKOFF_CAP`, keeping early redirects snappy without hammering a
/// node mid-cutover.
const BACKOFF_START: Duration = Duration::from_millis(10);
const BACKOFF_CAP: Duration = Duration::from_millis(250);

/// A routing client over a cluster of nodes.
pub struct ClusterClient {
    map: ShardMap,
    router: ShardRouter,
    conns: HashMap<String, Client>,
    schema: NumberTranslationDb,
    deadline_ms: u32,
    retry_window: Duration,
}

impl ClusterClient {
    /// Connect to any node's *client* address, fetch the cluster map it
    /// serves, and route by it from then on.
    pub fn connect(seed_addr: &str, schema: NumberTranslationDb) -> io::Result<ClusterClient> {
        let mut seed = Client::connect(seed_addr)?;
        let map = match seed.cluster_map()? {
            Outcome::Ok(value) => ShardMap::from_value(&value)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad cluster map"))?,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("cluster map fetch failed: {other:?}"),
                ))
            }
        };
        let router = ShardRouter::new(map.owners.len());
        let mut conns = HashMap::new();
        conns.insert(seed_addr.to_string(), seed);
        Ok(ClusterClient {
            map,
            router,
            conns,
            schema,
            deadline_ms: 0,
            retry_window: RETRY_WINDOW,
        })
    }

    /// Deadline attached to every data request (0 = soft/none).
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.deadline_ms = deadline_ms;
    }

    /// How long a request keeps retrying through redirects and dead
    /// connections before surfacing an error (default 15s — sized to
    /// cover a worst-case migration cutover).
    pub fn set_retry_window(&mut self, window: Duration) {
        self.retry_window = window;
    }

    /// The client's current view of the map.
    #[must_use]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    fn conn(&mut self, addr: &str) -> io::Result<&mut Client> {
        if !self.conns.contains_key(addr) {
            let client = Client::connect(addr)?;
            self.conns.insert(addr.to_string(), client);
        }
        Ok(self.conns.get_mut(addr).expect("conn just inserted"))
    }

    /// Ask every distinct owner for its map and keep the newest. Nodes
    /// mid-cutover can briefly disagree; the newest epoch wins
    /// (`DESIGN.md` §16). The pacing between refreshes is the retry
    /// backoff in [`ClusterClient::request_on`].
    fn refresh_map(&mut self) {
        let mut addrs: Vec<String> = self
            .map
            .owners
            .iter()
            .map(|o| o.client_addr.clone())
            .collect();
        addrs.extend(self.conns.keys().cloned());
        addrs.sort();
        addrs.dedup();
        let mut best: Option<ShardMap> = None;
        for addr in addrs {
            let Ok(conn) = self.conn(&addr) else {
                continue;
            };
            if let Ok(Outcome::Ok(value)) = conn.cluster_map() {
                if let Some(map) = ShardMap::from_value(&value) {
                    if best.as_ref().map_or(true, |b| map.epoch > b.epoch) {
                        best = Some(map);
                    }
                }
            }
        }
        if let Some(map) = best {
            if map.epoch >= self.map.epoch {
                self.map = map;
            }
        }
    }

    /// Route a request anchored at `anchor` to its owner, refreshing
    /// the map and retrying on redirects or dead connections.
    fn request_on(
        &mut self,
        anchor: ObjectId,
        op: impl Fn(&mut Client, u32) -> io::Result<Outcome>,
    ) -> io::Result<Outcome> {
        let deadline = self.deadline_ms;
        let started = Instant::now();
        let mut backoff = BACKOFF_START;
        let mut last_err: Option<io::Error> = None;
        for attempt in 1.. {
            let shard = self.router.route(anchor);
            let Some(addr) = self.map.owner(shard).map(|o| o.client_addr.clone()) else {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("shard {shard} has no owner"),
                ));
            };
            let outcome = match self.conn(&addr) {
                Ok(conn) => op(conn, deadline),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(Outcome::WrongShard { .. }) => {}
                Ok(other) => return Ok(other),
                Err(e) => {
                    // Connection torn (node restarting, migrating away):
                    // drop it, refresh the map, try the new owner.
                    self.conns.remove(&addr);
                    last_err = Some(e);
                }
            }
            if attempt >= MIN_ATTEMPTS && started.elapsed() >= self.retry_window {
                break;
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(BACKOFF_CAP);
            self.refresh_map();
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::TimedOut,
                "request did not converge on a shard owner",
            )
        }))
    }

    /// Number-translation lookup ([`Client::translate`]).
    pub fn translate(&mut self, number: u64) -> io::Result<Outcome> {
        let anchor = self.schema.object_id(number);
        self.request_on(anchor, move |c, d| c.translate(number, d))
    }

    /// Update a service provision ([`Client::provision`]).
    pub fn provision(&mut self, number: u64, address: &str) -> io::Result<Outcome> {
        let anchor = self.schema.object_id(number);
        let address = address.to_string();
        self.request_on(anchor, move |c, d| c.provision(number, address.clone(), d))
    }

    /// Generic object read.
    pub fn get(&mut self, oid: ObjectId) -> io::Result<Outcome> {
        self.request_on(oid, move |c, d| c.get(oid, d))
    }

    /// Generic object write.
    pub fn put(&mut self, oid: ObjectId, value: Value) -> io::Result<Outcome> {
        self.request_on(oid, move |c, d| c.put(oid, value.clone(), d))
    }
}
