//! The node-role state machine.

use std::fmt;

/// A node's role within the RODAIN pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NodeRole {
    /// Executing transactions; shipping logs to a live Mirror.
    Primary,
    /// Maintaining the database copy from the log stream; ready to take
    /// over "at any time".
    Mirror,
    /// Serving transactions *alone* after the peer failed. Logs go
    /// synchronously to disk before commit ("it must store the transaction
    /// logs directly to the disk before allowing the transaction to
    /// commit").
    ContingencyPrimary,
    /// Restarting after a failure; replaying the disk log, then asking to
    /// rejoin. "The failed node will always become a Mirror Node when it
    /// recovers."
    Recovering,
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeRole::Primary => "primary",
            NodeRole::Mirror => "mirror",
            NodeRole::ContingencyPrimary => "contingency-primary",
            NodeRole::Recovering => "recovering",
        };
        f.write_str(s)
    }
}

/// Events driving role transitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoleEvent {
    /// The watchdog declared the peer dead.
    PeerFailed,
    /// A recovered peer completed state transfer and is a live Mirror.
    PeerJoined,
    /// Local crash/restart (modelled; a real crash loses the process).
    LocalFailure,
    /// Disk-log replay finished; ready to request rejoin.
    RecoveryComplete,
}

/// Invalid transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RoleError {
    /// Role the node was in.
    pub from: NodeRole,
    /// The offending event.
    pub event: RoleEvent,
}

impl fmt::Display for RoleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {:?} is invalid in role {}", self.event, self.from)
    }
}

impl std::error::Error for RoleError {}

/// Enforces the paper's failover discipline:
///
/// ```text
///  Primary ──PeerFailed──▶ ContingencyPrimary ◀──PeerFailed── (as sole node)
///     ▲                          │   ▲
///     │ PeerJoined               │   │
///     │                          │   └──────────── Mirror ──PeerFailed──┐
///     └── ContingencyPrimary ◀───┘                    ▲                 │
///                                                     │            (promotes)
///  any ──LocalFailure──▶ Recovering ──RecoveryComplete─┘ (rejoins as Mirror)
/// ```
///
/// "The switch is only done when the current server fails and can no longer
/// serve any requests" — there is deliberately no Primary⇄Mirror swap-back.
#[derive(Debug)]
pub struct RoleMachine {
    role: NodeRole,
    transitions: u64,
}

impl RoleMachine {
    /// Start in `role`.
    #[must_use]
    pub fn new(role: NodeRole) -> Self {
        RoleMachine {
            role,
            transitions: 0,
        }
    }

    /// Current role.
    #[must_use]
    pub fn role(&self) -> NodeRole {
        self.role
    }

    /// Number of transitions taken.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Apply `event`, returning the new role.
    pub fn apply(&mut self, event: RoleEvent) -> Result<NodeRole, RoleError> {
        use NodeRole::*;
        use RoleEvent::*;
        let next = match (self.role, event) {
            // Losing the peer.
            (Primary, PeerFailed) => ContingencyPrimary,
            (Mirror, PeerFailed) => ContingencyPrimary, // promotion
            // A recovered peer becomes the new Mirror; we keep serving.
            (ContingencyPrimary, PeerJoined) => Primary,
            // Crashing.
            (Primary | Mirror | ContingencyPrimary, LocalFailure) => Recovering,
            // Replay done: rejoin as Mirror.
            (Recovering, RecoveryComplete) => Mirror,
            (from, event) => return Err(RoleError { from, event }),
        };
        self.role = next;
        self.transitions += 1;
        Ok(next)
    }

    /// Whether this role serves client transactions.
    #[must_use]
    pub fn serves_transactions(&self) -> bool {
        matches!(self.role, NodeRole::Primary | NodeRole::ContingencyPrimary)
    }

    /// Whether this role must flush the log to disk synchronously before a
    /// transaction may commit.
    #[must_use]
    pub fn requires_sync_disk(&self) -> bool {
        self.role == NodeRole::ContingencyPrimary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use NodeRole::*;
    use RoleEvent::*;

    #[test]
    fn mirror_promotes_on_primary_failure() {
        let mut m = RoleMachine::new(Mirror);
        assert_eq!(m.apply(PeerFailed).unwrap(), ContingencyPrimary);
        assert!(m.serves_transactions());
        assert!(m.requires_sync_disk());
    }

    #[test]
    fn primary_degrades_to_contingency_on_mirror_failure() {
        let mut m = RoleMachine::new(Primary);
        assert!(!m.requires_sync_disk());
        assert_eq!(m.apply(PeerFailed).unwrap(), ContingencyPrimary);
    }

    #[test]
    fn full_failure_cycle() {
        // Primary crashes; it recovers and rejoins as Mirror.
        let mut failed = RoleMachine::new(Primary);
        assert_eq!(failed.apply(LocalFailure).unwrap(), Recovering);
        assert!(!failed.serves_transactions());
        assert_eq!(failed.apply(RecoveryComplete).unwrap(), Mirror);

        // Meanwhile the old mirror became contingency primary, and on the
        // peer's rejoin becomes a full primary again.
        let mut survivor = RoleMachine::new(Mirror);
        survivor.apply(PeerFailed).unwrap();
        assert_eq!(survivor.apply(PeerJoined).unwrap(), Primary);
        assert_eq!(survivor.transitions(), 2);
    }

    #[test]
    fn no_swap_back_to_mirror() {
        // A serving node never voluntarily becomes a mirror.
        let mut m = RoleMachine::new(Primary);
        assert!(m.apply(PeerJoined).is_err());
        assert!(m.apply(RecoveryComplete).is_err());
        assert_eq!(m.role(), Primary);
        assert_eq!(m.transitions(), 0);
    }

    #[test]
    fn recovering_ignores_peer_events() {
        let mut m = RoleMachine::new(Recovering);
        assert!(m.apply(PeerFailed).is_err());
        assert!(m.apply(PeerJoined).is_err());
        let err = m.apply(LocalFailure).unwrap_err();
        assert_eq!(err.from, Recovering);
        assert!(format!("{err}").contains("recovering"));
    }
}
