//! Peer connection management: a request/response service layered on
//! [`Transport`] frames, kept strictly *outside* the engine.
//!
//! The replication path ([`TcpTransport`] + `rodain-node`'s codec) is a
//! long-lived streaming link; cluster coordination (shard maps, networked
//! 2PC, migration) instead wants short request/response exchanges between
//! any pair of nodes. Following the connection-management split common in
//! peer-to-peer stacks (accept loop and dialing live in the network
//! layer; the application supplies only a frame handler), this module
//! provides:
//!
//! * [`PeerServer`] — an accept loop on a [`std::net::TcpListener`];
//!   every connection gets its own thread running `handler(frame) ->
//!   Option<reply>` over length-prefixed frames. The handler is plain
//!   bytes-in/bytes-out: the cluster message codec lives above, the
//!   engine below, and neither knows about sockets.
//! * [`PeerClient`] — a dialing client that connects on first use,
//!   serializes calls (one request in flight per connection, matching
//!   the server's one-reply-per-frame contract), and redials once when
//!   the *send* fails — the one failure that proves the request never
//!   reached the peer. Any failure after a successful send (timeout,
//!   broken link) is surfaced, because the peer may have executed the
//!   request and resending could execute it twice.

use crate::{NetError, TcpTransport, Transport};
use bytes::Bytes;
use parking_lot::Mutex;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The frame handler a [`PeerServer`] runs: one reply per request frame;
/// `None` closes the connection (protocol violation or shutdown).
pub type PeerHandler = Arc<dyn Fn(Bytes) -> Option<Bytes> + Send + Sync>;

/// A request/response server: accept loop + one handler thread per peer
/// connection.
pub struct PeerServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl PeerServer {
    /// Serve `handler` on `listener`. Returns once the accept loop is
    /// running; the loop polls for shutdown every few milliseconds.
    pub fn start(listener: TcpListener, handler: PeerHandler) -> std::io::Result<PeerServer> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("rodain-peer-accept".into())
            .spawn(move || {
                while !accept_shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let handler = Arc::clone(&handler);
                            let conn_shutdown = Arc::clone(&accept_shutdown);
                            let _ = std::thread::Builder::new()
                                .name("rodain-peer-conn".into())
                                .spawn(move || {
                                    let Ok(transport) = TcpTransport::from_stream(stream) else {
                                        return;
                                    };
                                    serve_peer(&transport, &handler, &conn_shutdown);
                                });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(PeerServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address peers dial.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop; connection threads drain
    /// as their peers disconnect or observe the shutdown flag.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for PeerServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_peer(transport: &TcpTransport, handler: &PeerHandler, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::Acquire) {
        match transport.recv_timeout(Duration::from_millis(50)) {
            Ok(Some(frame)) => match handler(frame) {
                Some(reply) => {
                    if transport.send(reply).is_err() {
                        return;
                    }
                }
                None => {
                    transport.close();
                    return;
                }
            },
            Ok(None) => {}
            Err(_) => return,
        }
    }
}

/// A dialing request/response client. Calls are serialized (the peer
/// protocol above correlates by request id anyway, but one-in-flight
/// keeps the failure model simple: a reply always answers the last
/// request on the connection).
pub struct PeerClient {
    addr: String,
    conn: Mutex<Option<TcpTransport>>,
}

impl PeerClient {
    /// A client for the peer at `addr`. No connection is made until the
    /// first call.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> PeerClient {
        PeerClient {
            addr: addr.into(),
            conn: Mutex::new(None),
        }
    }

    /// The address this client dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Send `request` and wait up to `timeout` for the reply, dialing as
    /// needed.
    ///
    /// Failure semantics matter here: only a failed *send* is retried
    /// (once, after a redial), because a send that never completed
    /// provably never executed on the peer. Once the send has succeeded
    /// the request may be executing — or may already have committed with
    /// the reply lost — so a recv failure or timeout is surfaced, never
    /// retried, and the connection is closed so a late reply can never
    /// be read as the answer to a later request.
    pub fn call(&self, request: Bytes, timeout: Duration) -> Result<Bytes, NetError> {
        let mut conn = self.conn.lock();
        for attempt in 0..2 {
            if conn.is_none() {
                let addrs = self
                    .addr
                    .to_socket_addrs()
                    .map_err(|_| NetError::Disconnected)?
                    .collect::<Vec<_>>();
                let dialed = addrs
                    .first()
                    .ok_or(NetError::Disconnected)
                    .and_then(|a| TcpTransport::connect(a))?;
                *conn = Some(dialed);
            }
            let transport = conn.as_ref().expect("dialed above");
            if let Err(e) = transport.send(request.clone()) {
                // The request never left this side: redialing and
                // resending cannot double-execute it. A cached
                // connection usually fails here when the peer restarted.
                if let Some(t) = conn.take() {
                    t.close();
                }
                if attempt == 0 {
                    continue;
                }
                return Err(e);
            }
            // Sent. From here on the peer may execute the request, so no
            // failure is retryable.
            return match transport.recv_timeout(timeout) {
                Ok(Some(frame)) => Ok(frame),
                // Timeout with the link healthy: the reply may still be
                // in flight. Close the connection so the next call
                // cannot consume that stale reply.
                Ok(None) => {
                    if let Some(t) = conn.take() {
                        t.close();
                    }
                    Err(NetError::Disconnected)
                }
                Err(e) => {
                    if let Some(t) = conn.take() {
                        t.close();
                    }
                    Err(e)
                }
            };
        }
        Err(NetError::Disconnected)
    }

    /// Drop any cached connection (the next call redials).
    pub fn disconnect(&self) {
        if let Some(t) = self.conn.lock().take() {
            t.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> PeerServer {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        PeerServer::start(
            listener,
            Arc::new(|frame: Bytes| {
                if frame.as_ref() == b"close" {
                    None
                } else {
                    let mut reply = b"re:".to_vec();
                    reply.extend_from_slice(&frame);
                    Some(Bytes::from(reply))
                }
            }),
        )
        .unwrap()
    }

    #[test]
    fn call_roundtrips_and_serializes() {
        let server = echo_server();
        let client = PeerClient::new(server.addr().to_string());
        for i in 0..10u8 {
            let reply = client
                .call(Bytes::from(vec![b'a' + i]), Duration::from_secs(5))
                .unwrap();
            assert_eq!(&reply[..2], b"re");
            assert_eq!(reply[3], b'a' + i);
        }
        server.shutdown();
    }

    #[test]
    fn handler_none_closes_connection_and_client_redials() {
        let server = echo_server();
        let client = PeerClient::new(server.addr().to_string());
        // The close request gets no reply: the client sees the link drop.
        assert!(client
            .call(Bytes::from_static(b"close"), Duration::from_secs(5))
            .is_err());
        // The next call redials and succeeds.
        let reply = client
            .call(Bytes::from_static(b"hi"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(reply.as_ref(), b"re:hi");
        server.shutdown();
    }

    #[test]
    fn timed_out_call_poisons_connection_so_stale_reply_is_never_consumed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = PeerServer::start(
            listener,
            Arc::new(|frame: Bytes| {
                if frame.as_ref() == b"slow" {
                    std::thread::sleep(Duration::from_millis(200));
                }
                let mut reply = b"re:".to_vec();
                reply.extend_from_slice(&frame);
                Some(Bytes::from(reply))
            }),
        )
        .unwrap();
        let client = PeerClient::new(server.addr().to_string());
        // First call times out while its reply is still in flight.
        assert!(client
            .call(Bytes::from_static(b"slow"), Duration::from_millis(20))
            .is_err());
        // Give the delayed reply time to land where the old cached
        // connection would have buffered it.
        std::thread::sleep(Duration::from_millis(300));
        // The next call must answer itself, not the abandoned request.
        let reply = client
            .call(Bytes::from_static(b"fast"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(reply.as_ref(), b"re:fast");
        server.shutdown();
    }

    #[test]
    fn recv_failure_after_successful_send_is_not_resent() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let executions = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&executions);
        // The handler "executes" the request, then drops the link
        // instead of replying — the committed-but-reply-lost shape.
        let server = PeerServer::start(
            listener,
            Arc::new(move |frame: Bytes| {
                if frame.as_ref() == b"once" {
                    counted.fetch_add(1, Ordering::SeqCst);
                    None
                } else {
                    Some(frame)
                }
            }),
        )
        .unwrap();
        let client = PeerClient::new(server.addr().to_string());
        assert!(client
            .call(Bytes::from_static(b"once"), Duration::from_secs(5))
            .is_err());
        // Give any (incorrect) resend time to arrive before counting.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            executions.load(Ordering::SeqCst),
            1,
            "a request whose send succeeded must never be resent"
        );
        server.shutdown();
    }

    #[test]
    fn dead_peer_reports_disconnected() {
        let server = echo_server();
        let addr = server.addr().to_string();
        server.shutdown();
        let client = PeerClient::new(addr);
        assert!(client
            .call(Bytes::from_static(b"hi"), Duration::from_millis(200))
            .is_err());
    }
}
