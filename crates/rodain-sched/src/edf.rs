//! EDF ready queue with demand-based non-real-time reservation.

use crate::class::{Nanos, TaskMeta, TxnClass};
use rodain_obs::{Gauge, Histogram, Recorder};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Configuration of the execution-time reservation for non-real-time
/// transactions (paper §2):
///
/// > "Without deadlines the non-realtime transactions get the execution turn
/// > only when the system has no real-time transaction ready for execution.
/// > Hence, they are likely to suffer from starvation. We avoid this by
/// > reserving a fixed fraction of execution time for the non-realtime
/// > transactions. The reservation is made on a demand basis."
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReservationConfig {
    /// Fraction of busy execution time credited to non-real-time work
    /// while non-real-time transactions are queued (demand basis).
    pub fraction: f64,
    /// Cap on the accrued credit (ns) so an idle burst cannot bank an
    /// unbounded non-real-time budget.
    pub max_credit: Nanos,
}

impl Default for ReservationConfig {
    fn default() -> Self {
        ReservationConfig {
            fraction: 0.05,
            max_credit: 50_000_000, // 50 ms
        }
    }
}

#[derive(PartialEq, Eq)]
struct HeapEntry {
    key: Nanos,
    seq: u64,
    task: TaskMeta,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-deadline-first,
        // FIFO (arrival sequence) within equal deadlines.
        (Reverse(self.key), Reverse(self.seq)).cmp(&(Reverse(other.key), Reverse(other.seq)))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The modified-EDF ready queue.
///
/// Real-time transactions are ordered by absolute deadline (FIFO within
/// ties). Non-real-time transactions wait in a FIFO and are normally served
/// only when no real-time work is ready — except when the reservation
/// credit, accrued on demand as a fixed fraction of busy time, covers the
/// next non-real-time transaction's estimated cost, in which case it jumps
/// ahead of the real-time queue. Expired firm-deadline tasks are dropped at
/// [`ReadyQueue::pop`] and reported through the `expired` sink so the engine
/// can account the miss.
pub struct ReadyQueue {
    rt: BinaryHeap<HeapEntry>,
    non_rt: VecDeque<TaskMeta>,
    seq: u64,
    credit: Nanos,
    config: ReservationConfig,
    obs: Option<QueueObs>,
}

/// Scheduler metrics (see `METRICS.md`): queue-depth gauges updated on
/// every push/pop, and how late an expired firm task was when the queue
/// dropped it.
struct QueueObs {
    rt_depth: Gauge,
    non_rt_depth: Gauge,
    miss_lateness: Histogram,
}

impl ReadyQueue {
    /// Create an empty queue.
    #[must_use]
    pub fn new(config: ReservationConfig) -> Self {
        ReadyQueue {
            rt: BinaryHeap::new(),
            non_rt: VecDeque::new(),
            seq: 0,
            credit: 0,
            config,
            obs: None,
        }
    }

    /// Create an empty queue that publishes `sched_rt_depth`,
    /// `sched_non_rt_depth` and `sched_deadline_miss_lateness_ns` on `rec`.
    #[must_use]
    pub fn observed(config: ReservationConfig, rec: &Recorder) -> Self {
        let mut queue = ReadyQueue::new(config);
        queue.obs = Some(QueueObs {
            rt_depth: rec.gauge("sched_rt_depth"),
            non_rt_depth: rec.gauge("sched_non_rt_depth"),
            miss_lateness: rec.histogram("sched_deadline_miss_lateness_ns"),
        });
        queue
    }

    /// Publish current depths to the gauges (cheap: two relaxed stores).
    fn sync_depth(&self) {
        if let Some(obs) = &self.obs {
            obs.rt_depth.set(self.rt.len() as i64);
            obs.non_rt_depth.set(self.non_rt.len() as i64);
        }
    }

    /// Number of queued tasks (both classes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rt.len() + self.non_rt.len()
    }

    /// Whether no task is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of queued non-real-time tasks.
    #[must_use]
    pub fn non_rt_len(&self) -> usize {
        self.non_rt.len()
    }

    /// Currently accrued non-real-time credit (ns).
    #[must_use]
    pub fn credit(&self) -> Nanos {
        self.credit
    }

    /// Enqueue a task.
    pub fn push(&mut self, task: TaskMeta) {
        match task.class {
            TxnClass::NonRealTime => self.non_rt.push_back(task),
            _ => {
                self.seq += 1;
                self.rt.push(HeapEntry {
                    key: task.priority_key(),
                    seq: self.seq,
                    task,
                });
            }
        }
        self.sync_depth();
    }

    /// Account `busy` nanoseconds of execution. While non-real-time work is
    /// queued (demand basis), a fraction of it accrues as non-real-time
    /// credit.
    pub fn account_busy(&mut self, busy: Nanos) {
        if !self.non_rt.is_empty() {
            let earned = (busy as f64 * self.config.fraction) as Nanos;
            self.credit = (self.credit + earned).min(self.config.max_credit);
        }
    }

    /// Dequeue the next task to run at time `now`.
    ///
    /// Firm tasks whose deadline already passed are not returned; they are
    /// pushed into `expired` (the engine aborts them and counts the miss).
    /// Soft tasks are returned even when late.
    pub fn pop(&mut self, now: Nanos, expired: &mut Vec<TaskMeta>) -> Option<TaskMeta> {
        let misses_before = expired.len();
        let popped = self.pop_inner(now, expired);
        if let Some(obs) = &self.obs {
            for task in &expired[misses_before..] {
                if let Some(deadline) = task.deadline {
                    obs.miss_lateness.record(now.saturating_sub(deadline));
                }
            }
        }
        self.sync_depth();
        popped
    }

    fn pop_inner(&mut self, now: Nanos, expired: &mut Vec<TaskMeta>) -> Option<TaskMeta> {
        // Reservation: serve non-real-time work first when its credit
        // covers the estimated cost.
        if let Some(front) = self.non_rt.front() {
            if self.credit >= front.est_cost {
                let task = self.non_rt.pop_front().expect("front exists");
                self.credit -= task.est_cost;
                return Some(task);
            }
        }
        while let Some(entry) = self.rt.pop() {
            let task = entry.task;
            if task.class == TxnClass::Firm && task.expired(now) {
                expired.push(task);
                continue;
            }
            return Some(task);
        }
        // No real-time work ready: non-real-time runs for free.
        self.non_rt.pop_front()
    }

    /// Peek the most urgent real-time deadline, if any (used by preemption
    /// decisions in the simulator).
    #[must_use]
    pub fn earliest_rt_deadline(&self) -> Option<Nanos> {
        self.rt.peek().map(|e| e.key)
    }

    /// Drop every queued task (node failover clears the queue).
    pub fn clear(&mut self) {
        self.rt.clear();
        self.non_rt.clear();
        self.credit = 0;
        self.sync_depth();
    }
}

impl std::fmt::Debug for ReadyQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadyQueue")
            .field("rt", &self.rt.len())
            .field("non_rt", &self.non_rt.len())
            .field("credit_ns", &self.credit)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_store::TxnId;

    fn q() -> ReadyQueue {
        ReadyQueue::new(ReservationConfig::default())
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut queue = q();
        queue.push(TaskMeta::firm(TxnId(1), 0, 3_000, 10));
        queue.push(TaskMeta::firm(TxnId(2), 0, 1_000, 10));
        queue.push(TaskMeta::firm(TxnId(3), 0, 2_000, 10));
        let mut expired = Vec::new();
        assert_eq!(queue.pop(0, &mut expired).unwrap().txn, TxnId(2));
        assert_eq!(queue.pop(0, &mut expired).unwrap().txn, TxnId(3));
        assert_eq!(queue.pop(0, &mut expired).unwrap().txn, TxnId(1));
        assert!(expired.is_empty());
    }

    #[test]
    fn fifo_within_equal_deadlines() {
        let mut queue = q();
        for id in 1..=4u64 {
            queue.push(TaskMeta::firm(TxnId(id), 0, 1_000, 10));
        }
        let mut expired = Vec::new();
        for id in 1..=4u64 {
            assert_eq!(queue.pop(0, &mut expired).unwrap().txn, TxnId(id));
        }
    }

    #[test]
    fn expired_firm_tasks_are_dropped_and_reported() {
        let mut queue = q();
        queue.push(TaskMeta::firm(TxnId(1), 0, 100, 10));
        queue.push(TaskMeta::firm(TxnId(2), 0, 10_000, 10));
        let mut expired = Vec::new();
        let got = queue.pop(5_000, &mut expired).unwrap();
        assert_eq!(got.txn, TxnId(2));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].txn, TxnId(1));
    }

    #[test]
    fn late_soft_tasks_still_run() {
        let mut queue = q();
        queue.push(TaskMeta::soft(TxnId(1), 0, 100, 10));
        let mut expired = Vec::new();
        assert_eq!(queue.pop(5_000, &mut expired).unwrap().txn, TxnId(1));
        assert!(expired.is_empty());
    }

    #[test]
    fn non_rt_runs_when_no_rt_ready() {
        let mut queue = q();
        queue.push(TaskMeta::non_real_time(TxnId(1), 0, 1_000));
        let mut expired = Vec::new();
        assert_eq!(queue.pop(0, &mut expired).unwrap().txn, TxnId(1));
    }

    #[test]
    fn rt_preferred_over_non_rt_without_credit() {
        let mut queue = q();
        queue.push(TaskMeta::non_real_time(TxnId(1), 0, 1_000));
        queue.push(TaskMeta::firm(TxnId(2), 0, 1_000, 10));
        let mut expired = Vec::new();
        assert_eq!(queue.pop(0, &mut expired).unwrap().txn, TxnId(2));
        assert_eq!(queue.pop(0, &mut expired).unwrap().txn, TxnId(1));
    }

    #[test]
    fn reservation_lets_non_rt_jump_ahead() {
        let mut queue = ReadyQueue::new(ReservationConfig {
            fraction: 0.10,
            max_credit: 1_000_000,
        });
        queue.push(TaskMeta::non_real_time(TxnId(1), 0, 1_000));
        queue.push(TaskMeta::firm(TxnId(2), 0, 1_000_000, 10));
        // 20 µs of busy time at 10 % → 2 µs credit ≥ 1 µs est cost.
        queue.account_busy(20_000);
        assert_eq!(queue.credit(), 2_000);
        let mut expired = Vec::new();
        assert_eq!(queue.pop(0, &mut expired).unwrap().txn, TxnId(1));
        // Credit was spent.
        assert_eq!(queue.credit(), 1_000);
        assert_eq!(queue.pop(0, &mut expired).unwrap().txn, TxnId(2));
    }

    #[test]
    fn credit_accrues_only_on_demand() {
        let mut queue = q();
        // No non-RT work queued: busy time earns nothing.
        queue.account_busy(1_000_000);
        assert_eq!(queue.credit(), 0);
        queue.push(TaskMeta::non_real_time(TxnId(1), 0, u64::MAX));
        queue.account_busy(1_000_000);
        assert!(queue.credit() > 0);
    }

    #[test]
    fn credit_is_capped() {
        let mut queue = ReadyQueue::new(ReservationConfig {
            fraction: 1.0,
            max_credit: 500,
        });
        queue.push(TaskMeta::non_real_time(TxnId(1), 0, u64::MAX));
        queue.account_busy(10_000);
        assert_eq!(queue.credit(), 500);
    }

    #[test]
    fn earliest_rt_deadline_peek() {
        let mut queue = q();
        assert_eq!(queue.earliest_rt_deadline(), None);
        queue.push(TaskMeta::firm(TxnId(1), 0, 5_000, 10));
        queue.push(TaskMeta::firm(TxnId(2), 0, 2_000, 10));
        assert_eq!(queue.earliest_rt_deadline(), Some(2_000));
    }

    #[test]
    fn observed_queue_publishes_depth_and_lateness() {
        let rec = Recorder::new();
        let mut queue = ReadyQueue::observed(ReservationConfig::default(), &rec);
        queue.push(TaskMeta::firm(TxnId(1), 0, 100, 10));
        queue.push(TaskMeta::non_real_time(TxnId(2), 0, 10));
        let snap = rec.snapshot();
        assert_eq!(snap.gauge("sched_rt_depth"), Some(1));
        assert_eq!(snap.gauge("sched_non_rt_depth"), Some(1));
        // Pop at t=5000: the firm task missed its deadline by 4900 ns.
        let mut expired = Vec::new();
        queue.pop(5_000, &mut expired).unwrap();
        assert_eq!(expired.len(), 1);
        let snap = rec.snapshot();
        let lateness = snap.histogram("sched_deadline_miss_lateness_ns").unwrap();
        assert_eq!(lateness.count, 1);
        assert!(lateness.max >= 4_900);
        assert_eq!(snap.gauge("sched_rt_depth"), Some(0));
    }

    #[test]
    fn clear_empties_everything() {
        let mut queue = q();
        queue.push(TaskMeta::firm(TxnId(1), 0, 5_000, 10));
        queue.push(TaskMeta::non_real_time(TxnId(2), 0, 10));
        queue.clear();
        assert!(queue.is_empty());
        let mut expired = Vec::new();
        assert!(queue.pop(0, &mut expired).is_none());
    }
}
