//! # rodain-net — node-to-node transport
//!
//! The RODAIN Primary and Mirror nodes exchange log records, commit
//! acknowledgements, watchdog heartbeats and recovery traffic. The paper's
//! prototype ran on two Chorus/ClassiX machines on a LAN; this crate
//! abstracts the link as an ordered, reliable, *crash-stop* duplex frame
//! channel ([`Transport`]) with three implementations:
//!
//! * [`InProcTransport`] — a crossbeam channel pair for tests and
//!   single-process deployments;
//! * [`TcpTransport`] — length-prefixed frames over `std::net::TcpStream`,
//!   for real two-machine deployments;
//! * [`LossyLink`] — a failure-injection wrapper that can drop, black-hole,
//!   sever, delay, duplicate or corrupt traffic on an underlying link, used
//!   by the fault-tolerance tests and the `rodain-chaos` harness.
//!
//! Frames are opaque [`Bytes`]; `rodain-node` defines the message codec on
//! top.
//!
//! For short request/response exchanges between cluster nodes (shard
//! maps, networked 2PC, migration) the [`PeerServer`] / [`PeerClient`]
//! pair manages connections *outside* the engine: the application
//! supplies a bytes-in/bytes-out handler and never touches a socket.
//!
//! The event-driven server front-end (`rodain-server`) is built on this
//! crate's readiness [`Poller`] — level-triggered epoll on Linux with a
//! `poll(2)` fallback on other unix systems, plus a cross-thread
//! [`Waker`] — so one loop thread can own thousands of non-blocking
//! client sockets (DESIGN.md §17).

// `deny` rather than `forbid`: the readiness poller's raw-syscall shim
// (`poll::sys`) is the one place allowed to use FFI, under a scoped
// `#[allow(unsafe_code)]` with per-call safety comments.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod inproc;
mod lossy;
mod peer;
#[cfg(unix)]
mod poll;
mod tcp;

pub use error::NetError;
pub use inproc::InProcTransport;
pub use lossy::{LinkControl, LossyLink};
pub use peer::{PeerClient, PeerHandler, PeerServer};
#[cfg(unix)]
pub use poll::{raise_nofile_limit, Event, Events, Interest, Poller, Waker};
pub use tcp::TcpTransport;

/// Re-export of the frame buffer type used by [`Transport`], so adapters in
/// crates without their own `bytes` dependency can implement the trait.
pub use bytes::Bytes;
use std::time::Duration;

/// An ordered, reliable duplex frame channel between two nodes.
///
/// Semantics: frames arrive in send order or not at all; once any call
/// returns [`NetError::Disconnected`] the peer is gone for good (crash-stop
/// — a recovered node opens a *new* transport).
pub trait Transport: Send + Sync {
    /// Queue a frame for the peer.
    fn send(&self, frame: Bytes) -> Result<(), NetError>;

    /// Receive the next frame, waiting at most `timeout`.
    /// `Ok(None)` means the timeout elapsed with the link still healthy.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NetError>;

    /// Non-blocking receive.
    fn try_recv(&self) -> Result<Option<Bytes>, NetError> {
        self.recv_timeout(Duration::ZERO)
    }

    /// Whether the link is still believed to be up.
    fn is_connected(&self) -> bool;

    /// Close the link (idempotent). Pending frames may be lost.
    fn close(&self);
}
