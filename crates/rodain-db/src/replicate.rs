//! Commit-path replication: mirror shipping, contingency disk, volatile.

use crate::error::TxnError;
use crate::options::MirrorLossPolicy;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rodain_log::{GroupCommitLog, LogRecord, LogStorage, LogStorageConfig};
use rodain_net::Transport;
use rodain_node::Message;
use rodain_occ::Csn;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The engine's current durability/replication mode (observable status).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicationMode {
    /// No durability: commits complete at validation.
    Volatile,
    /// Single node: synchronous group-commit to the local disk.
    Contingency,
    /// Primary + live mirror: the mirror's commit acknowledgement gates
    /// the commit.
    Mirrored,
}

/// A commit ticket: resolves when the commit group is durable/acknowledged.
pub(crate) type CommitTicket = Receiver<Result<(), TxnError>>;

fn resolved(result: Result<(), TxnError>) -> CommitTicket {
    let (tx, rx) = bounded(1);
    let _ = tx.send(result);
    rx
}

pub(crate) enum Replicator {
    Volatile,
    Contingency(GroupCommitLog),
    Mirrored(MirrorLink),
}

impl Replicator {
    pub(crate) fn contingency(dir: &std::path::Path) -> std::io::Result<Replicator> {
        let storage = LogStorage::open(LogStorageConfig::new(dir))?;
        Ok(Replicator::Contingency(GroupCommitLog::spawn(storage, 64)))
    }

    pub(crate) fn mode(&self) -> ReplicationMode {
        match self {
            Replicator::Volatile => ReplicationMode::Volatile,
            Replicator::Contingency(_) => ReplicationMode::Contingency,
            Replicator::Mirrored(link) if link.is_down() => match link.fallback {
                Some(_) => ReplicationMode::Contingency,
                None => ReplicationMode::Volatile,
            },
            Replicator::Mirrored(_) => ReplicationMode::Mirrored,
        }
    }

    /// Checkpoint support: truncate the local disk log below `upto` (only
    /// meaningful when a local log exists). Returns removed segment count.
    pub(crate) fn truncate_before(&self, upto: Csn) -> std::io::Result<usize> {
        match self {
            Replicator::Contingency(group) => group.truncate_before(upto),
            Replicator::Mirrored(link) => match &link.fallback {
                Some(group) => group.truncate_before(upto),
                None => Ok(0),
            },
            Replicator::Volatile => Ok(0),
        }
    }

    /// Append an informational record (checkpoint marker) without gating a
    /// commit on it.
    pub(crate) fn append_info(&self, record: LogRecord) {
        match self {
            Replicator::Contingency(group) => {
                let _ = group.append_async(vec![record]);
            }
            Replicator::Mirrored(link) => {
                if !link.is_down() {
                    let _ = link.transport.send(Message::Records(vec![record]).encode());
                } else if let Some(group) = &link.fallback {
                    let _ = group.append_async(vec![record]);
                }
            }
            Replicator::Volatile => {}
        }
    }

    /// Ship a commit group; the ticket resolves when the transaction may
    /// report success to the client.
    pub(crate) fn ship(&self, csn: Csn, records: Vec<LogRecord>) -> CommitTicket {
        match self {
            Replicator::Volatile => resolved(Ok(())),
            Replicator::Contingency(group) => {
                // Synchronous local disk: the log writer thread batches
                // concurrent committers into one flush (group commit).
                resolved(
                    group
                        .commit_sync(records)
                        .map_err(|e| TxnError::Replication(e.to_string())),
                )
            }
            Replicator::Mirrored(link) => link.ship(csn, records),
        }
    }
}

struct PendingCommit {
    records: Vec<LogRecord>,
    done: Sender<Result<(), TxnError>>,
}

/// The primary's side of the log-shipping protocol.
pub(crate) struct MirrorLink {
    transport: Arc<dyn Transport>,
    pending: Arc<Mutex<HashMap<u64, PendingCommit>>>,
    down: Arc<AtomicBool>,
    /// Pre-opened contingency log used if/when the mirror dies.
    fallback: Option<Arc<GroupCommitLog>>,
    acks: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    ack_thread: Option<std::thread::JoinHandle<()>>,
}

impl MirrorLink {
    /// Wire up a link over `transport` (the snapshot handshake has already
    /// completed). `loss_policy` decides the degraded mode.
    pub(crate) fn new(
        transport: Arc<dyn Transport>,
        loss_policy: &MirrorLossPolicy,
    ) -> std::io::Result<MirrorLink> {
        let fallback = match loss_policy {
            MirrorLossPolicy::Contingency { dir } => {
                let storage = LogStorage::open(LogStorageConfig::new(dir))?;
                Some(Arc::new(GroupCommitLog::spawn(storage, 64)))
            }
            MirrorLossPolicy::ContinueVolatile => None,
        };
        let pending: Arc<Mutex<HashMap<u64, PendingCommit>>> = Arc::new(Mutex::new(HashMap::new()));
        let down = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let acks = Arc::new(AtomicU64::new(0));

        let thread_transport = Arc::clone(&transport);
        let thread_pending = Arc::clone(&pending);
        let thread_down = Arc::clone(&down);
        let thread_stop = Arc::clone(&stop);
        let thread_fallback = fallback.clone();
        let thread_acks = Arc::clone(&acks);
        let ack_thread = std::thread::Builder::new()
            .name("rodain-ack-reader".into())
            .spawn(move || {
                let mut hb_seq = 0u64;
                let mut last_hb = std::time::Instant::now();
                loop {
                    if thread_stop.load(Ordering::Acquire) {
                        return;
                    }
                    match thread_transport.recv_timeout(Duration::from_millis(20)) {
                        Ok(Some(frame)) => {
                            if let Ok(Message::CommitAck { csn, .. }) = Message::decode(frame) {
                                let entry = thread_pending.lock().remove(&csn.0);
                                if let Some(p) = entry {
                                    thread_acks.fetch_add(1, Ordering::Relaxed);
                                    let _ = p.done.send(Ok(()));
                                }
                            }
                            // Heartbeats and anything else just prove
                            // liveness, which recv success already did.
                        }
                        Ok(None) => {}
                        Err(_) => {
                            // Mirror is gone: degrade.
                            thread_down.store(true, Ordering::Release);
                            let drained: Vec<PendingCommit> = {
                                let mut map = thread_pending.lock();
                                map.drain().map(|(_, p)| p).collect()
                            };
                            for p in drained {
                                let result = match &thread_fallback {
                                    Some(group) => group
                                        .commit_sync(p.records)
                                        .map_err(|e| TxnError::Replication(e.to_string())),
                                    None => Ok(()),
                                };
                                let _ = p.done.send(result);
                            }
                            return;
                        }
                    }
                    // Keep the mirror's watchdog fed while idle.
                    if last_hb.elapsed() >= Duration::from_millis(50) {
                        last_hb = std::time::Instant::now();
                        hb_seq += 1;
                        let _ = thread_transport.send(Message::Heartbeat { seq: hb_seq }.encode());
                    }
                }
            })
            .expect("spawn ack reader");

        Ok(MirrorLink {
            transport,
            pending,
            down,
            fallback,
            acks,
            stop,
            ack_thread: Some(ack_thread),
        })
    }

    pub(crate) fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// Commit acknowledgements received.
    pub(crate) fn acks(&self) -> u64 {
        self.acks.load(Ordering::Relaxed)
    }

    fn ship_degraded(&self, records: Vec<LogRecord>) -> CommitTicket {
        match &self.fallback {
            Some(group) => resolved(
                group
                    .commit_sync(records)
                    .map_err(|e| TxnError::Replication(e.to_string())),
            ),
            None => resolved(Ok(())),
        }
    }

    fn ship(&self, csn: Csn, records: Vec<LogRecord>) -> CommitTicket {
        if self.is_down() {
            return self.ship_degraded(records);
        }
        let (tx, rx) = bounded(1);
        {
            let mut pending = self.pending.lock();
            pending.insert(
                csn.0,
                PendingCommit {
                    records: records.clone(),
                    done: tx,
                },
            );
        }
        if self
            .transport
            .send(Message::Records(records.clone()).encode())
            .is_err()
        {
            // Send failed: degrade immediately; the ack thread will drain
            // the rest, but resolve this one here.
            self.down.store(true, Ordering::Release);
            self.pending.lock().remove(&csn.0);
            return self.ship_degraded(records);
        }
        rx
    }
}

impl Drop for MirrorLink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.transport.close();
        if let Some(handle) = self.ack_thread.take() {
            let _ = handle.join();
        }
    }
}
