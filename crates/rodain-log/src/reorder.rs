//! Mirror-side log reordering.

use crate::record::{LogRecord, Lsn, RecordKind};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Ts, TxnId, Value};
use std::collections::{BTreeMap, HashMap};

/// A fully received, committed transaction, ready to be applied to the
/// database copy and appended (reordered) to the disk log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommittedTxn {
    /// The transaction.
    pub txn: TxnId,
    /// Commit sequence number (true validation order).
    pub csn: Csn,
    /// Serialization timestamp the after-images are installed at.
    pub ser_ts: Ts,
    /// After-images in the transaction's write order.
    pub writes: Vec<(ObjectId, Value)>,
    /// LSN of the commit record (acknowledged back to the primary).
    pub commit_lsn: Lsn,
}

impl CommittedTxn {
    /// Re-materialize the reordered record group (writes then commit) for
    /// appending to the mirror's disk log.
    #[must_use]
    pub fn to_records(&self) -> Vec<LogRecord> {
        let mut out = Vec::with_capacity(self.writes.len() + 1);
        for (i, (oid, image)) in self.writes.iter().enumerate() {
            out.push(LogRecord {
                lsn: Lsn(self
                    .commit_lsn
                    .0
                    .saturating_sub(self.writes.len() as u64 - i as u64)),
                txn: self.txn,
                kind: RecordKind::Write {
                    oid: *oid,
                    image: image.clone(),
                },
            });
        }
        out.push(LogRecord {
            lsn: self.commit_lsn,
            txn: self.txn,
            kind: RecordKind::Commit {
                csn: self.csn,
                ser_ts: self.ser_ts,
                n_writes: self.writes.len() as u32,
            },
        });
        out
    }
}

/// What [`ReorderBuffer::ingest`] did with a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// A write record was buffered pending its commit record.
    Buffered,
    /// A commit record completed a transaction group. The mirror sends the
    /// acknowledgement *now* — the paper's commit gate — even though the
    /// transaction may still wait in the buffer for earlier CSNs.
    Committed(Csn),
    /// An abort record discarded the transaction's pending writes.
    Aborted(TxnId),
    /// A checkpoint marker passed through.
    Checkpoint(Csn),
}

/// Errors surfaced while ingesting the log stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorderError {
    /// A commit record announced more writes than were received — records
    /// were lost on the link.
    MissingWrites {
        /// The incomplete transaction.
        txn: TxnId,
        /// Writes announced by the commit record.
        expected: u32,
        /// Writes actually buffered.
        got: u32,
    },
    /// Two commit records carried the same CSN.
    DuplicateCsn(Csn),
}

impl std::fmt::Display for ReorderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReorderError::MissingWrites { txn, expected, got } => write!(
                f,
                "commit of {txn:?} announced {expected} writes but {got} arrived"
            ),
            ReorderError::DuplicateCsn(csn) => write!(f, "duplicate commit {csn:?}"),
        }
    }
}

impl std::error::Error for ReorderError {}

/// Regroups the interleaved log stream per transaction and releases
/// committed transactions in true validation (CSN) order (paper §3):
///
/// > "The logs are reordered based on transactions before the Mirror Node
/// > updates its database copy and stores the logs on disk. The true
/// > validation order of the transactions is used for the reordering. […]
/// > the recovery can simply pass the log once from the beginning to the
/// > end omitting only the transactions that do not have a commit record."
///
/// The buffer also guarantees the mirror "never needs to undo any changes":
/// a transaction's writes are released only once its commit record arrived
/// *and* every transaction with a smaller CSN has been released.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    pending: HashMap<TxnId, Vec<(ObjectId, Value)>>,
    ready: BTreeMap<Csn, CommittedTxn>,
    next_csn: Csn,
    released: u64,
    aborted: u64,
}

impl ReorderBuffer {
    /// A buffer expecting the stream to start at [`Csn::FIRST`].
    #[must_use]
    pub fn new() -> Self {
        Self::starting_at(Csn::FIRST)
    }

    /// A buffer joining mid-stream (mirror catch-up after a snapshot whose
    /// last covered commit was `start.0 - 1`).
    #[must_use]
    pub fn starting_at(start: Csn) -> Self {
        ReorderBuffer {
            pending: HashMap::new(),
            ready: BTreeMap::new(),
            next_csn: start,
            released: 0,
            aborted: 0,
        }
    }

    /// The next CSN the buffer will release.
    #[must_use]
    pub fn next_csn(&self) -> Csn {
        self.next_csn
    }

    /// Transactions buffered awaiting their commit record.
    #[must_use]
    pub fn pending_txns(&self) -> usize {
        self.pending.len()
    }

    /// Committed transactions waiting for earlier CSNs.
    #[must_use]
    pub fn ready_backlog(&self) -> usize {
        self.ready.len()
    }

    /// Committed transactions released so far.
    #[must_use]
    pub fn released(&self) -> u64 {
        self.released
    }

    /// The transaction a buffered commit with this CSN belongs to (present
    /// between its ingest and its release by [`ReorderBuffer::drain_ready`]).
    #[must_use]
    pub fn committed_txn(&self, csn: Csn) -> Option<TxnId> {
        self.ready.get(&csn).map(|c| c.txn)
    }

    /// Ingest one record from the primary.
    pub fn ingest(&mut self, record: LogRecord) -> Result<IngestOutcome, ReorderError> {
        match record.kind {
            RecordKind::Write { oid, image } => {
                self.pending
                    .entry(record.txn)
                    .or_default()
                    .push((oid, image));
                Ok(IngestOutcome::Buffered)
            }
            RecordKind::Commit {
                csn,
                ser_ts,
                n_writes,
            } => {
                let writes = self.pending.remove(&record.txn).unwrap_or_default();
                if writes.len() as u32 != n_writes {
                    return Err(ReorderError::MissingWrites {
                        txn: record.txn,
                        expected: n_writes,
                        got: writes.len() as u32,
                    });
                }
                // A commit below the starting CSN is a replay duplicate
                // (e.g. the primary resent after an ack was lost): ignore.
                if csn < self.next_csn {
                    return Ok(IngestOutcome::Committed(csn));
                }
                let committed = CommittedTxn {
                    txn: record.txn,
                    csn,
                    ser_ts,
                    writes,
                    commit_lsn: record.lsn,
                };
                if self.ready.insert(csn, committed).is_some() {
                    return Err(ReorderError::DuplicateCsn(csn));
                }
                Ok(IngestOutcome::Committed(csn))
            }
            RecordKind::Abort => {
                self.pending.remove(&record.txn);
                self.aborted += 1;
                Ok(IngestOutcome::Aborted(record.txn))
            }
            RecordKind::Checkpoint { upto, .. } => Ok(IngestOutcome::Checkpoint(upto)),
        }
    }

    /// Release the contiguous run of committed transactions starting at
    /// [`ReorderBuffer::next_csn`], in validation order.
    pub fn drain_ready(&mut self) -> Vec<CommittedTxn> {
        let mut out = Vec::new();
        while let Some(entry) = self.ready.first_entry() {
            if *entry.key() != self.next_csn {
                break;
            }
            out.push(entry.remove());
            self.next_csn = self.next_csn.next();
            self.released += 1;
        }
        out
    }

    /// Discard the writes of every transaction without a commit record
    /// (primary failed: "all transactions that are not yet committed are
    /// considered aborted, and their modifications … are not performed on
    /// the database copy in the Mirror Node").
    pub fn drop_uncommitted(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(lsn: u64, txn: u64, oid: u64, v: i64) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Write {
                oid: ObjectId(oid),
                image: Value::Int(v),
            },
        }
    }

    fn commit(lsn: u64, txn: u64, csn: u64, n: u32) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Commit {
                csn: Csn(csn),
                ser_ts: Ts(csn * 100),
                n_writes: n,
            },
        }
    }

    #[test]
    fn interleaved_transactions_are_regrouped() {
        let mut rb = ReorderBuffer::new();
        // Two txns' write records interleave on the wire.
        assert_eq!(rb.ingest(write(1, 1, 10, 1)), Ok(IngestOutcome::Buffered));
        assert_eq!(rb.ingest(write(2, 2, 20, 2)), Ok(IngestOutcome::Buffered));
        assert_eq!(rb.ingest(write(3, 1, 11, 1)), Ok(IngestOutcome::Buffered));
        assert_eq!(
            rb.ingest(commit(4, 1, 1, 2)),
            Ok(IngestOutcome::Committed(Csn(1)))
        );
        let first = rb.drain_ready();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].txn, TxnId(1));
        assert_eq!(first[0].writes.len(), 2);
        assert_eq!(
            rb.ingest(commit(5, 2, 2, 1)),
            Ok(IngestOutcome::Committed(Csn(2)))
        );
        let second = rb.drain_ready();
        assert_eq!(second[0].txn, TxnId(2));
        assert_eq!(rb.released(), 2);
    }

    #[test]
    fn out_of_order_commits_wait_for_the_gap() {
        let mut rb = ReorderBuffer::new();
        rb.ingest(commit(1, 2, 2, 0)).unwrap();
        // CSN 1 has not arrived: nothing releases.
        assert!(rb.drain_ready().is_empty());
        assert_eq!(rb.ready_backlog(), 1);
        rb.ingest(commit(2, 1, 1, 0)).unwrap();
        let out = rb.drain_ready();
        assert_eq!(
            out.iter().map(|c| c.csn).collect::<Vec<_>>(),
            vec![Csn(1), Csn(2)]
        );
    }

    #[test]
    fn abort_discards_pending_writes() {
        let mut rb = ReorderBuffer::new();
        rb.ingest(write(1, 1, 10, 1)).unwrap();
        assert_eq!(
            rb.ingest(LogRecord {
                lsn: Lsn(2),
                txn: TxnId(1),
                kind: RecordKind::Abort,
            }),
            Ok(IngestOutcome::Aborted(TxnId(1)))
        );
        assert_eq!(rb.pending_txns(), 0);
        assert!(rb.drain_ready().is_empty());
    }

    #[test]
    fn missing_write_records_are_detected() {
        let mut rb = ReorderBuffer::new();
        rb.ingest(write(1, 1, 10, 1)).unwrap();
        match rb.ingest(commit(2, 1, 1, 3)) {
            Err(ReorderError::MissingWrites { expected, got, .. }) => {
                assert_eq!((expected, got), (3, 1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_csn_is_an_error() {
        let mut rb = ReorderBuffer::new();
        rb.ingest(commit(1, 1, 5, 0)).unwrap();
        assert_eq!(
            rb.ingest(commit(2, 2, 5, 0)),
            Err(ReorderError::DuplicateCsn(Csn(5)))
        );
    }

    #[test]
    fn replayed_old_commit_is_ignored() {
        let mut rb = ReorderBuffer::starting_at(Csn(10));
        assert_eq!(
            rb.ingest(commit(1, 1, 4, 0)),
            Ok(IngestOutcome::Committed(Csn(4)))
        );
        assert!(rb.drain_ready().is_empty());
        assert_eq!(rb.ready_backlog(), 0);
    }

    #[test]
    fn drop_uncommitted_counts() {
        let mut rb = ReorderBuffer::new();
        rb.ingest(write(1, 1, 10, 1)).unwrap();
        rb.ingest(write(2, 2, 20, 2)).unwrap();
        assert_eq!(rb.drop_uncommitted(), 2);
        assert_eq!(rb.pending_txns(), 0);
    }

    #[test]
    fn committed_txn_rematerializes_records() {
        let ct = CommittedTxn {
            txn: TxnId(3),
            csn: Csn(7),
            ser_ts: Ts(700),
            writes: vec![(ObjectId(1), Value::Int(1)), (ObjectId(2), Value::Int(2))],
            commit_lsn: Lsn(30),
        };
        let recs = ct.to_records();
        assert_eq!(recs.len(), 3);
        assert!(recs[2].is_commit());
        assert_eq!(recs[2].lsn, Lsn(30));
        assert!(recs.iter().all(|r| r.txn == TxnId(3)));
    }

    #[test]
    fn read_only_commit_releases_immediately() {
        let mut rb = ReorderBuffer::new();
        rb.ingest(commit(1, 9, 1, 0)).unwrap();
        let out = rb.drain_ready();
        assert_eq!(out.len(), 1);
        assert!(out[0].writes.is_empty());
    }
}
