//! # rodain-workload — telecom workload generation
//!
//! The paper's experimental study (§4) drives the prototype with an
//! off-line generated test file:
//!
//! > "All transactions arrive at the RODAIN Prototype through a specific
//! > interface process, that reads the load descriptions from an off-line
//! > generated test file. […] The test database, containing 30 000 data
//! > objects, represents a number translation service. The workload in a
//! > test session consists of a variable mix of two transactions, one
//! > simple read-only transaction and the other a simple write transaction."
//!
//! This crate reproduces that flow:
//!
//! * [`NumberTranslationDb`] — the test database: subscriber numbers mapped
//!   to routing records;
//! * [`WorkloadSpec`] — all knobs of a test session (arrival rate, write
//!   fraction, deadlines, transaction shapes, seed);
//! * [`TraceGenerator`] — deterministic Poisson arrival process producing a
//!   [`Trace`] of [`TxnRequest`]s;
//! * [`Trace::write_to`] / [`Trace::read_from`] — the "off-line generated
//!   test file" format, so experiments are replayable byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod schema;
mod spec;
mod trace;

pub use gen::TraceGenerator;
pub use schema::NumberTranslationDb;
pub use spec::{AccessPattern, TxnMixEntry, WorkloadSpec};
pub use trace::{Trace, TraceError, TxnKind, TxnRequest};
