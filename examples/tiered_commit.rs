//! Tiered durability: one engine, three commit gates.
//!
//! Run with: `cargo run --release --example tiered_commit`
//!
//! Every transaction picks the durability its commit waits for via
//! `TxnOptions::with_durability`, and `Rodain::submit` hands back a
//! `CommitFuture` instead of blocking the connection — so a producer can
//! keep submitting while earlier commits drain through the group-commit
//! log. The receipt's `acked_tier` reports the durability actually
//! achieved, which is capped by the engine's deployment mode: this example
//! runs in contingency mode (a node alone with a local disk log), where a
//! `Volatile` request skips the flush wait and anything stronger group-
//! commits to disk before resolving (`DiskFsynced`).

use rodain::db::DurabilityTier;
use rodain::sched::OverloadConfig;
use rodain::{ObjectId, Rodain, TxnOptions, Value};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join(format!("rodain-tiered-{}", std::process::id()));
    let db = Rodain::builder()
        .workers(2)
        .contingency_log(&dir)
        // The pipelined burst below keeps hundreds of commits in flight at
        // once; raise the admission ceiling so overload control does not
        // shed them (this example measures the pipeline, not admission).
        .overload(OverloadConfig {
            base_limit: 1_024,
            min_limit: 1_024,
            ..OverloadConfig::default()
        })
        .build()
        .expect("engine with contingency log");
    for i in 0..128u64 {
        db.load_initial(ObjectId(i), Value::Int(0));
    }

    // Blocking commits, one per tier: execute() waits for the chosen gate.
    println!("blocking execute(), per requested tier:");
    for tier in DurabilityTier::ALL {
        let started = Instant::now();
        let receipt = db
            .execute(
                TxnOptions::soft_ms(1_000).with_durability(tier),
                move |ctx| {
                    let oid = ObjectId(tier.code() as u64);
                    let v = ctx.read(oid)?.unwrap().as_int().unwrap();
                    ctx.write(oid, Value::Int(v + 1))?;
                    Ok(None)
                },
            )
            .expect("commit");
        println!(
            "  requested {:<12} achieved {:<12} csn {:<4} in {:?}",
            tier.to_string(),
            receipt.acked_tier.to_string(),
            receipt.csn.0,
            started.elapsed()
        );
    }

    // Pipelined commits: submit the whole burst, then collect the futures.
    // The submit loop returns long before the disk gate resolves.
    const BURST: u64 = 256;
    let submit_started = Instant::now();
    let futures: Vec<_> = (0..BURST)
        .map(|i| {
            db.submit(
                TxnOptions::soft_ms(10_000).with_durability(DurabilityTier::DiskFsynced),
                move |ctx| {
                    let oid = ObjectId(i % 128);
                    let v = ctx.read(oid)?.unwrap().as_int().unwrap();
                    ctx.write(oid, Value::Int(v + 1))?;
                    Ok(None)
                },
            )
        })
        .collect();
    let submitted_in = submit_started.elapsed();
    let mut durable = 0u64;
    for fut in futures {
        if fut.wait().expect("commit").acked_tier >= DurabilityTier::DiskFsynced {
            durable += 1;
        }
    }
    println!(
        "\npipelined submit(): {BURST} disk-fsynced commits — submitted in {submitted_in:?}, \
         all durable after {:?} ({durable} at DiskFsynced)",
        submit_started.elapsed()
    );

    let snapshot = db.metrics();
    for tier in DurabilityTier::ALL {
        let name = format!("engine_commit_wait_ns{{tier=\"{}\"}}", tier.label());
        if let Some(h) = snapshot.histogram(&name) {
            println!(
                "{name}: {} commits, p50 {:.1} µs, p99 {:.1} µs",
                h.count,
                h.percentile(0.50) as f64 / 1e3,
                h.percentile(0.99) as f64 / 1e3,
            );
        }
    }

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
