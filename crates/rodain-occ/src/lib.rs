//! # rodain-occ — optimistic concurrency control for real-time databases
//!
//! RODAIN validates transactions with **OCC-DATI** (*Optimistic Concurrency
//! Control with Dynamic Adjustment of serialization order using Timestamp
//! Intervals*, Lindström & Raatikainen 1999), created by combining the
//! features of OCC-DA (Lam, Lam & Hung 1997) and OCC-TI (Lee & Son 1993).
//! The protocol reduces the number of unnecessary restarts compared to
//! classical forward validation: instead of restarting every active
//! transaction that conflicts with the validating one, conflicting
//! transactions are *dynamically re-serialized* — their permissible
//! timestamp interval is shrunk — and only transactions whose interval
//! becomes empty must restart.
//!
//! This crate implements the full protocol family so the paper's choice can
//! be benchmarked against its ancestors:
//!
//! | Protocol | Intervals | Adjustment point | Conflict resolution |
//! |---|---|---|---|
//! | [`OccBc`]   | no  | validation | restart every conflicting active txn (broadcast commit) |
//! | [`OccDa`]   | ub only | validation | readers of validated writes re-serialized *before*; write-write restarts |
//! | [`OccTi`]   | yes | read phase **and** validation | full dynamic adjustment, eager pruning |
//! | [`OccDati`] | yes | validation only | full dynamic adjustment, deferred pruning |
//! | [`TwoPlHp`] | n/a (locks) | access time | high-priority requester wounds lower-priority holders |
//!
//! All controllers implement [`ConcurrencyController`]. Validation is
//! *atomic* (a single critical section per controller), matching the paper's
//! "transactions are validated atomically", and on success the after-images
//! are installed into the store inside the critical section, so the store
//! always reflects a prefix of the validation order.
//!
//! Two timestamp domains are involved (see DESIGN.md §6.1):
//!
//! * the **serialization timestamp** (`ser_ts`), chosen from the
//!   transaction's timestamp interval — it may lie *before* already
//!   committed timestamps (a "backward" commit, the adjustment that lets
//!   DATI avoid restarts);
//! * the **commit sequence number** ([`Csn`]), dense and monotone in true
//!   validation order — the log stream is reordered by CSN on the mirror.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod bc;
mod da;
mod dati;
mod factory;
mod interval;
mod lock2pl;
mod ti;
mod traits;

pub use active::CLOCK_STRIDE;
pub use bc::OccBc;
pub use da::OccDa;
pub use dati::OccDati;
pub use factory::make_controller;
pub use interval::TsInterval;
pub use lock2pl::TwoPlHp;
pub use ti::OccTi;
pub use traits::{
    AccessDecision, CcPriority, CcStats, ConcurrencyController, Csn, Protocol, RestartReason,
    ValidationOutcome,
};
