//! Scalar metrics: monotone counters and signed gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter. Cloning yields another handle to
/// the same underlying atomic; incrementing is a single relaxed RMW.
#[derive(Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, replication mode, …).
/// Cloning yields another handle to the same underlying atomic.
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_set_and_delta() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }
}
