//! Log directory inspection, verification and recovery.

use rodain_log::{LogRecord, LogStorage, RecordKind};
use rodain_occ::Csn;
use std::io::Write;
use std::path::Path;

/// Render one record as a human-readable line.
#[must_use]
pub fn format_record(record: &LogRecord) -> String {
    match &record.kind {
        RecordKind::Write { oid, image } => format!(
            "{:>10}  {:>10}  WRITE       {:?} ({} bytes)",
            record.lsn,
            record.txn,
            oid,
            image.approx_size()
        ),
        RecordKind::Commit {
            csn,
            ser_ts,
            n_writes,
        } => format!(
            "{:>10}  {:>10}  COMMIT      csn={} ser_ts={} writes={}",
            record.lsn, record.txn, csn, ser_ts, n_writes
        ),
        RecordKind::Abort => format!("{:>10}  {:>10}  ABORT", record.lsn, record.txn),
        RecordKind::Checkpoint { upto, snapshot_id } => format!(
            "{:>10}  {:>10}  CHECKPOINT  upto={} snapshot={}",
            record.lsn, record.txn, upto, snapshot_id
        ),
    }
}

/// Scan summary produced by [`verify`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Records read successfully.
    pub records: u64,
    /// Write records.
    pub writes: u64,
    /// Commit records.
    pub commits: u64,
    /// Abort records.
    pub aborts: u64,
    /// Checkpoint markers.
    pub checkpoints: u64,
    /// Lowest commit CSN seen.
    pub min_csn: Option<Csn>,
    /// Highest commit CSN seen.
    pub max_csn: Option<Csn>,
    /// Whether the log ends in a torn tail (normal after a crash).
    pub torn_tail: bool,
    /// Mid-log corruption message, if any (NOT normal).
    pub corruption: Option<String>,
}

impl VerifyReport {
    /// A log is healthy when it has no mid-stream corruption.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.corruption.is_none()
    }
}

/// Scan every segment in `dir`, checking CRCs and structure.
pub fn verify(dir: &Path) -> std::io::Result<VerifyReport> {
    let mut report = VerifyReport::default();
    let mut iter = LogStorage::scan_dir(dir)?;
    for item in &mut iter {
        match item {
            Ok(record) => {
                report.records += 1;
                match record.kind {
                    RecordKind::Write { .. } => report.writes += 1,
                    RecordKind::Commit { csn, .. } => {
                        report.commits += 1;
                        report.min_csn = Some(report.min_csn.map_or(csn, |m| m.min(csn)));
                        report.max_csn = Some(report.max_csn.map_or(csn, |m| m.max(csn)));
                    }
                    RecordKind::Abort => report.aborts += 1,
                    RecordKind::Checkpoint { .. } => report.checkpoints += 1,
                }
            }
            Err(e) => {
                report.corruption = Some(e.to_string());
                break;
            }
        }
    }
    report.torn_tail = iter.torn_tail();
    Ok(report)
}

/// Off-line usage analysis (paper §3: the stored logs "can be also used
/// for, for example, off-line analysis of the database usage").
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct UsageReport {
    /// Committed transactions analysed.
    pub transactions: u64,
    /// Histogram of writes-per-transaction: index = write count (clamped
    /// to the last bucket), value = transactions.
    pub writes_histogram: Vec<u64>,
    /// The most frequently updated objects, hottest first: (object, writes).
    pub hottest_objects: Vec<(u64, u64)>,
    /// Total after-image bytes (approximate).
    pub image_bytes: u64,
}

/// Analyse update traffic in a log directory: write-set size distribution
/// and the hottest objects (top `top_n`).
pub fn analyze(dir: &Path, top_n: usize) -> std::io::Result<UsageReport> {
    use std::collections::HashMap;
    const HIST_BUCKETS: usize = 9; // 0..=7 writes, last bucket = "8+"
    let mut report = UsageReport {
        writes_histogram: vec![0; HIST_BUCKETS],
        ..UsageReport::default()
    };
    let mut per_object: HashMap<u64, u64> = HashMap::new();
    let mut pending_writes: HashMap<u64, Vec<u64>> = HashMap::new();
    for item in LogStorage::scan_dir(dir)? {
        let Ok(record) = item else { break };
        match record.kind {
            RecordKind::Write { oid, image } => {
                report.image_bytes += image.approx_size() as u64;
                pending_writes.entry(record.txn.0).or_default().push(oid.0);
            }
            RecordKind::Commit { .. } => {
                let writes = pending_writes.remove(&record.txn.0).unwrap_or_default();
                report.transactions += 1;
                let bucket = writes.len().min(HIST_BUCKETS - 1);
                report.writes_histogram[bucket] += 1;
                for oid in writes {
                    *per_object.entry(oid).or_insert(0) += 1;
                }
            }
            RecordKind::Abort => {
                pending_writes.remove(&record.txn.0);
            }
            RecordKind::Checkpoint { .. } => {}
        }
    }
    let mut hottest: Vec<(u64, u64)> = per_object.into_iter().collect();
    hottest.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hottest.truncate(top_n);
    report.hottest_objects = hottest;
    Ok(report)
}

/// Print up to `limit` records from `dir` to `out` (0 = no limit).
pub fn dump(dir: &Path, limit: usize, out: &mut impl Write) -> std::io::Result<u64> {
    writeln!(out, "{:>10}  {:>10}  KIND / DETAILS", "LSN", "TXN")?;
    let mut printed = 0u64;
    for item in LogStorage::scan_dir(dir)? {
        let record = item?;
        writeln!(out, "{}", format_record(&record))?;
        printed += 1;
        if limit != 0 && printed as usize >= limit {
            break;
        }
    }
    Ok(printed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_log::{LogStorageConfig, Lsn};
    use rodain_store::{ObjectId, Ts, TxnId, Value};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rodain-tools-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_log(dir: &Path) {
        let mut storage = LogStorage::open(LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(dir)
        })
        .unwrap();
        storage
            .append_batch(&[
                LogRecord {
                    lsn: Lsn(1),
                    txn: TxnId(1),
                    kind: RecordKind::Write {
                        oid: ObjectId(10),
                        image: Value::Int(7),
                    },
                },
                LogRecord {
                    lsn: Lsn(2),
                    txn: TxnId(1),
                    kind: RecordKind::Commit {
                        csn: Csn(1),
                        ser_ts: Ts(100),
                        n_writes: 1,
                    },
                },
                LogRecord {
                    lsn: Lsn(3),
                    txn: TxnId(2),
                    kind: RecordKind::Abort,
                },
                LogRecord {
                    lsn: Lsn(4),
                    txn: TxnId(0),
                    kind: RecordKind::Checkpoint {
                        upto: Csn(2),
                        snapshot_id: 9,
                    },
                },
            ])
            .unwrap();
        storage.flush().unwrap();
    }

    #[test]
    fn verify_reports_counts() {
        let dir = tmpdir("verify");
        sample_log(&dir);
        let report = verify(&dir).unwrap();
        assert!(report.healthy());
        assert_eq!(report.records, 4);
        assert_eq!(report.writes, 1);
        assert_eq!(report.commits, 1);
        assert_eq!(report.aborts, 1);
        assert_eq!(report.checkpoints, 1);
        assert_eq!(report.min_csn, Some(Csn(1)));
        assert_eq!(report.max_csn, Some(Csn(1)));
        assert!(!report.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_flags_torn_tail() {
        let dir = tmpdir("torn");
        sample_log(&dir);
        let mut segments: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segments.sort();
        let last = segments.last().unwrap();
        let data = std::fs::read(last).unwrap();
        std::fs::write(last, &data[..data.len() - 2]).unwrap();
        let report = verify(&dir).unwrap();
        assert!(report.torn_tail);
        assert!(report.healthy(), "torn tail is not corruption");
        assert_eq!(report.records, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_prints_every_kind() {
        let dir = tmpdir("dump");
        sample_log(&dir);
        let mut out = Vec::new();
        let n = dump(&dir, 0, &mut out).unwrap();
        assert_eq!(n, 4);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("WRITE"));
        assert!(text.contains("COMMIT"));
        assert!(text.contains("ABORT"));
        assert!(text.contains("CHECKPOINT"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_reports_usage() {
        let dir = tmpdir("analyze");
        let mut storage = LogStorage::open(LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        })
        .unwrap();
        // txn 1: two writes (object 7 twice is impossible per txn in the
        // engine, but the analyser must not care); txn 2: read-only;
        // txn 3: uncommitted.
        let mut lsn = 0u64;
        let push = |txn: u64, kind: RecordKind, storage: &mut LogStorage, lsn: &mut u64| {
            *lsn += 1;
            storage
                .append(&LogRecord {
                    lsn: Lsn(*lsn),
                    txn: TxnId(txn),
                    kind,
                })
                .unwrap();
        };
        push(
            1,
            RecordKind::Write {
                oid: ObjectId(7),
                image: Value::Int(1),
            },
            &mut storage,
            &mut lsn,
        );
        push(
            1,
            RecordKind::Write {
                oid: ObjectId(9),
                image: Value::Int(2),
            },
            &mut storage,
            &mut lsn,
        );
        push(
            1,
            RecordKind::Commit {
                csn: Csn(1),
                ser_ts: Ts(1),
                n_writes: 2,
            },
            &mut storage,
            &mut lsn,
        );
        push(
            2,
            RecordKind::Commit {
                csn: Csn(2),
                ser_ts: Ts(2),
                n_writes: 0,
            },
            &mut storage,
            &mut lsn,
        );
        push(
            3,
            RecordKind::Write {
                oid: ObjectId(7),
                image: Value::Int(3),
            },
            &mut storage,
            &mut lsn,
        );
        storage.flush().unwrap();
        drop(storage);

        let report = analyze(&dir, 5).unwrap();
        assert_eq!(report.transactions, 2);
        assert_eq!(report.writes_histogram[0], 1); // the read-only commit
        assert_eq!(report.writes_histogram[2], 1); // the 2-write commit
                                                   // Uncommitted txn 3's write of object 7 is excluded.
        assert_eq!(report.hottest_objects, vec![(7, 1), (9, 1)]);
        assert_eq!(report.image_bytes, 8 + 8 + 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_respects_limit() {
        let dir = tmpdir("limit");
        sample_log(&dir);
        let mut out = Vec::new();
        assert_eq!(dump(&dir, 2, &mut out).unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
