//! Renderers: one [`MetricsSnapshot`], three output formats.

use crate::registry::MetricsSnapshot;
use std::fmt::Write as _;

/// Quantiles reported by the text and JSON renderers.
const QUANTILES: [(f64, &str); 3] = [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")];

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The metric name with any baked-in label block stripped:
/// `engine_info{protocol="occ-dati"}` → `engine_info`.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

impl MetricsSnapshot {
    /// Human-readable plain text: one line per metric.
    ///
    /// Counters and gauges render as `kind name value`; histograms render
    /// as `hist name count=… sum=… min=… p50=… p95=… p99=… max=…`; trace
    /// events as `event seq at_ns kind detail`.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(
                out,
                "hist {name} count={} sum={} min={}",
                h.count, h.sum, h.min
            );
            for (q, label) in QUANTILES {
                let _ = write!(out, " {label}={}", h.percentile(q));
            }
            let _ = writeln!(out, " max={}", h.max);
        }
        for e in &self.events {
            let _ = writeln!(out, "event {} {} {} {}", e.seq, e.at_ns, e.kind, e.detail);
        }
        out
    }

    /// Machine-readable JSON (no external dependency; strings are escaped
    /// per RFC 8259).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            for (q, label) in QUANTILES {
                let _ = write!(out, ",\"{label}\":{}", h.percentile(q));
            }
            out.push('}');
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"at_ns\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                e.seq,
                e.at_ns,
                json_escape(e.kind),
                json_escape(&e.detail)
            );
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text exposition (format version 0.0.4). Histograms emit
    /// cumulative `_bucket{le=…}` series for every non-empty bucket plus
    /// `+Inf`, `_sum` and `_count`. Trace events are omitted — they are a
    /// timeline, not a time series.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {} counter", base_name(name));
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {} gauge", base_name(name));
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let base = base_name(name);
            // A label block embedded in the metric name (e.g. a per-shard
            // dimension) must survive on every series of the histogram,
            // merged with the bucket's own `le` label.
            let inner = name
                .strip_prefix(base)
                .and_then(|rest| rest.strip_prefix('{'))
                .and_then(|rest| rest.strip_suffix('}'))
                .unwrap_or("");
            let le_prefix = if inner.is_empty() {
                String::new()
            } else {
                format!("{inner},")
            };
            let plain = if inner.is_empty() {
                String::new()
            } else {
                format!("{{{inner}}}")
            };
            let _ = writeln!(out, "# TYPE {base} histogram");
            for (upper, cum) in h.cumulative_buckets() {
                if upper == u64::MAX {
                    // Folded into +Inf below.
                    continue;
                }
                let _ = writeln!(out, "{base}_bucket{{{le_prefix}le=\"{upper}\"}} {cum}");
            }
            let _ = writeln!(out, "{base}_bucket{{{le_prefix}le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{base}_sum{plain} {}", h.sum);
            let _ = writeln!(out, "{base}_count{plain} {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    fn sample() -> crate::MetricsSnapshot {
        let rec = Recorder::new();
        rec.counter("txn_committed_total").add(10);
        rec.gauge("replication_mode").set(2);
        let h = rec.histogram("engine_commit_wait_ns");
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        rec.emit("mode-change", "volatile -> mirrored");
        rec.snapshot()
    }

    #[test]
    fn text_lists_every_metric() {
        let text = sample().render_text();
        assert!(text.contains("counter txn_committed_total 10"));
        assert!(text.contains("gauge replication_mode 2"));
        assert!(text.contains("hist engine_commit_wait_ns count=3"));
        assert!(text.contains("p95="));
        assert!(text.contains("event 0 "));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let rec = Recorder::new();
        rec.counter("weird\"name_total").inc();
        rec.emit("note", "line1\nline2");
        let json = rec.snapshot().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("weird\\\"name_total"));
        assert!(json.contains("line1\\nline2"));
        // Balanced braces (no nested strings contain braces here).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn prometheus_histogram_series_are_cumulative() {
        let prom = sample().render_prometheus();
        assert!(prom.contains("# TYPE engine_commit_wait_ns histogram"));
        assert!(prom.contains("engine_commit_wait_ns_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("engine_commit_wait_ns_sum 600"));
        assert!(prom.contains("engine_commit_wait_ns_count 3"));
        // Each successive bucket count must be >= the previous.
        let mut last = 0u64;
        for line in prom
            .lines()
            .filter(|l| l.contains("_bucket{le=\"") && !l.contains("+Inf"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn prometheus_strips_label_block_from_type_line() {
        let rec = Recorder::new();
        rec.gauge("engine_info{protocol=\"occ-dati\"}").set(1);
        let prom = rec.snapshot().render_prometheus();
        assert!(prom.contains("# TYPE engine_info gauge"));
        assert!(prom.contains("engine_info{protocol=\"occ-dati\"} 1"));
    }

    #[test]
    fn prometheus_keeps_labels_on_histogram_series() {
        let rec = Recorder::new();
        let h = rec.histogram("commit_wait_ns");
        h.record(100);
        h.record(200);
        let labelled = rec.snapshot().with_label("shard", "3");
        let prom = labelled.render_prometheus();
        assert!(prom.contains("# TYPE commit_wait_ns histogram"));
        assert!(prom.contains("commit_wait_ns_bucket{shard=\"3\",le=\"+Inf\"} 2"));
        assert!(prom.contains("commit_wait_ns_sum{shard=\"3\"} 300"));
        assert!(prom.contains("commit_wait_ns_count{shard=\"3\"} 2"));
    }
}
