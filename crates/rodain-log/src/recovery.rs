//! Single-pass log replay.

use crate::record::{LogRecord, RecordKind};
use crate::reorder::ReorderError;
use rodain_occ::Csn;
use rodain_store::{Store, Ts};
use std::fmt;

/// Replay statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records scanned.
    pub records: u64,
    /// Committed transactions applied.
    pub committed: u64,
    /// Transactions whose writes were discarded for lack of a commit record
    /// (the in-flight tail at failure time).
    pub discarded: u64,
    /// After-images installed.
    pub images: u64,
    /// The highest CSN applied ([`Csn`] 0 when nothing committed).
    pub max_csn: Csn,
    /// The highest serialization timestamp applied.
    pub max_ser_ts: Ts,
}

/// Replay failures.
#[derive(Debug)]
pub enum RecoveryError {
    /// Reading a record failed (I/O or mid-log corruption).
    Io(std::io::Error),
    /// The log stream itself is inconsistent.
    Stream(ReorderError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "log read failed: {e}"),
            RecoveryError::Stream(e) => write!(f, "inconsistent log stream: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// Rebuild database state by replaying `records` into `store`.
///
/// Because the mirror reorders the log by true validation order before
/// storing it, recovery "can simply pass the log once from the beginning to
/// the end omitting only the transactions that do not have a commit record
/// in the log" (paper §3). The same pass also handles a Contingency-mode
/// log (written in generation order): write records are buffered per
/// transaction and applied only when the commit record appears.
///
/// Commit records are applied in the order encountered, regardless of CSN
/// gaps — a checkpoint-truncated log legitimately starts mid-stream, and a
/// transaction missing its commit record is exactly the in-flight tail the
/// paper says to discard.
pub fn replay_into(
    store: &Store,
    records: impl IntoIterator<Item = std::io::Result<LogRecord>>,
) -> Result<RecoveryStats, RecoveryError> {
    use std::collections::HashMap;
    let mut stats = RecoveryStats::default();
    let mut pending: HashMap<
        rodain_store::TxnId,
        Vec<(rodain_store::ObjectId, rodain_store::Value)>,
    > = HashMap::new();
    for item in records {
        let record = item?;
        stats.records += 1;
        match record.kind {
            RecordKind::Write { oid, image } => {
                pending.entry(record.txn).or_default().push((oid, image));
            }
            RecordKind::Commit {
                csn,
                ser_ts,
                n_writes,
            } => {
                let writes = pending.remove(&record.txn).unwrap_or_default();
                if writes.len() as u32 != n_writes {
                    return Err(RecoveryError::Stream(ReorderError::MissingWrites {
                        txn: record.txn,
                        expected: n_writes,
                        got: writes.len() as u32,
                    }));
                }
                stats.committed += 1;
                stats.max_csn = stats.max_csn.max(csn);
                stats.max_ser_ts = stats.max_ser_ts.max(ser_ts);
                for (oid, image) in writes {
                    store.install(oid, image, ser_ts);
                    stats.images += 1;
                }
            }
            RecordKind::Abort => {
                pending.remove(&record.txn);
            }
            RecordKind::Checkpoint { .. } => {}
        }
    }
    stats.discarded = pending.len() as u64;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Lsn;
    use rodain_store::{ObjectId, TxnId, Value};

    fn write(lsn: u64, txn: u64, oid: u64, v: i64) -> std::io::Result<LogRecord> {
        Ok(LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Write {
                oid: ObjectId(oid),
                image: Value::Int(v),
            },
        })
    }

    fn commit(lsn: u64, txn: u64, csn: u64, n: u32) -> std::io::Result<LogRecord> {
        Ok(LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Commit {
                csn: Csn(csn),
                ser_ts: Ts(csn * 10),
                n_writes: n,
            },
        })
    }

    #[test]
    fn committed_writes_are_applied() {
        let store = Store::new();
        let stats = replay_into(
            &store,
            vec![write(1, 1, 100, 7), write(2, 1, 101, 8), commit(3, 1, 1, 2)],
        )
        .unwrap();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.images, 2);
        assert_eq!(store.read(ObjectId(100)).unwrap().0, Value::Int(7));
        assert_eq!(store.read(ObjectId(100)).unwrap().1, Ts(10));
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let store = Store::new();
        let stats = replay_into(
            &store,
            vec![
                write(1, 1, 100, 7),
                commit(2, 1, 1, 1),
                write(3, 2, 200, 9), // txn 2 never committed
            ],
        )
        .unwrap();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.discarded, 1);
        assert_eq!(store.read(ObjectId(200)), None);
    }

    #[test]
    fn replay_is_idempotent() {
        let store = Store::new();
        let records = || {
            vec![
                write(1, 1, 100, 7),
                commit(2, 1, 1, 1),
                write(3, 2, 100, 8),
                commit(4, 2, 2, 1),
            ]
        };
        replay_into(&store, records()).unwrap();
        let snap1 = store.snapshot();
        replay_into(&store, records()).unwrap();
        assert_eq!(store.snapshot(), snap1);
        assert_eq!(store.read(ObjectId(100)).unwrap().0, Value::Int(8));
    }

    #[test]
    fn truncated_log_starting_midstream_replays() {
        // A checkpoint-truncated log legitimately starts at csn 5.
        let store = Store::new();
        let stats = replay_into(
            &store,
            vec![write(10, 5, 1, 1), commit(11, 5, 5, 1), commit(12, 6, 6, 0)],
        )
        .unwrap();
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.max_csn, Csn(6));
    }

    #[test]
    fn io_error_propagates() {
        let store = Store::new();
        let err: std::io::Result<LogRecord> = Err(std::io::Error::other("boom"));
        assert!(matches!(
            replay_into(&store, vec![err]),
            Err(RecoveryError::Io(_))
        ));
    }

    #[test]
    fn empty_log_recovers_empty_state() {
        let store = Store::new();
        let stats = replay_into(&store, Vec::new()).unwrap();
        assert_eq!(stats, RecoveryStats::default());
        assert!(store.is_empty());
    }
}
