//! # rodain-cluster — multi-node shard placement over real transports
//!
//! Seats per-shard RODAIN engines in separate processes and makes them
//! one database (`DESIGN.md` §16):
//!
//! - **Versioned placement** — an epoch-numbered [`ShardMap`] names the
//!   owner of every shard. Nodes serve it on the client plane
//!   (`ClusterMap` op) and answer mis-routed requests with
//!   `WrongShard { epoch }`; [`ClusterClient`] caches the map and
//!   converges by refreshing on redirects.
//! - **Networked 2PC** — [`ClusterCoordinator`] puts the durable-intent
//!   protocol (`DESIGN.md` §11) on the wire: prepare writes a logged
//!   intent on each participant, the decision record's commit on the
//!   coordinator shard is the atomic commit point, and a cluster-wide
//!   resolve pass ([`ClusterCoordinator::resolve_all`]) finishes or
//!   presumes abort for anything a crash left behind.
//! - **Online migration** — [`ClusterCoordinator::migrate_shard`] ships
//!   a fuzzy snapshot (the checkpoint format from `DESIGN.md` §15),
//!   chases the source's redo-log tail, seals, and cuts over with an
//!   epoch bump — all while both nodes keep serving.
//!
//! A node process is [`ClusterNode`] (or the `cluster_node` binary):
//! a client-plane [`rodain_server::Server`] for data traffic plus a
//! peer-plane [`rodain_net::PeerServer`] speaking [`proto`].

pub mod client;
pub mod coord;
pub mod harness;
pub mod migrate;
pub mod node;
pub mod proto;

pub use client::ClusterClient;
pub use coord::{ClusterCoordinator, ClusterError, ClusterReceipt, ResolveReport};
pub use migrate::MigrationReport;
pub use node::{ClusterNode, NodeConfig};
pub use proto::{ClusterProtoError, ClusterReply, ClusterRequest, TailCommit};
pub use rodain_shard::{ShardMap, ShardOwner};
