//! Failure-injection link wrapper.

use crate::{NetError, Transport};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared control handle for a [`LossyLink`] (clone it into test code to
/// manipulate the link while nodes are running).
#[derive(Clone)]
pub struct LinkControl {
    severed: Arc<AtomicBool>,
    blackhole: Arc<AtomicBool>,
    drop_one_in: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl LinkControl {
    /// Permanently sever the link: both directions fail with
    /// [`NetError::Disconnected`] (models a node crash / cable cut).
    pub fn sever(&self) {
        self.severed.store(true, Ordering::Release);
    }

    /// Silently discard everything sent while enabled (models a partition
    /// that the failure detector must notice by missing heartbeats).
    pub fn set_blackhole(&self, enabled: bool) {
        self.blackhole.store(enabled, Ordering::Release);
    }

    /// Drop every `n`-th outbound frame (0 disables dropping).
    /// Note the [`Transport`] contract is FIFO-or-fail, so this is only
    /// meaningful for stress-testing the *detection* of missing records
    /// (e.g. [`rodain_log::ReorderBuffer`] gap checks, via its
    /// `MissingWrites` error), not for normal operation.
    pub fn set_drop_one_in(&self, n: u64) {
        self.drop_one_in.store(n, Ordering::Release);
    }

    /// Frames discarded so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Acquire)
    }

    /// Whether the link was severed.
    #[must_use]
    pub fn is_severed(&self) -> bool {
        self.severed.load(Ordering::Acquire)
    }
}

/// A [`Transport`] decorator that injects link failures under test control.
pub struct LossyLink<T: Transport> {
    inner: T,
    control: LinkControl,
    sent: Mutex<u64>,
}

impl<T: Transport> LossyLink<T> {
    /// Wrap `inner`; returns the link and its control handle.
    pub fn new(inner: T) -> (Self, LinkControl) {
        let control = LinkControl {
            severed: Arc::new(AtomicBool::new(false)),
            blackhole: Arc::new(AtomicBool::new(false)),
            drop_one_in: Arc::new(AtomicU64::new(0)),
            dropped: Arc::new(AtomicU64::new(0)),
        };
        (
            LossyLink {
                inner,
                control: control.clone(),
                sent: Mutex::new(0),
            },
            control,
        )
    }
}

impl<T: Transport> Transport for LossyLink<T> {
    fn send(&self, frame: Bytes) -> Result<(), NetError> {
        if self.control.severed.load(Ordering::Acquire) {
            return Err(NetError::Disconnected);
        }
        if self.control.blackhole.load(Ordering::Acquire) {
            self.control.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // swallowed silently
        }
        let drop_n = self.control.drop_one_in.load(Ordering::Acquire);
        if drop_n > 0 {
            let mut sent = self.sent.lock();
            *sent += 1;
            if *sent % drop_n == 0 {
                self.control.dropped.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        self.inner.send(frame)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NetError> {
        if self.control.severed.load(Ordering::Acquire) {
            return Err(NetError::Disconnected);
        }
        self.inner.recv_timeout(timeout)
    }

    fn is_connected(&self) -> bool {
        !self.control.severed.load(Ordering::Acquire) && self.inner.is_connected()
    }

    fn close(&self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InProcTransport;

    #[test]
    fn passthrough_by_default() {
        let (a, b) = InProcTransport::pair();
        let (lossy, _ctl) = LossyLink::new(a);
        lossy.send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"x"));
        assert!(lossy.is_connected());
    }

    #[test]
    fn sever_disconnects_immediately() {
        let (a, _b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        ctl.sever();
        assert!(ctl.is_severed());
        assert_eq!(lossy.send(Bytes::new()), Err(NetError::Disconnected));
        assert_eq!(
            lossy.recv_timeout(Duration::from_millis(1)),
            Err(NetError::Disconnected)
        );
        assert!(!lossy.is_connected());
    }

    #[test]
    fn blackhole_swallows_silently() {
        let (a, b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        ctl.set_blackhole(true);
        lossy.send(Bytes::from_static(b"gone")).unwrap();
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(ctl.dropped(), 1);
        ctl.set_blackhole(false);
        lossy.send(Bytes::from_static(b"back")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"back"));
    }

    #[test]
    fn periodic_drop() {
        let (a, b) = InProcTransport::pair();
        let (lossy, ctl) = LossyLink::new(a);
        ctl.set_drop_one_in(3);
        for i in 0..9u8 {
            lossy.send(Bytes::from(vec![i])).unwrap();
        }
        let mut received = Vec::new();
        while let Some(f) = b.try_recv().unwrap() {
            received.push(f[0]);
        }
        assert_eq!(received.len(), 6);
        assert_eq!(ctl.dropped(), 3);
    }
}
