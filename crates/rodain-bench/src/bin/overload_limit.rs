//! OVERLOAD: ablation of the overload manager's active-transaction limit.
//!
//! `cargo run -p rodain-bench --release --bin overload_limit [-- --quick]`

use rodain_bench::experiments::{overload_limit, SweepOptions};

fn main() {
    let table = overload_limit(SweepOptions::from_args());
    table.print();
    println!("csv: {:?}", table.write_csv("overload_limit").unwrap());
}
