//! Property-based tests of interval algebra and controller invariants.

use proptest::prelude::*;
use rodain_occ::{
    make_controller, CcPriority, Protocol, TsInterval, ValidationOutcome, CLOCK_STRIDE,
};
use rodain_store::{ObjectId, Store, Ts, TxnId, Value, Workspace};

#[derive(Clone, Copy, Debug)]
enum Constraint {
    After(u64),
    Before(u64),
}

fn constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        (0..1_000u64).prop_map(Constraint::After),
        (0..1_000u64).prop_map(Constraint::Before),
    ]
}

proptest! {
    /// Constraints only ever shrink the interval, and the result is the
    /// intersection regardless of application order.
    #[test]
    fn constraints_shrink_and_commute(
        constraints in prop::collection::vec(constraint(), 0..20),
        permutation in any::<prop::sample::Index>(),
    ) {
        let mut forward = TsInterval::FULL;
        let mut prev_width = forward.width();
        for c in &constraints {
            match c {
                Constraint::After(t) => {
                    forward.after(Ts(*t));
                }
                Constraint::Before(t) => {
                    forward.before(Ts(*t));
                }
            }
            prop_assert!(forward.width() <= prev_width, "interval widened");
            prev_width = forward.width();
        }
        // Apply in a rotated order: same final interval (or both empty).
        let mut rotated = TsInterval::FULL;
        let n = constraints.len().max(1);
        let shift = permutation.index(n);
        for i in 0..constraints.len() {
            match constraints[(i + shift) % constraints.len()] {
                Constraint::After(t) => {
                    rotated.after(Ts(t));
                }
                Constraint::Before(t) => {
                    rotated.before(Ts(t));
                }
            }
        }
        if forward.is_empty() {
            prop_assert!(rotated.is_empty());
        } else {
            prop_assert_eq!(forward, rotated);
        }
    }

    /// contains() agrees with the bounds.
    #[test]
    fn contains_is_consistent(lb in 0..500u64, ub in 0..500u64, probe in 0..600u64) {
        let iv = TsInterval::new(lb, ub);
        prop_assert_eq!(iv.contains(probe), lb <= probe && probe <= ub);
        prop_assert_eq!(iv.is_empty(), lb > ub);
    }

    /// Non-conflicting transactions always commit, under every protocol,
    /// and their serialization timestamps are strictly increasing in
    /// validation order (no conflicts ⇒ forward assignment only).
    #[test]
    fn disjoint_transactions_all_commit(n in 1usize..20) {
        for protocol in Protocol::ALL {
            let store = Store::new();
            for oid in 0..(n as u64 * 2) {
                store.load_initial(ObjectId(oid), Value::Int(0));
            }
            let cc = make_controller(protocol);
            let mut last_ts = Ts::ZERO;
            for i in 0..n {
                let id = TxnId(i as u64 + 1);
                cc.begin(id, CcPriority(1));
                let mut ws = Workspace::new(id);
                // Each txn touches its own disjoint pair of objects.
                let base = i as u64 * 2;
                ws.read(&store, ObjectId(base));
                cc.on_read(id, ObjectId(base), Ts::ZERO);
                cc.on_write(id, ObjectId(base + 1), &store);
                ws.write(ObjectId(base + 1), Value::Int(i as i64));
                match cc.validate(&ws, &store) {
                    ValidationOutcome::Commit { ser_ts, victims, .. } => {
                        prop_assert!(victims.is_empty(), "{protocol}: phantom victim");
                        prop_assert!(ser_ts > last_ts, "{protocol}: ts not increasing");
                        last_ts = ser_ts;
                    }
                    other => {
                        prop_assert!(false, "{protocol}: disjoint txn failed: {other:?}");
                    }
                }
            }
            prop_assert_eq!(cc.stats().commits, n as u64);
            prop_assert_eq!(cc.stats().self_restarts, 0);
            prop_assert_eq!(cc.active_count(), 0);
        }
    }

    /// Forward serialization timestamps advance by exactly the clock
    /// stride, leaving gaps for backward commits.
    #[test]
    fn forward_timestamps_are_stride_spaced(n in 1u64..30) {
        let store = Store::new();
        store.load_initial(ObjectId(0), Value::Int(0));
        let cc = make_controller(Protocol::OccDati);
        for i in 1..=n {
            let id = TxnId(i);
            cc.begin(id, CcPriority(1));
            let ws = Workspace::new(id);
            match cc.validate(&ws, &store) {
                ValidationOutcome::Commit { ser_ts, csn, .. } => {
                    prop_assert_eq!(ser_ts, Ts(i * CLOCK_STRIDE));
                    prop_assert_eq!(csn.0, i);
                }
                other => prop_assert!(false, "{other:?}"),
            }
        }
    }
}
