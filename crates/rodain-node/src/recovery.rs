//! Cold-start recovery from the disk log.

use rodain_log::{replay_into, LogStorage, RecoveryError, RecoveryStats};
use rodain_store::Store;
use std::path::Path;
use std::sync::Arc;

/// The result of recovering a node's state from its disk log.
#[derive(Debug)]
pub struct ColdStart {
    /// The reconstructed database.
    pub store: Arc<Store>,
    /// Replay statistics (committed transactions, discarded tail, max CSN).
    pub stats: RecoveryStats,
    /// Whether the log ended in a torn tail (last record incomplete —
    /// normal after a crash mid-write; the affected transaction had not
    /// committed on *this* node).
    pub torn_tail: bool,
}

/// Rebuild a store by a single forward pass over the log segments in
/// `dir` (paper §3: the pre-reordered log makes one pass sufficient).
///
/// This is the *slow* path the paper contrasts with mirror takeover: "If,
/// however, the Primary Node was alone and had to recover from the backup
/// on the disk …, the database would be down much longer." The TAKEOVER
/// experiment quantifies exactly this gap.
pub fn recover_store_from_disk(dir: impl AsRef<Path>) -> Result<ColdStart, RecoveryError> {
    let store = Arc::new(Store::new());
    let mut iter = LogStorage::scan_dir(dir).map_err(RecoveryError::Io)?;
    let stats = replay_into(&store, &mut iter)?;
    let torn_tail = iter.torn_tail();
    Ok(ColdStart {
        store,
        stats,
        torn_tail,
    })
}

/// Checkpoint-accelerated recovery: restore the newest intact snapshot in
/// `snapshot_dir` (if any) and replay the log in `log_dir` over it.
///
/// Replaying log segments whose commits predate the checkpoint is harmless
/// — installing an after-image at its original serialization timestamp over
/// the snapshot state is idempotent — so truncation lag never corrupts
/// recovery, it only costs replay time.
pub fn recover_with_checkpoint(
    log_dir: impl AsRef<Path>,
    snapshot_dir: impl AsRef<Path>,
) -> Result<ColdStart, RecoveryError> {
    let store = Arc::new(Store::new());
    if let Some((snapshot, _upto, _path)) =
        rodain_log::read_latest_snapshot(snapshot_dir.as_ref()).map_err(RecoveryError::Io)?
    {
        store.restore(&snapshot);
    }
    let mut iter = LogStorage::scan_dir(log_dir).map_err(RecoveryError::Io)?;
    let stats = replay_into(&store, &mut iter)?;
    let torn_tail = iter.torn_tail();
    Ok(ColdStart {
        store,
        stats,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_log::{LogRecord, LogStorageConfig, Lsn, RecordKind};
    use rodain_occ::Csn;
    use rodain_store::{ObjectId, Ts, TxnId, Value};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rodain-node-recovery-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cold_start_rebuilds_committed_state() {
        let dir = tmpdir("rebuild");
        {
            let mut storage = LogStorage::open(LogStorageConfig {
                fsync: false,
                ..LogStorageConfig::new(&dir)
            })
            .unwrap();
            // txn 1 committed, txn 2 in flight at crash.
            storage
                .append_batch(&[
                    LogRecord {
                        lsn: Lsn(1),
                        txn: TxnId(1),
                        kind: RecordKind::Write {
                            oid: ObjectId(10),
                            image: Value::Int(1),
                        },
                    },
                    LogRecord {
                        lsn: Lsn(2),
                        txn: TxnId(1),
                        kind: RecordKind::Commit {
                            csn: Csn(1),
                            ser_ts: Ts(500),
                            n_writes: 1,
                        },
                    },
                    LogRecord {
                        lsn: Lsn(3),
                        txn: TxnId(2),
                        kind: RecordKind::Write {
                            oid: ObjectId(11),
                            image: Value::Int(2),
                        },
                    },
                ])
                .unwrap();
            storage.flush().unwrap();
        }
        let cold = recover_store_from_disk(&dir).unwrap();
        assert_eq!(cold.stats.committed, 1);
        assert_eq!(cold.stats.discarded, 1);
        assert_eq!(cold.stats.max_csn, Csn(1));
        assert!(!cold.torn_tail);
        assert_eq!(cold.store.read(ObjectId(10)).unwrap().0, Value::Int(1));
        assert_eq!(cold.store.read(ObjectId(11)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_recovers_empty_store() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let cold = recover_store_from_disk(&dir).unwrap();
        assert!(cold.store.is_empty());
        assert_eq!(cold.stats.records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
