//! End-to-end engine tests: a realistic mixed workload through the public
//! `Rodain` API, checking invariants the paper's design promises.

use rodain::db::{Rodain, TxnError, TxnOptions};
use rodain::occ::Protocol;
use rodain::workload::NumberTranslationDb;
use rodain::{ObjectId, Value};
use std::sync::Arc;
use std::time::Duration;

fn populated_db(objects: u64, workers: usize) -> Rodain {
    let db = Rodain::builder().workers(workers).build().unwrap();
    let schema = NumberTranslationDb::new(objects);
    for n in 0..objects {
        db.load_initial(schema.object_id(n), schema.initial_record(n));
    }
    db
}

#[test]
fn number_translation_service_mixed_load() {
    let db = Arc::new(populated_db(1_000, 4));
    let schema = NumberTranslationDb::new(1_000);
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut commits = 0u64;
            for i in 0..200u64 {
                let n = (t * 313 + i * 7) % 1_000;
                let oid = schema.object_id(n);
                let update = i % 5 == 0;
                let result = if update {
                    db.execute(TxnOptions::firm_ms(1_000), move |ctx| {
                        let prev = ctx.read(oid)?.unwrap();
                        let next = NumberTranslationDb::new(1_000).updated_record(&prev, i);
                        ctx.write(oid, next)?;
                        Ok(None)
                    })
                } else {
                    db.execute(TxnOptions::firm_ms(1_000), move |ctx| {
                        let record = ctx.read(oid)?.unwrap();
                        // A service-provision read: the routing address.
                        let fields = record.as_record().unwrap();
                        assert!(fields[0].as_text().unwrap().starts_with("+358"));
                        Ok(Some(fields[0].clone()))
                    })
                };
                if result.is_ok() {
                    commits += 1;
                }
            }
            commits
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let stats = db.stats();
    assert_eq!(stats.committed, total);
    assert!(total >= 780, "too many aborts under light load: {stats:?}");
    // Every record still has the 3-field shape (no torn installs).
    let mut checked = 0;
    db.store().for_each(|_, obj| {
        assert_eq!(obj.value.as_record().unwrap().len(), 3);
        checked += 1;
    });
    assert_eq!(checked, 1_000);
}

#[test]
fn update_counters_equal_committed_updates() {
    // Translation-count column == number of committed updates, per object.
    let db = populated_db(50, 4);
    let schema = NumberTranslationDb::new(50);
    let mut committed_per_object = vec![0i64; 50];
    for round in 0..6u64 {
        for n in 0..50u64 {
            let oid = schema.object_id(n);
            let result = db.execute(TxnOptions::soft_ms(5_000), move |ctx| {
                let prev = ctx.read(oid)?.unwrap();
                ctx.write(
                    oid,
                    NumberTranslationDb::new(50).updated_record(&prev, round),
                )?;
                Ok(None)
            });
            if result.is_ok() {
                committed_per_object[n as usize] += 1;
            }
        }
    }
    for n in 0..50u64 {
        let record = db.get(schema.object_id(n)).unwrap();
        let count = record.as_record().unwrap()[2].as_int().unwrap();
        assert_eq!(count, committed_per_object[n as usize], "object {n}");
    }
}

#[test]
fn firm_deadline_is_enforced_end_to_end() {
    let db = populated_db(10, 1);
    // Saturate the single worker.
    let blocker = db.submit(TxnOptions::soft_ms(60_000), |_| {
        std::thread::sleep(Duration::from_millis(80));
        Ok(None)
    });
    std::thread::sleep(Duration::from_millis(5));
    let started = std::time::Instant::now();
    let result = db.execute(TxnOptions::firm_ms(20), |ctx| {
        ctx.read(ObjectId(0))?;
        Ok(None)
    });
    assert_eq!(result, Err(TxnError::DeadlineExpired));
    // The miss must be reported promptly once the worker frees up, not
    // after some unrelated timeout.
    assert!(started.elapsed() < Duration::from_secs(2));
    assert!(blocker.wait().is_ok());
}

#[test]
fn every_protocol_preserves_bank_invariant() {
    // Transfers between two accounts: the sum is invariant under any
    // interleaving, for every concurrency-control protocol.
    for protocol in Protocol::ALL {
        let db = Arc::new(
            Rodain::builder()
                .protocol(protocol)
                .workers(4)
                .build()
                .unwrap(),
        );
        db.load_initial(ObjectId(1), Value::Int(500));
        db.load_initial(ObjectId(2), Value::Int(500));
        let mut handles = Vec::new();
        for t in 0..4 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..40 {
                    let amount = ((t * 13 + i) % 7) as i64 - 3;
                    let _ = db.execute(TxnOptions::soft_ms(5_000), move |ctx| {
                        let a = ctx.read(ObjectId(1))?.unwrap().as_int().unwrap();
                        let b = ctx.read(ObjectId(2))?.unwrap().as_int().unwrap();
                        ctx.write(ObjectId(1), Value::Int(a - amount))?;
                        ctx.write(ObjectId(2), Value::Int(b + amount))?;
                        Ok(None)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let a = db.get(ObjectId(1)).unwrap().as_int().unwrap();
        let b = db.get(ObjectId(2)).unwrap().as_int().unwrap();
        assert_eq!(a + b, 1_000, "{protocol}: invariant broken (a={a}, b={b})");
    }
}

#[test]
fn deletes_are_transactional() {
    let db = populated_db(10, 2);
    let schema = NumberTranslationDb::new(10);
    db.execute(TxnOptions::firm_ms(1_000), move |ctx| {
        ctx.delete(schema.object_id(3))?;
        Ok(None)
    })
    .unwrap();
    assert_eq!(db.get(schema.object_id(3)), None);
    // Reading a deleted object inside a transaction sees None.
    let r = db
        .execute(TxnOptions::firm_ms(1_000), move |ctx| {
            assert!(ctx.read(schema.object_id(3))?.is_none());
            Ok(None)
        })
        .unwrap();
    assert_eq!(r.result, None);
}

#[test]
fn stats_reconcile_with_outcomes() {
    let db = populated_db(100, 2);
    let schema = NumberTranslationDb::new(100);
    let mut ok = 0u64;
    let mut failed = 0u64;
    for i in 0..100u64 {
        let oid = schema.object_id(i);
        let result = db.execute(TxnOptions::firm_ms(2_000), move |ctx| {
            ctx.read(oid)?;
            Ok(None)
        });
        match result {
            Ok(_) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    let stats = db.stats();
    assert_eq!(stats.committed, ok);
    assert_eq!(stats.aborted(), failed);
    assert_eq!(stats.active, 0);
}
