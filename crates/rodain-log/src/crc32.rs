//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Written in-tree to keep the dependency set to the pre-approved crates;
//! the log framing only needs integrity against torn writes and bit rot,
//! not cryptographic strength.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Compute the CRC-32 of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
